//! Fleet-scale telemetry generator: a virtual-time simulated HADFL
//! run that emits the *same* event stream a real cluster ships to
//! `hadfl-collector`.
//!
//! The point is exercising the live observability pipeline (ship →
//! collect → merge → health rules) at sizes a process-per-node cluster
//! cannot reach cheaply — a 1k-device round here is a few thousand
//! events, not a thousand sockets. The simulation is deliberately
//! protocol-shaped rather than protocol-exact: rounds plan, rings
//! reduce and merge, param frames are byte-accounted, Eq. 7-style
//! forecasts are logged — everything the collector's health rules and
//! byte-parity checks consume — with injectable heterogeneity faults:
//!
//! - [`StragglerSpec`]: a device runs `slow_factor`× slower from a
//!   given round, so its version drifts below the fleet median and its
//!   forecasts overshoot, exactly the signals the straggler rule
//!   scores.
//! - [`DeadSpec`]: a device stops reporting at a given round; the
//!   coordinator drops it and the ring bypass-repairs around it.
//!
//! Events carry per-node `seq` counters, one fleet-wide Lamport scale,
//! and virtual-time `t_us` stamps, so the collector merges them with
//! the same `(lam, node, seq)` key as real traffic.

use std::time::Duration;

use hadfl_telemetry::{Event, EventKind, SCHEMA_VERSION};

use crate::error::SimError;
use crate::time::VirtualTime;

/// A device that slows down mid-run.
#[derive(Debug, Clone, Copy)]
pub struct StragglerSpec {
    /// The afflicted device.
    pub device: u32,
    /// First round the slowdown applies to (1-based).
    pub from_round: u32,
    /// Speed divisor (10.0 = ten times slower).
    pub slow_factor: f64,
}

/// A device that dies mid-run.
#[derive(Debug, Clone, Copy)]
pub struct DeadSpec {
    /// The dying device.
    pub device: u32,
    /// Round at whose start it stops reporting (1-based).
    pub at_round: u32,
}

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Device count (node ids `0..devices`; the coordinator is
    /// `devices`).
    pub devices: usize,
    /// Rounds to simulate.
    pub rounds: u32,
    /// Ring size per round.
    pub num_selected: usize,
    /// Bytes of one parameter frame (the paper's `M`).
    pub param_bytes: u64,
    /// Virtual round window.
    pub window: Duration,
    /// Baseline local steps per device per window.
    pub steps_per_window: u64,
    /// Optional straggler injection.
    pub straggler: Option<StragglerSpec>,
    /// Optional dead-device injection.
    pub dead: Option<DeadSpec>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            rounds: 3,
            num_selected: 4,
            param_bytes: 64 * 1024,
            window: Duration::from_millis(500),
            steps_per_window: 100,
            straggler: None,
            dead: None,
        }
    }
}

/// Ground truth the simulation reports back (the test oracle for the
/// collector's ledgers).
#[derive(Debug, Clone)]
pub struct FleetRunReport {
    /// Total param payload bytes sent across the fleet — the number
    /// telemetry on-wire bytes are compared against.
    pub param_bytes_total: u64,
    /// Events emitted.
    pub events_emitted: u64,
    /// Final per-device versions.
    pub final_versions: Vec<u64>,
}

struct Emitter<'a> {
    emit: &'a mut dyn FnMut(Event),
    seqs: Vec<u64>,
    lamport: u64,
    count: u64,
}

impl Emitter<'_> {
    fn emit(&mut self, node: u32, at: VirtualTime, kind: EventKind) {
        self.lamport += 1;
        let seq = &mut self.seqs[node as usize];
        let event = Event {
            v: SCHEMA_VERSION,
            seq: *seq,
            node,
            t_us: (at.as_secs() * 1e6) as u64,
            lam: self.lamport,
            kind,
        };
        *seq += 1;
        self.count += 1;
        (self.emit)(event);
    }
}

/// Runs the fleet simulation, handing every event to `emit` in
/// emission order (already causally consistent: the fleet Lamport
/// counter is globally monotone).
///
/// # Errors
///
/// Rejects empty fleets, zero ring sizes larger than the fleet, and
/// fault specs naming devices outside the fleet.
pub fn simulate_fleet(
    cfg: &FleetConfig,
    emit: &mut dyn FnMut(Event),
) -> Result<FleetRunReport, SimError> {
    if cfg.devices == 0 {
        return Err(SimError::InvalidParameter(
            "fleet needs at least one device".into(),
        ));
    }
    if cfg.num_selected == 0 || cfg.num_selected > cfg.devices {
        return Err(SimError::InvalidParameter(format!(
            "ring size {} outside 1..={}",
            cfg.num_selected, cfg.devices
        )));
    }
    for (name, device) in [
        ("straggler", cfg.straggler.map(|s| s.device)),
        ("dead", cfg.dead.map(|d| d.device)),
    ] {
        if let Some(device) = device {
            if device as usize >= cfg.devices {
                return Err(SimError::InvalidParameter(format!(
                    "{name} device {device} outside the fleet of {}",
                    cfg.devices
                )));
            }
        }
    }

    let k = cfg.devices;
    let coord = k as u32;
    let mut em = Emitter {
        emit,
        seqs: vec![0; k + 1],
        lamport: 0,
        count: 0,
    };
    let mut versions = vec![0u64; k];
    let mut sent_bytes = vec![0u64; k];
    let mut sent_frames = vec![0u64; k];
    let mut alive = vec![true; k];
    let window_secs = cfg.window.as_secs_f64();
    let mut now = VirtualTime::ZERO;

    for d in 0..k {
        em.emit(d as u32, now, EventKind::DeviceStarted { device: d as u32 });
    }

    for round in 1..=cfg.rounds {
        let round_start = now;
        now = now.after(window_secs);

        if let Some(dead) = cfg.dead {
            if round == dead.at_round {
                alive[dead.device as usize] = false;
            }
        }

        // Local training during the window.
        let mut increments = vec![0u64; k];
        for d in 0..k {
            if !alive[d] {
                continue;
            }
            let mut steps = cfg.steps_per_window as f64;
            if let Some(s) = cfg.straggler {
                if d as u32 == s.device && round >= s.from_round {
                    steps /= s.slow_factor.max(1.0);
                }
            }
            let steps = steps.max(1.0) as u64;
            increments[d] = steps;
            versions[d] += steps;
            em.emit(
                d as u32,
                now,
                EventKind::LocalSteps {
                    device: d as u32,
                    steps,
                    version: versions[d],
                },
            );
        }

        // Coordinator: forecasts, drop detection, the Eq. 8-shaped
        // plan. Forecast = previous version + fleet-mean increment, so
        // a straggler's actual undershoots its prediction.
        let available: Vec<u32> = (0..k as u32).filter(|&d| alive[d as usize]).collect();
        let mean_inc = {
            let live: Vec<u64> = available.iter().map(|&d| increments[d as usize]).collect();
            if live.is_empty() {
                0.0
            } else {
                live.iter().sum::<u64>() as f64 / live.len() as f64
            }
        };
        for &d in &available {
            let actual = versions[d as usize] as f64;
            let predicted = (versions[d as usize] - increments[d as usize]) as f64 + mean_inc;
            em.emit(
                coord,
                now,
                EventKind::Prediction {
                    round,
                    device: d,
                    predicted,
                    actual,
                },
            );
        }
        if let Some(dead) = cfg.dead {
            if round == dead.at_round {
                em.emit(
                    coord,
                    now,
                    EventKind::DeviceDropped {
                        round,
                        device: dead.device,
                    },
                );
            }
        }

        let ring_len = cfg.num_selected.min(available.len());
        if ring_len == 0 {
            continue;
        }
        // Deterministic rotation through the available set: over
        // enough rounds every device is exercised, with no RNG.
        let start = ((round as usize - 1) * ring_len) % available.len();
        let selected: Vec<u32> = (0..ring_len)
            .map(|i| available[(start + i) % available.len()])
            .collect();
        let unselected: Vec<u32> = available
            .iter()
            .copied()
            .filter(|d| !selected.contains(d))
            .collect();
        let vers: Vec<f64> = available
            .iter()
            .map(|&d| versions[d as usize] as f64)
            .collect();
        let probabilities = vec![1.0 / available.len() as f64; available.len()];
        let broadcaster = selected[0];
        em.emit(
            coord,
            now,
            EventKind::RoundPlanned {
                round,
                available: available.clone(),
                versions: vers,
                probabilities,
                selected: selected.clone(),
                unselected: unselected.clone(),
                broadcaster,
            },
        );

        // The ring: reduce pass (each member forwards the running sum
        // to its successor), then the merge.
        let ring_secs = window_secs * 0.2;
        let ring_done = now.after(ring_secs);
        for (i, &d) in selected.iter().enumerate() {
            em.emit(
                d,
                now,
                EventKind::RingEnter {
                    round,
                    ring: selected.clone(),
                },
            );
            let dst = selected[(i + 1) % selected.len()];
            em.emit(
                d,
                ring_done,
                EventKind::FrameSent {
                    src: d,
                    dst,
                    bytes: cfg.param_bytes,
                    kind: "param_accum".into(),
                    lamport: 0,
                },
            );
            sent_bytes[d as usize] += cfg.param_bytes;
            sent_frames[d as usize] += 1;
            em.emit(
                d,
                ring_done,
                EventKind::Accumulate {
                    round,
                    hops: i as u32 + 1,
                },
            );
        }
        // A dead ring member discovered mid-reduce: bypass + repair.
        if let Some(dead) = cfg.dead {
            if round == dead.at_round && selected.contains(&dead.device) {
                let reporter = selected
                    .iter()
                    .copied()
                    .find(|&d| d != dead.device)
                    .unwrap_or(coord);
                em.emit(
                    reporter,
                    ring_done,
                    EventKind::BypassDeclared {
                        round,
                        dead: dead.device,
                    },
                );
                em.emit(
                    reporter,
                    ring_done,
                    EventKind::RingRepair {
                        round,
                        dead: dead.device,
                    },
                );
            }
        }
        for &d in &selected {
            em.emit(
                d,
                ring_done,
                EventKind::Merge {
                    round,
                    participants: selected.len() as u32,
                },
            );
            em.emit(
                d,
                ring_done,
                EventKind::RingExit {
                    round,
                    dissolved: false,
                },
            );
        }
        // Broadcast of the merged model to the unselected.
        for &u in &unselected {
            em.emit(
                broadcaster,
                ring_done,
                EventKind::FrameSent {
                    src: broadcaster,
                    dst: u,
                    bytes: cfg.param_bytes,
                    kind: "param_sync".into(),
                    lamport: 0,
                },
            );
            sent_bytes[broadcaster as usize] += cfg.param_bytes;
            sent_frames[broadcaster as usize] += 1;
        }
        now = ring_done;
        em.emit(
            coord,
            now,
            EventKind::RoundComplete {
                round,
                duration_us: (now.elapsed_since(round_start) * 1e6) as u64,
            },
        );
    }

    em.emit(coord, now, EventKind::ShutdownSent { round: cfg.rounds });
    for d in 0..k {
        em.emit(
            d as u32,
            now,
            EventKind::Ledger {
                sent_bytes: sent_bytes[d],
                recv_bytes: 0,
                frames: sent_frames[d],
            },
        );
        em.emit(
            d as u32,
            now,
            EventKind::DeviceFinished {
                device: d as u32,
                version: versions[d],
            },
        );
    }

    Ok(FleetRunReport {
        param_bytes_total: sent_bytes.iter().sum(),
        events_emitted: em.count,
        final_versions: versions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: &FleetConfig) -> (Vec<Event>, FleetRunReport) {
        let mut events = Vec::new();
        let report = simulate_fleet(cfg, &mut |e| events.push(e)).expect("valid config");
        (events, report)
    }

    #[test]
    fn healthy_fleet_emits_a_consistent_stream() {
        let cfg = FleetConfig::default();
        let (events, report) = collect(&cfg);
        assert_eq!(events.len() as u64, report.events_emitted);
        // Lamport strictly increases in emission order (one scale).
        for pair in events.windows(2) {
            assert!(pair[0].lam < pair[1].lam);
        }
        // Per-node seqs are contiguous from zero.
        let mut next = vec![0u64; cfg.devices + 1];
        for e in &events {
            assert_eq!(e.seq, next[e.node as usize], "node {}", e.node);
            next[e.node as usize] += 1;
        }
        // FrameSent bytes reconcile with the report's param ledger.
        let framed: u64 = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::FrameSent { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(framed, report.param_bytes_total);
        // And with the per-device Ledger events.
        let ledgered: u64 = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Ledger { sent_bytes, .. } => Some(*sent_bytes),
                _ => None,
            })
            .sum();
        assert_eq!(ledgered, report.param_bytes_total);
    }

    #[test]
    fn straggler_falls_behind_the_fleet() {
        let cfg = FleetConfig {
            devices: 10,
            rounds: 4,
            straggler: Some(StragglerSpec {
                device: 3,
                from_round: 1,
                slow_factor: 10.0,
            }),
            ..FleetConfig::default()
        };
        let (_, report) = collect(&cfg);
        let median = report.final_versions[0];
        assert!(
            (report.final_versions[3] as f64) < 0.2 * median as f64,
            "{:?}",
            report.final_versions
        );
    }

    #[test]
    fn dead_device_stops_reporting_and_is_dropped() {
        let cfg = FleetConfig {
            devices: 6,
            rounds: 4,
            dead: Some(DeadSpec {
                device: 2,
                at_round: 2,
            }),
            ..FleetConfig::default()
        };
        let (events, _) = collect(&cfg);
        let dropped = events.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::DeviceDropped {
                    round: 2,
                    device: 2
                }
            )
        });
        assert!(dropped, "coordinator must drop the dead device");
        // No training activity from the corpse after it dies.
        let post_mortem_steps = events.iter().any(|e| {
            e.node == 2
                && matches!(&e.kind, EventKind::LocalSteps { version, .. }
                    if *version > cfg.steps_per_window)
        });
        assert!(!post_mortem_steps, "dead devices do not train");
        // It never shows up as available again.
        let reappears = events.iter().any(|e| match &e.kind {
            EventKind::RoundPlanned {
                round, available, ..
            } => *round >= 2 && available.contains(&2),
            _ => false,
        });
        assert!(!reappears);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut sink = |_e: Event| {};
        assert!(simulate_fleet(
            &FleetConfig {
                devices: 0,
                ..FleetConfig::default()
            },
            &mut sink
        )
        .is_err());
        assert!(simulate_fleet(
            &FleetConfig {
                num_selected: 100,
                ..FleetConfig::default()
            },
            &mut sink
        )
        .is_err());
        assert!(simulate_fleet(
            &FleetConfig {
                dead: Some(DeadSpec {
                    device: 99,
                    at_round: 1
                }),
                ..FleetConfig::default()
            },
            &mut sink
        )
        .is_err());
    }
}
