//! Virtual-time discrete-event cluster simulator for the HADFL
//! reproduction.
//!
//! The paper evaluates on four V100 GPUs whose heterogeneity is *itself
//! simulated* with `sleep()` calls. This crate moves that simulation into
//! virtual time: devices have computing-power factors ([`ComputeModel`]),
//! point-to-point transfers cost latency plus bytes-over-bandwidth
//! ([`LinkModel`]), events are ordered deterministically
//! ([`EventQueue`]), devices can disconnect and reconnect on a schedule
//! ([`FaultPlan`]), and every byte moved is accounted ([`NetStats`]) so
//! the communication-volume claims of the paper (§II-B, §III-D) can be
//! checked exactly.
//!
//! # Example
//!
//! ```
//! use hadfl_simnet::{ComputeModel, DeviceId, EventQueue, VirtualTime};
//!
//! # fn main() -> Result<(), hadfl_simnet::SimError> {
//! // Power ratio [2, 1]: device 0 is twice as fast.
//! let compute = ComputeModel::new(0.010, &[2.0, 1.0])?;
//! let mut queue = EventQueue::new();
//! for dev in 0..2 {
//!     let id = DeviceId(dev);
//!     queue.push(VirtualTime::ZERO.after(compute.step_time(id, None)?), id);
//! }
//! let (t, first) = queue.pop().expect("two events queued");
//! assert_eq!(first, DeviceId(0)); // the fast device finishes first
//! assert!((t.as_secs() - 0.005).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod bandwidth;
mod compute;
mod error;
mod event;
mod fault;
mod fleet;
mod link;
mod stats;
mod time;

pub use bandwidth::BandwidthMatrix;
pub use compute::{ComputeModel, Jitter};
pub use error::SimError;
pub use event::EventQueue;
pub use fault::{FaultPlan, Outage};
pub use fleet::{simulate_fleet, DeadSpec, FleetConfig, FleetRunReport, StragglerSpec};
pub use link::LinkModel;
pub use stats::{Endpoint, NetStats};
pub use time::VirtualTime;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated device (dense indices from zero).
///
/// # Example
///
/// ```
/// use hadfl_simnet::DeviceId;
///
/// let d = DeviceId(3);
/// assert_eq!(d.index(), 3);
/// assert_eq!(d.to_string(), "dev3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The dense index of this device.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

impl From<usize> for DeviceId {
    fn from(index: usize) -> Self {
        DeviceId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_roundtrips() {
        let d = DeviceId::from(7usize);
        assert_eq!(d.index(), 7);
        assert_eq!(format!("{d}"), "dev7");
    }

    #[test]
    fn device_ids_order_by_index() {
        assert!(DeviceId(1) < DeviceId(2));
    }
}
