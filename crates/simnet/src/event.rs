use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::VirtualTime;

/// A deterministic discrete-event queue.
///
/// Events pop in time order; ties break by insertion order (FIFO), which
/// keeps multi-device simulations bit-reproducible across runs.
///
/// # Example
///
/// ```
/// use hadfl_simnet::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.push(VirtualTime::from_secs(2.0), "late");
/// q.push(VirtualTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest time (then lowest
        // seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &(t, e) in &[(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            q.push(VirtualTime::from_secs(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_secs(1.0);
        for e in 0..5 {
            q.push(t, e);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::ZERO, 1);
        q.push(VirtualTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(5.0), "e5");
        q.push(VirtualTime::from_secs(1.0), "e1");
        assert_eq!(q.pop().map(|(_, e)| e), Some("e1"));
        q.push(VirtualTime::from_secs(2.0), "e2");
        assert_eq!(q.pop().map(|(_, e)| e), Some("e2"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("e5"));
    }
}
