//! A small, self-contained Rust lexer.
//!
//! The analyzer's rules are syntactic, so the lexer's one job is to
//! split source text into tokens *reliably* — in particular it must
//! never mistake the contents of a string literal, raw string, char
//! literal, or comment for code (the failure mode of the grep gates
//! this crate replaces). It handles:
//!
//! - line comments (`//`), doc comments (`///`, `//!`),
//! - block comments (`/* */`) with nesting, doc blocks (`/** */`),
//! - string literals with escapes, byte strings, raw strings
//!   (`r"…"`, `r#"…"#`, any `#` count, `br…` forms),
//! - char literals vs lifetimes (`'a'` vs `'a`),
//! - raw identifiers (`r#match`),
//! - numeric literals including floats, exponents, and suffixes
//!   (needed by the float-reduce-order rule),
//! - everything else as single-character punctuation tokens; rules
//!   that care about `::` or `->` look at adjacent tokens.
//!
//! Tokens carry byte spans plus 1-based line/column so findings can be
//! reported as `file:line:col`.

/// Lexical class of a [`Tok`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (`1.0`, `1e-3`, `1.0f32`, …).
    Float,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Non-doc line comment (`// …`).
    LineComment,
    /// Doc comment: `/// …`, `//! …`, `/** … */`, `/*! … */`.
    DocComment,
    /// Non-doc block comment (`/* … */`, nesting handled).
    BlockComment,
    /// A single punctuation character (text is one char).
    Punct,
}

/// One token: kind plus byte span and 1-based position.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::DocComment | TokKind::BlockComment
        )
    }
}

/// Lexes `src` into tokens. Never fails: unexpected bytes become
/// punctuation tokens, an unterminated literal runs to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            // `None` means a whitespace run — no token.
            if let Some(kind) = self.next_kind() {
                self.toks.push(Tok {
                    kind,
                    start,
                    end: self.pos,
                    line,
                    col,
                });
            }
        }
        self.toks
    }

    /// Consumes one token (or one whitespace run, returning `None`).
    fn next_kind(&mut self) -> Option<TokKind> {
        let c = self.peek(0);
        if c.is_ascii_whitespace() {
            while self.peek(0).is_ascii_whitespace() && self.pos < self.src.len() {
                self.bump();
            }
            return None;
        }
        if c == b'/' && self.peek(1) == b'/' {
            let doc = matches!(self.peek(2), b'/' | b'!') && self.peek(3) != b'/';
            while self.pos < self.src.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            // `////…` banners are ordinary comments, `///`/`//!` are doc.
            return Some(if doc {
                TokKind::DocComment
            } else {
                TokKind::LineComment
            });
        }
        if c == b'/' && self.peek(1) == b'*' {
            let doc = matches!(self.peek(2), b'*' | b'!') && self.peek(3) != b'*';
            self.bump_n(2);
            let mut depth = 1usize;
            while self.pos < self.src.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump_n(2);
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return Some(if doc {
                TokKind::DocComment
            } else {
                TokKind::BlockComment
            });
        }
        // Raw strings / raw idents / byte strings: r" r# b" br" b' …
        if c == b'r' || c == b'b' {
            if let Some(kind) = self.try_prefixed_literal() {
                return Some(kind);
            }
        }
        if c == b'"' {
            self.eat_quoted_string();
            return Some(TokKind::Str);
        }
        if c == b'\'' {
            return Some(self.eat_char_or_lifetime());
        }
        if c.is_ascii_digit() {
            return Some(self.eat_number());
        }
        if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 {
            while matches!(self.peek(0), b'_' | b'0'..=b'9')
                || self.peek(0).is_ascii_alphabetic()
                || self.peek(0) >= 0x80
            {
                self.bump();
            }
            return Some(TokKind::Ident);
        }
        self.bump();
        Some(TokKind::Punct)
    }

    /// Handles `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'…'`, and raw
    /// idents `r#name`. Returns `None` when the `r`/`b` is just the
    /// start of an ordinary identifier.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let mut at = 1usize; // bytes after the leading r/b
        let first = self.peek(0);
        if first == b'b' && self.peek(1) == b'r' {
            at = 2;
        }
        if first == b'b' && self.peek(1) == b'\'' {
            // Byte char literal b'x'.
            self.bump(); // b
            self.eat_char_body();
            return Some(TokKind::Char);
        }
        // Count # marks (raw strings and raw idents).
        let mut hashes = 0usize;
        while self.peek(at + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(at + hashes) == b'"' {
            self.bump_n(at + hashes + 1);
            // Scan to `"` followed by `hashes` #s.
            'outer: while self.pos < self.src.len() {
                if self.peek(0) == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != b'#' {
                            self.bump();
                            continue 'outer;
                        }
                    }
                    self.bump_n(1 + hashes);
                    break;
                }
                self.bump();
            }
            return Some(TokKind::Str);
        }
        if first == b'r' && hashes == 1 && is_ident_byte(self.peek(at + 1)) {
            // Raw identifier r#name.
            self.bump_n(2);
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
            return Some(TokKind::Ident);
        }
        if first == b'b' && self.peek(1) == b'"' {
            self.bump(); // b
            self.eat_quoted_string();
            return Some(TokKind::Str);
        }
        None
    }

    /// Consumes a `"…"` with escapes; `self.pos` is at the opening quote.
    fn eat_quoted_string(&mut self) {
        self.bump(); // "
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// At `'`: char literal or lifetime.
    fn eat_char_or_lifetime(&mut self) -> TokKind {
        // Lifetime: 'ident not followed by a closing quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        self.eat_char_body();
        TokKind::Char
    }

    /// Consumes `'x'`, `'\n'`, `'\u{1F600}'`; `self.pos` at opening `'`.
    fn eat_char_body(&mut self) {
        self.bump(); // '
        match self.peek(0) {
            b'\\' => {
                self.bump(); // backslash
                if self.peek(0) == b'u' && self.peek(1) == b'{' {
                    while self.pos < self.src.len() && self.peek(0) != b'}' {
                        self.bump();
                    }
                }
                self.bump(); // escaped char / closing }
            }
            _ => {
                // A multibyte char ('…') is one literal: consume the
                // whole UTF-8 sequence, not just its first byte.
                self.bump();
                while (0x80..0xC0).contains(&self.peek(0)) {
                    self.bump();
                }
            }
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn eat_number(&mut self) -> TokKind {
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'X' | b'o' | b'O' | b'b' | b'B') {
            // Radix literal: consume prefix + radix digits, done.
            self.bump_n(2);
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
            // Width suffix (u32 etc.).
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
            return TokKind::Int;
        }
        while matches!(self.peek(0), b'0'..=b'9' | b'_') {
            self.bump();
        }
        // Fractional part: only when `.` is followed by a digit or
        // terminates the literal (`1.`), not a method call (`1.max(2)`)
        // or tuple access.
        if self.peek(0) == b'.' && !is_ident_start(self.peek(1)) && self.peek(1) != b'.' {
            float = true;
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while self.peek(0).is_ascii_digit() {
                self.bump();
            }
        }
        // Suffix (f32/f64 force float-ness; u32 etc. do not).
        if is_ident_start(self.peek(0)) {
            let suffix_start = self.pos;
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_code() {
        let src = r##"
            let s = "Instant::now()"; // Instant::now()
            /* thread::spawn */
            let r = r#"println!("x")"#;
        "##;
        let idents: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("&'a str; 'x'; '\\n'; b'q'");
        assert!(ks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokKind::Char, "'x'".into())));
        assert!(ks.contains(&(TokKind::Char, "'\\n'".into())));
        assert!(ks.contains(&(TokKind::Char, "b'q'".into())));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let ks = kinds("/// doc\n//! inner\n// plain\n//// banner");
        assert_eq!(
            ks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            [
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::LineComment,
                TokKind::LineComment,
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* a /* b */ c */ x");
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert_eq!(ks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn floats_and_ints() {
        let ks = kinds("1 1.0 1e-3 2.5f32 7f32 3usize x.0");
        assert_eq!(ks[0].0, TokKind::Int);
        assert_eq!(ks[1].0, TokKind::Float);
        assert_eq!(ks[2].0, TokKind::Float);
        assert_eq!(ks[3].0, TokKind::Float);
        assert_eq!(ks[4].0, TokKind::Float);
        assert_eq!(ks[5].0, TokKind::Int);
        // Tuple access stays ident / punct / int.
        assert_eq!(ks[6], (TokKind::Ident, "x".into()));
        assert_eq!(ks[8].0, TokKind::Int);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "r#\"a \" b\"# tail";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::Str);
        assert_eq!(ks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("r#match + br#\"raw\"#");
        assert_eq!(ks[0], (TokKind::Ident, "r#match".into()));
        assert_eq!(ks[2].0, TokKind::Str);
    }
}
