//! Source model and scope tracking shared by every rule.
//!
//! [`SourceFile`] owns the text and tokens; `code` is the view with
//! comments stripped (rules reason about code tokens, the waiver
//! parser reads the comments). On top of that view this module
//! computes the *scope map*:
//!
//! - matched `()`/`[]`/`{}` bracket pairs,
//! - brace depth per token,
//! - test regions (`#[cfg(test)]` items and `#[test]` fns), so rules
//!   can exempt test code without hand-listing files,
//! - function spans with names, nested fns included — the per-file
//!   symbol foundation that lets a rule exempt `fn digest_msg` rather
//!   than "any line mentioning digest_msg".

use crate::lexer::{lex, Tok, TokKind};

/// A lexed source file plus its comment-stripped code view.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub text: String,
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens.
    pub code: Vec<usize>,
}

impl SourceFile {
    pub fn new(path: &str, text: &str) -> SourceFile {
        let toks = lex(text);
        let code = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
            toks,
            code,
        }
    }

    /// Number of code tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no code tokens.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The `i`-th code token.
    pub fn tok(&self, i: usize) -> &Tok {
        &self.toks[self.code[i]]
    }

    /// Text of the `i`-th code token.
    pub fn text_of(&self, i: usize) -> &str {
        self.tok(i).text(&self.text)
    }

    /// Whether code token `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Ident && self.text_of(i) == name
    }

    /// Whether code token `i` is any identifier.
    pub fn is_any_ident(&self, i: usize) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Ident
    }

    /// Whether code token `i` is the punctuation character `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Punct && self.text_of(i).starts_with(c)
    }

    /// Whether code tokens at `i` form `::` (two adjacent `:`).
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }
}

/// A function item: its name and the code-token extents of its
/// signature and body.
pub struct FnSpan {
    pub name: String,
    /// Code-token index of the `fn` keyword.
    pub sig_start: usize,
    /// Code-token index of the opening `{`.
    pub body_open: usize,
    /// Code-token index of the matching `}`.
    pub body_close: usize,
}

/// Matched brackets, depths, test regions, and function spans for one
/// file.
pub struct ScopeMap {
    /// For each code token: index of the matching close bracket when
    /// the token is `(`/`[`/`{`, else `usize::MAX`.
    close_of: Vec<usize>,
    /// Brace depth of the context containing each code token (the
    /// `{` itself carries the outer depth).
    depth: Vec<u32>,
    /// Code-token ranges `(start, end)` (inclusive) that are test
    /// code.
    test_regions: Vec<(usize, usize)>,
    pub fns: Vec<FnSpan>,
}

impl ScopeMap {
    pub fn build(src: &SourceFile) -> ScopeMap {
        let n = src.len();
        let mut close_of = vec![usize::MAX; n];
        let mut depth = vec![0u32; n];
        let mut brace = 0u32;
        let mut stack: Vec<usize> = Vec::new();
        for (i, d) in depth.iter_mut().enumerate() {
            *d = brace;
            if src.tok(i).kind != TokKind::Punct {
                continue;
            }
            match src.text_of(i).as_bytes()[0] {
                b'(' | b'[' | b'{' => {
                    stack.push(i);
                    if src.is_punct(i, '{') {
                        brace += 1;
                    }
                }
                b')' | b']' | b'}' => {
                    if let Some(open) = stack.pop() {
                        close_of[open] = i;
                    }
                    if src.is_punct(i, '}') {
                        brace = brace.saturating_sub(1);
                        *d = brace;
                    }
                }
                _ => {}
            }
        }
        let mut map = ScopeMap {
            close_of,
            depth,
            test_regions: Vec::new(),
            fns: Vec::new(),
        };
        map.find_test_regions(src);
        map.find_fns(src);
        map
    }

    /// Matching close bracket for the open bracket at code index `i`
    /// (or the end of file when unbalanced).
    pub fn close_of(&self, i: usize) -> usize {
        let c = self.close_of[i];
        if c == usize::MAX {
            self.depth.len().saturating_sub(1)
        } else {
            c
        }
    }

    /// Brace depth of the context containing code token `i`.
    pub fn depth(&self, i: usize) -> u32 {
        self.depth[i]
    }

    /// Whether code token `i` lies in test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// Innermost function span whose *body* contains code token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_open <= i && i <= f.body_close)
            .min_by_key(|f| f.body_close - f.body_open)
    }

    /// Innermost function whose whole item (signature + body) contains
    /// code token `i` — attributes parameters to their function.
    pub fn enclosing_fn_item(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.sig_start <= i && i <= f.body_close)
            .min_by_key(|f| f.body_close - f.sig_start)
    }

    /// Marks `#[cfg(test)]`-annotated items and `#[test]` fns: the
    /// brace block following the attribute becomes a test region.
    fn find_test_regions(&mut self, src: &SourceFile) {
        let n = src.len();
        let mut i = 0;
        while i < n {
            if !(src.is_punct(i, '#') && src.is_punct(i + 1, '[')) {
                i += 1;
                continue;
            }
            let attr_close = self.close_of(i + 1);
            if self.attr_is_test(src, i + 2, attr_close) {
                // Find the annotated item's block: the first `{` after
                // the attribute, skipping bracketed groups (parameter
                // lists, further attributes). A `;` first means a
                // block-less item (`#[cfg(test)] use …;`).
                let mut j = attr_close + 1;
                while j < n {
                    if src.is_punct(j, ';') {
                        break;
                    }
                    if src.is_punct(j, '{') {
                        self.test_regions.push((j, self.close_of(j)));
                        break;
                    }
                    if src.is_punct(j, '(') || src.is_punct(j, '[') {
                        j = self.close_of(j);
                    }
                    j += 1;
                }
            }
            i = attr_close + 1;
        }
    }

    /// Whether the attribute tokens in `(start..end)` denote test
    /// code: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but
    /// not `#[cfg(not(test))]`.
    fn attr_is_test(&self, src: &SourceFile, start: usize, end: usize) -> bool {
        if src.is_ident(start, "test") && start + 1 == end {
            return true;
        }
        if !src.is_ident(start, "cfg") {
            return false;
        }
        let mut negated_until = 0usize;
        for j in start + 1..end {
            if src.is_ident(j, "not") && src.is_punct(j + 1, '(') {
                negated_until = negated_until.max(self.close_of(j + 1));
            }
            if src.is_ident(j, "test") && j > negated_until {
                return true;
            }
        }
        false
    }

    /// Records every `fn name(…) … { … }` item, nested fns included.
    fn find_fns(&mut self, src: &SourceFile) {
        let n = src.len();
        for i in 0..n {
            if !src.is_ident(i, "fn") || !src.is_any_ident(i + 1) {
                continue;
            }
            // Skip `fn` in type position (`fn(` / `Fn(`): requires a
            // name identifier right after, which types don't have.
            let name = src.text_of(i + 1).to_string();
            let mut j = i + 2;
            let mut body = None;
            while j < n {
                if src.is_punct(j, ';') {
                    break; // trait method declaration — no body
                }
                if src.is_punct(j, '{') {
                    body = Some(j);
                    break;
                }
                if src.is_punct(j, '(') || src.is_punct(j, '[') {
                    j = self.close_of(j);
                }
                j += 1;
            }
            if let Some(open) = body {
                self.fns.push(FnSpan {
                    name,
                    sig_start: i,
                    body_open: open,
                    body_close: self.close_of(open),
                });
            }
        }
    }
}

/// All code-token extents `(open_paren, close_paren)` of calls to
/// `name(…)` — used by the float-reduce-order rule to exempt the
/// fixed-association `chunked_sum`/`par_reduce` call sites.
pub fn call_extents(src: &SourceFile, scopes: &ScopeMap, name: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..src.len() {
        if src.is_ident(i, name) && src.is_punct(i + 1, '(') {
            out.push((i + 1, scopes.close_of(i + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(srctext: &str) -> (SourceFile, ScopeMap) {
        let src = SourceFile::new("x.rs", srctext);
        let map = ScopeMap::build(&src);
        (src, map)
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let text = "
            fn real() { work(); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() { helper(); }
            }
            #[cfg(not(test))]
            fn also_real() { more(); }
        ";
        let (src, map) = setup(text);
        let idx = |name: &str| (0..src.len()).find(|&i| src.is_ident(i, name)).unwrap();
        assert!(!map.in_test(idx("work")));
        assert!(map.in_test(idx("helper")));
        assert!(map.in_test(idx("t")));
        assert!(!map.in_test(idx("more")));
    }

    #[test]
    fn fn_spans_track_names_and_nesting() {
        let text = "
            fn outer(a: usize) -> usize {
                fn inner() { body(); }
                tail()
            }
        ";
        let (src, map) = setup(text);
        let body = (0..src.len()).find(|&i| src.is_ident(i, "body")).unwrap();
        let tail = (0..src.len()).find(|&i| src.is_ident(i, "tail")).unwrap();
        assert_eq!(map.enclosing_fn(body).unwrap().name, "inner");
        assert_eq!(map.enclosing_fn(tail).unwrap().name, "outer");
    }

    #[test]
    fn depth_and_brackets() {
        let (src, map) = setup("fn f() { { inner(); } }");
        let inner = (0..src.len()).find(|&i| src.is_ident(i, "inner")).unwrap();
        assert_eq!(map.depth(inner), 2);
        let first_open = (0..src.len()).find(|&i| src.is_punct(i, '{')).unwrap();
        assert_eq!(map.close_of(first_open), src.len() - 1);
    }
}
