//! Inline waivers: `// lint:allow(rule-name): reason`.
//!
//! A waiver suppresses findings of the named rule on its own line
//! (trailing comment) or, when the comment stands alone on a line, on
//! the next code line. The grammar is deliberately strict:
//!
//! - the rule name must be a registered rule,
//! - the reason must be non-empty — a waiver is a reviewed exception,
//!   and the reason is where the review lives,
//! - doc comments don't carry waivers (they are API documentation,
//!   not annotations).
//!
//! Violations of the grammar are themselves findings
//! (`invalid-waiver`), and a valid waiver that suppressed nothing is
//! flagged too (`unused-waiver`) so stale exceptions cannot linger
//! after the code they excused is gone.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scope::SourceFile;

pub struct Waiver {
    pub rule: String,
    /// Line whose findings this waiver covers.
    pub target_line: u32,
    /// Where the waiver itself sits (for unused-waiver findings).
    pub line: u32,
    pub col: u32,
    pub used: bool,
}

/// Scans comments for waivers. Grammar errors are appended to
/// `findings` immediately; valid waivers are returned for matching.
pub fn collect(src: &SourceFile, known_rules: &[&str], findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (ti, tok) in src.toks.iter().enumerate() {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = tok.text(&src.text);
        let Some(at) = text.find("lint:allow") else {
            continue;
        };
        let invalid = |msg: &str| Finding {
            rule: "invalid-waiver".into(),
            file: src.path.clone(),
            line: tok.line,
            col: tok.col,
            message: msg.to_string(),
        };
        let rest = &text[at + "lint:allow".len()..];
        let Some(rest) = rest.strip_prefix('(') else {
            findings.push(invalid(
                "malformed waiver: expected `lint:allow(rule): reason`",
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(invalid("malformed waiver: missing `)` after rule name"));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            findings.push(invalid(&format!(
                "waiver names unknown rule `{rule}` (see --list-rules)"
            )));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = match after.strip_prefix(':') {
            Some(r) => r.trim().trim_end_matches("*/").trim(),
            None => {
                findings.push(invalid(&format!(
                    "waiver for `{rule}` is missing the `: reason` clause"
                )));
                continue;
            }
        };
        if reason.is_empty() {
            findings.push(invalid(&format!(
                "waiver for `{rule}` has an empty reason — a waiver is a \
                 reviewed exception and must say why"
            )));
            continue;
        }
        // Trailing comment waives its own line; a standalone comment
        // line waives the next code line.
        let standalone = src
            .toks
            .iter()
            .take(ti)
            .rev()
            .take_while(|t| t.line == tok.line)
            .count()
            == 0;
        let target_line = if standalone {
            src.toks[ti + 1..]
                .iter()
                .find(|t| !t.is_comment())
                .map(|t| t.line)
                .unwrap_or(tok.line)
        } else {
            tok.line
        };
        out.push(Waiver {
            rule,
            target_line,
            line: tok.line,
            col: tok.col,
            used: false,
        });
    }
    out
}

/// Partitions `raw` findings into surviving ones and a waived count,
/// then reports unused waivers. Meta findings (`invalid-waiver`,
/// `unused-waiver`) cannot be waived.
pub fn apply(
    src: &SourceFile,
    mut waivers: Vec<Waiver>,
    raw: Vec<Finding>,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut waived = 0usize;
    for f in raw {
        let slot = waivers.iter_mut().find(|w| {
            !matches!(f.rule.as_str(), "invalid-waiver" | "unused-waiver")
                && w.rule == f.rule
                && w.target_line == f.line
        });
        match slot {
            Some(w) => {
                w.used = true;
                waived += 1;
            }
            None => findings.push(f),
        }
    }
    for w in waivers.iter().filter(|w| !w.used) {
        findings.push(Finding {
            rule: "unused-waiver".into(),
            file: src.path.clone(),
            line: w.line,
            col: w.col,
            message: format!(
                "waiver for `{}` suppressed nothing — remove it or move it \
                 next to the site it excuses",
                w.rule
            ),
        });
    }
    waived
}
