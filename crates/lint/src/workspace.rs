//! Workspace driver: file discovery, scope matching, and the
//! аnalyze-everything entry point used by the CLI and CI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::report::Report;
use crate::rules;

/// Locates the workspace root by walking up from `start` to the
/// first `Cargo.toml` containing a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Directories never descended into: build output, the offline
/// dependency stand-ins (not first-party code), VCS metadata, and the
/// analyzer's own seeded-violation corpus.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// All `.rs` files under `root` (workspace-relative, `/`-separated)
/// that at least one rule's scope covers.
pub fn discover(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = relative_to(root, &path);
            if rules::all().iter().any(|r| r.scope.matches(&rel)) {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyzes every in-scope file under `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let files = discover(root)?;
    analyze_files(root, &files)
}

/// Analyzes the given workspace-relative files, each under the rules
/// whose scope covers it. Files no rule covers are skipped (and not
/// counted as scanned).
pub fn analyze_files(root: &Path, files: &[String]) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in files {
        let applicable: Vec<&str> = rules::all()
            .iter()
            .filter(|r| r.scope.matches(rel))
            .map(|r| r.id)
            .collect();
        if applicable.is_empty() {
            continue;
        }
        let text = fs::read_to_string(root.join(rel))?;
        let result = crate::analyze_source(rel, &text, &applicable);
        report.findings.extend(result.findings);
        report.waived += result.waived;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// `path` relative to `root`, `/`-separated.
fn relative_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
