//! `print-in-protocol`: no stdout/stderr macros in protocol paths.
//!
//! Runtime observability goes through the `hadfl-telemetry` event
//! layer — structured, schema-versioned, zero-cost when disabled.
//! Stray prints bypass the sinks, garble node output parsed by tests,
//! and pay formatting cost even when nobody listens. Doc-comment
//! examples are exempt by construction (comments are not code
//! tokens).

use super::{finding, FileCx};
use crate::report::Finding;

const MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        for m in MACROS {
            if src.is_ident(i, m) && src.is_punct(i + 1, '!') {
                out.push(finding(
                    cx,
                    i,
                    "print-in-protocol",
                    format!("`{m}!` in a protocol path — emit a `hadfl-telemetry` event instead"),
                ));
            }
        }
    }
    out
}
