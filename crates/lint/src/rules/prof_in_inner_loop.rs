//! `prof-in-inner-loop`: no profiler scopes inside kernel loops.
//!
//! A [`hadfl_prof::scope`] guard is a few nanoseconds when a profiler
//! is installed and a call-tree row per distinct stack — cheap once
//! per kernel invocation, ruinous once per element. A scope opened
//! inside a `for`/`while`/`loop` body multiplies the guard cost by the
//! trip count, skews the very numbers being measured, and (when the
//! loop is the par-chunk callback) splinters one logical op into
//! thousands of identical rows. The fix is always the same: hoist the
//! guard above the loop so one scope covers the whole op, with
//! `scope_bytes` carrying the op's total bytes.
//!
//! The rule flags `hadfl_prof::scope(...)` / `hadfl_prof::scope_bytes(...)`
//! — and bare `scope(` / `scope_bytes(` calls via a `use` import —
//! inside any loop body in the kernel crates. Closures defined inside
//! a loop body count: the par-chunk callback *is* the inner loop.
//! `impl Trait for Type` is not a loop; test code is exempt.

use super::{finding, FileCx};
use crate::report::Finding;

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let bodies = loop_bodies(cx);
    let mut out = Vec::new();
    for i in 0..src.len() {
        if cx.scopes.in_test(i) || !bodies.iter().any(|&(open, close)| open < i && i < close) {
            continue;
        }
        for name in ["scope", "scope_bytes"] {
            if !src.is_ident(i, name) || !src.is_punct(i + 1, '(') {
                continue;
            }
            // `hadfl_prof::scope(` — or a bare imported call, which a
            // leading `.` (method) or `::` (some other path) rules out.
            let pathed = i >= 2 && src.is_path_sep(i - 2);
            let qualified = pathed && src.is_ident(i - 3, "hadfl_prof");
            let bare = !(pathed
                || src.is_punct(i.wrapping_sub(1), '.')
                || src.is_ident(i.wrapping_sub(1), "fn"));
            if qualified || bare {
                out.push(finding(
                    cx,
                    i,
                    "prof-in-inner-loop",
                    format!(
                        "`{name}(...)` inside a loop body pays the guard and a \
                         call-tree row per iteration — hoist the scope above the \
                         loop so one guard covers the whole op"
                    ),
                ));
            }
        }
    }
    out
}

/// Code-token extents `(open, close)` of every `for`/`while`/`loop`
/// body's braces.
fn loop_bodies(cx: &FileCx) -> Vec<(usize, usize)> {
    let src = cx.src;
    let n = src.len();
    let mut out = Vec::new();
    for i in 0..n {
        let (is_for, is_while, is_loop) = (
            src.is_ident(i, "for"),
            src.is_ident(i, "while"),
            src.is_ident(i, "loop"),
        );
        if !(is_for || is_while || is_loop) {
            continue;
        }
        if is_loop {
            if src.is_punct(i + 1, '{') {
                out.push((i + 1, cx.scopes.close_of(i + 1)));
            }
            continue;
        }
        // Scan the loop head for its body `{` (bare struct literals
        // are illegal in conditions, so the first top-level `{` is the
        // body), skipping bracket groups — a closure's block inside
        // `while f(|| { .. })` stays inside its `(` group. A `for`
        // with no top-level `in` along the way is `impl Trait for
        // Type` or a higher-ranked `for<'a>`, not a loop.
        let mut saw_in = false;
        let mut j = i + 1;
        while j < n {
            if src.is_punct(j, '(') || src.is_punct(j, '[') {
                j = cx.scopes.close_of(j);
            } else if src.is_ident(j, "in") {
                saw_in = true;
            } else if src.is_punct(j, '{') {
                if is_while || saw_in {
                    out.push((j, cx.scopes.close_of(j)));
                }
                break;
            } else if src.is_punct(j, ';') {
                break;
            }
            j += 1;
        }
    }
    out
}
