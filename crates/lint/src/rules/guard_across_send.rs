//! `guard-across-send`: no lock guard held across `Port::send`.
//!
//! A two-argument `.send(to, msg)` (the `Port::send` shape) can block
//! on a slow peer's TCP buffer; a mutex guard held meanwhile stalls
//! the reader/heartbeat threads into a distributed deadlock.
//! One-argument channel sends are non-blocking and exempt.
//!
//! The rule tracks guard *lifetimes*, which is what the old awk gate
//! could not do. Its three documented blind spots are regression
//! fixtures:
//!
//! - **method-chain guards** (false negative): `let g =
//!   m.lock().unwrap();` still binds a guard — `unwrap`/`expect` are
//!   guard-preserving, unlike `len()`/`clone()` which reduce the
//!   statement to a value and drop the temporary guard at the `;`.
//! - **`drop()` before send** (false positive): `drop(g)` ends the
//!   guard; a later send is fine.
//! - **shadowed guards** (false negative): `let g = compute();` in an
//!   inner scope does *not* end an outer guard named `g` — Rust drops
//!   shadowed values at scope end, not at the shadowing `let`.

use super::{finding, let_statements, split_args, FileCx, LetStmt};
use crate::report::Finding;

/// Zero-argument methods that acquire a guard.
const ACQUIRE: [&str; 3] = ["lock", "read", "write"];
/// Chain methods that pass a guard through (Result/option shells).
const PRESERVE: [&str; 2] = ["unwrap", "expect"];

struct Guard {
    name: String,
    depth: u32,
    line: u32,
}

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let lets = let_statements(cx);
    let mut live: Vec<Guard> = Vec::new();
    let mut out = Vec::new();
    for i in 0..src.len() {
        if src.is_punct(i, '}') {
            let d = cx.scopes.depth(i);
            live.retain(|g| g.depth <= d);
            continue;
        }
        if src.is_ident(i, "let") {
            if let Some(stmt) = lets.iter().find(|s| s.let_idx == i) {
                if let (Some(name), true) = (&stmt.name, init_is_guard(cx, stmt)) {
                    live.push(Guard {
                        name: name.clone(),
                        // An `if let`/`while let` binding lives in the
                        // block that follows, one level deeper.
                        depth: cx.scopes.depth(i) + u32::from(stmt.is_cond),
                        line: src.tok(i).line,
                    });
                }
            }
            continue;
        }
        // `drop(name)` ends the innermost guard of that name.
        if src.is_ident(i, "drop")
            && src.is_punct(i + 1, '(')
            && src.is_any_ident(i + 2)
            && src.is_punct(i + 3, ')')
        {
            let name = src.text_of(i + 2);
            if let Some(pos) = live.iter().rposition(|g| g.name == name) {
                live.remove(pos);
            }
            continue;
        }
        // Two-argument `.send(to, msg)` — the blocking Port::send shape.
        if src.is_punct(i, '.') && src.is_ident(i + 1, "send") && src.is_punct(i + 2, '(') {
            let close = cx.scopes.close_of(i + 2);
            if split_args(cx, i + 2, close).len() >= 2 && !live.is_empty() {
                let held: Vec<String> = live
                    .iter()
                    .map(|g| format!("`{}` (bound line {})", g.name, g.line))
                    .collect();
                out.push(finding(
                    cx,
                    i + 1,
                    "guard-across-send",
                    format!(
                        "`Port::send` with lock guard{} {} still held — drop the \
                         guard (or confine it to a temporary) before sending",
                        if held.len() > 1 { "s" } else { "" },
                        held.join(", ")
                    ),
                ));
            }
        }
    }
    out
}

/// Whether a `let` initializer binds a guard: it contains a
/// zero-argument `lock()`/`read()`/`write()` whose method chain runs
/// to the end of the initializer through guard-preserving methods
/// only. `m.lock().remove(&k)` reduces to a value (temporary guard,
/// dropped at the `;`); `m.lock().unwrap()` stays a guard.
fn init_is_guard(cx: &FileCx, stmt: &LetStmt) -> bool {
    let src = cx.src;
    let Some((start, end)) = stmt.init else {
        return false;
    };
    let mut j = start;
    while j + 2 < end {
        let acquires = ACQUIRE.iter().any(|m| src.is_ident(j, m))
            && src.is_punct(j + 1, '(')
            && src.is_punct(j + 2, ')');
        if !acquires {
            j += 1;
            continue;
        }
        // Follow the chain from after `lock()`.
        let mut k = j + 3;
        let mut guardish = true;
        while k < end && guardish {
            if src.is_punct(k, '?') {
                k += 1;
            } else if src.is_punct(k, '.') && src.is_any_ident(k + 1) && src.is_punct(k + 2, '(') {
                if PRESERVE.iter().any(|m| src.is_ident(k + 1, m)) {
                    k = cx.scopes.close_of(k + 2) + 1;
                } else {
                    guardish = false;
                }
            } else {
                // Anything else before the end of the initializer
                // (an operator, a closing paren of an enclosing call)
                // means the lock() result is consumed mid-expression.
                guardish = false;
            }
        }
        if guardish && k >= end {
            return true;
        }
        j += 1;
    }
    false
}
