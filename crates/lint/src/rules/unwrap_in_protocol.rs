//! `unwrap-in-protocol`: no `unwrap`/`expect`/explicit panics in
//! non-test protocol code.
//!
//! A panic in the transport or executor kills a reader, heartbeat, or
//! driver thread silently and wedges the node — errors must propagate
//! (`?`, `Result`) or be logged through telemetry. This extends the
//! old two-file `#![warn(clippy::unwrap_used)]` annotations to every
//! non-test line of `crates/net` and the core protocol modules. Test
//! modules (`#[cfg(test)]`), `#[test]` fns, and doc-comment examples
//! are exempt by construction; `unwrap_or`/`unwrap_or_else`/
//! `unwrap_or_default` never match (token equality, not substrings).

use super::{finding, FileCx};
use crate::report::Finding;

const PANICKY_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        if cx.scopes.in_test(i) {
            continue;
        }
        if src.is_punct(i, '.') && src.is_punct(i + 2, '(') {
            for m in PANICKY_METHODS {
                if src.is_ident(i + 1, m) {
                    out.push(finding(
                        cx,
                        i + 1,
                        "unwrap-in-protocol",
                        format!(
                            "`.{m}()` in protocol code can panic a runtime thread — \
                             propagate the error or log it via telemetry"
                        ),
                    ));
                }
            }
        }
        if src.is_punct(i + 1, '!') {
            for m in PANIC_MACROS {
                if src.is_ident(i, m) {
                    out.push(finding(
                        cx,
                        i,
                        "unwrap-in-protocol",
                        format!(
                            "`{m}!` in protocol code kills the thread silently — \
                             return an error instead"
                        ),
                    ));
                }
            }
        }
    }
    out
}
