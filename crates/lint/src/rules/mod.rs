//! Rule registry and the helpers shared by rules.
//!
//! Every rule is a pure function over one file's token/scope model,
//! paired with a *path scope*: the workspace-relative prefixes it
//! applies to and an explicit allowlist of exclusions, each carrying
//! a reason. The scopes are directory-shaped (new modules are covered
//! the day they are added) — the opposite of the hand-listed files of
//! the old `tools/lint.sh` gates.

use crate::report::Finding;
use crate::scope::{ScopeMap, SourceFile};

pub mod ambient_clock;
pub mod blocking_in_emit;
pub mod float_reduce_order;
pub mod guard_across_send;
pub mod nondet_iteration;
pub mod park_loop_spin;
pub mod print_in_protocol;
pub mod prof_in_inner_loop;
pub mod raw_frame;
pub mod raw_spawn;
pub mod unwrap_in_protocol;

/// Per-file analysis context handed to each rule.
pub struct FileCx<'a> {
    pub src: &'a SourceFile,
    pub scopes: &'a ScopeMap,
}

/// Where a rule applies, with explicit reasoned exclusions.
pub struct Scope {
    /// Directory prefixes (trailing `/`).
    pub dirs: &'static [&'static str],
    /// Individual files.
    pub files: &'static [&'static str],
    /// `(prefix, reason)` carve-outs within the included set.
    pub excludes: &'static [(&'static str, &'static str)],
}

impl Scope {
    pub fn matches(&self, path: &str) -> bool {
        let included = self.dirs.iter().any(|d| path.starts_with(d)) || self.files.contains(&path);
        included && !self.excludes.iter().any(|(p, _)| path.starts_with(p))
    }
}

/// A registered rule.
pub struct Rule {
    pub id: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    pub scope: Scope,
    pub run: fn(&FileCx) -> Vec<Finding>,
}

/// The registry, in gate order (1–5 are the old `tools/lint.sh`
/// gates, now scope-aware; 6–8 are new).
pub fn all() -> &'static [Rule] {
    &RULES
}

/// Looks up rules by id; unknown ids yield `None`.
pub fn by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// All registered rule ids (waiver validation).
pub fn ids() -> Vec<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

static RULES: [Rule; 11] = [
    Rule {
        id: "ambient-clock",
        summary: "no Instant::now()/SystemTime::now() in protocol paths — time goes \
                  through the hadfl::clock::Clock seam so hadfl-check stays sound",
        scope: Scope {
            dirs: &["crates/core/src/", "crates/net/src/"],
            files: &[],
            excludes: &[(
                "crates/core/src/clock.rs",
                "the Clock seam's WallClock is the one sanctioned real-time source",
            )],
        },
        run: ambient_clock::run,
    },
    Rule {
        id: "guard-across-send",
        summary: "no lock guard held across a blocking two-argument Port::send — a \
                  stalled peer must not wedge the reader/heartbeat threads",
        scope: Scope {
            dirs: &["crates/core/src/", "crates/net/src/"],
            files: &[],
            excludes: &[],
        },
        run: guard_across_send::run,
    },
    Rule {
        id: "print-in-protocol",
        summary: "no print!/println!/eprint!/eprintln!/dbg! in protocol paths — \
                  observability goes through hadfl-telemetry events",
        scope: Scope {
            dirs: &["crates/core/src/", "crates/net/src/"],
            files: &[],
            excludes: &[(
                "crates/net/src/bin/",
                "a CLI binary's stdout/stderr is its user interface",
            )],
        },
        run: print_in_protocol::run,
    },
    Rule {
        id: "raw-frame",
        summary: "no Message::encode()/decode() outside wire::seal/wire::open — every \
                  on-wire frame must carry a causal stamp",
        scope: Scope {
            dirs: &["crates/core/src/", "crates/net/src/"],
            files: &[],
            excludes: &[(
                "crates/core/src/wire.rs",
                "the defining module: seal/open are built from encode/decode here",
            )],
        },
        run: raw_frame::run,
    },
    Rule {
        id: "raw-spawn",
        summary: "no raw thread spawns in the compute kernels — parallelism flows \
                  through hadfl-par's fixed chunk boundaries (crates/par itself is \
                  the one sanctioned spawner and is outside this scope)",
        scope: Scope {
            dirs: &["crates/tensor/src/", "crates/nn/src/"],
            files: &["crates/core/src/aggregate.rs"],
            excludes: &[],
        },
        run: raw_spawn::run,
    },
    Rule {
        id: "nondeterministic-iteration",
        summary: "no iteration over HashMap/HashSet in digest, aggregation, \
                  coordinator-selection, or trace-merge paths — iteration order \
                  escapes into wire traffic and telemetry; use BTreeMap or sort",
        scope: Scope {
            dirs: &[
                "crates/core/src/",
                "crates/net/src/",
                "crates/telemetry/src/",
            ],
            files: &[],
            excludes: &[],
        },
        run: nondet_iteration::run,
    },
    Rule {
        id: "unwrap-in-protocol",
        summary: "no unwrap/expect/panic!/unreachable! in non-test protocol code — a \
                  panic kills a reader or driver thread silently and wedges the node",
        scope: Scope {
            dirs: &["crates/net/src/"],
            files: &[
                "crates/core/src/exec.rs",
                "crates/core/src/transport.rs",
                "crates/core/src/wire.rs",
                "crates/core/src/coordinator.rs",
                "crates/core/src/gossip.rs",
                "crates/core/src/driver.rs",
            ],
            excludes: &[],
        },
        run: unwrap_in_protocol::run,
    },
    Rule {
        id: "float-reduce-order",
        summary: "no naive f32/f64 sum or float fold outside the fixed-association \
                  chunked_sum/par_reduce helpers — free-order accumulation breaks \
                  bit-identity across HADFL_THREADS",
        scope: Scope {
            dirs: &["crates/tensor/src/"],
            files: &["crates/core/src/aggregate.rs"],
            excludes: &[],
        },
        run: float_reduce_order::run,
    },
    Rule {
        id: "blocking-in-emit",
        summary: "no .lock() or file/socket construction in Telemetry::emit / \
                  Sink::record bodies — the telemetry hot path runs inline in \
                  protocol threads; blocking work goes to a shipper thread",
        scope: Scope {
            dirs: &["crates/telemetry/src/"],
            files: &[],
            excludes: &[],
        },
        run: blocking_in_emit::run,
    },
    Rule {
        id: "prof-in-inner-loop",
        summary: "no hadfl_prof::scope/scope_bytes inside for/while/loop bodies in \
                  kernel code — the guard and its call-tree row are per-invocation \
                  costs; hoist one scope above the loop to cover the whole op",
        scope: Scope {
            dirs: &["crates/tensor/src/", "crates/nn/src/", "crates/par/src/"],
            files: &["crates/core/src/aggregate.rs", "crates/core/src/wire.rs"],
            excludes: &[],
        },
        run: prof_in_inner_loop::run,
    },
    Rule {
        id: "park-loop-spin",
        summary: "no `.load(...)` polling loops without park/park_timeout/sleep/\
                  yield_now in the worker pool — idle waiting must park the thread, \
                  not burn a core spinning on an atomic",
        scope: Scope {
            dirs: &["crates/par/src/"],
            files: &[],
            excludes: &[],
        },
        run: park_loop_spin::run,
    },
];

/// Builds a finding anchored at code token `i`.
pub fn finding(cx: &FileCx, i: usize, rule: &str, message: String) -> Finding {
    let tok = cx.src.tok(i);
    Finding {
        rule: rule.to_string(),
        file: cx.src.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// A parsed `let` statement (including `if let` / `while let`).
pub struct LetStmt {
    /// Code index of the `let` keyword.
    pub let_idx: usize,
    /// The bound name for simple patterns (`let x`, `let mut x`,
    /// `let Ok(x)`, `let Some(x)`); `None` for other patterns.
    pub name: Option<String>,
    /// Initializer code-token range `[start, end)`; `None` for
    /// `let x;`.
    pub init: Option<(usize, usize)>,
    /// Whether this is the condition of `if let` / `while let` (the
    /// binding scopes over the following block, one level deeper).
    pub is_cond: bool,
}

/// Parses every `let` statement in the file.
pub fn let_statements(cx: &FileCx) -> Vec<LetStmt> {
    let src = cx.src;
    let n = src.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !src.is_ident(i, "let") {
            continue;
        }
        let is_cond = i > 0 && (src.is_ident(i - 1, "if") || src.is_ident(i - 1, "while"));
        let mut j = i + 1;
        if src.is_ident(j, "mut") {
            j += 1;
        }
        let name = if src.is_any_ident(j) {
            let head = src.text_of(j).to_string();
            if (head == "Ok" || head == "Some")
                && src.is_punct(j + 1, '(')
                && src.is_any_ident(j + 2)
                && src.is_punct(j + 3, ')')
            {
                Some(src.text_of(j + 2).to_string())
            } else if head == "Ok" || head == "Some" || head == "Err" {
                None
            } else {
                Some(head)
            }
        } else {
            None
        };
        // Find the `=` introducing the initializer, skipping bracket
        // groups in the pattern/type (`let S { a }: Map<K, V> = …`).
        let mut k = j;
        let mut eq = None;
        while k < n {
            if src.is_punct(k, '(') || src.is_punct(k, '[') || src.is_punct(k, '{') {
                k = cx.scopes.close_of(k);
            } else if src.is_punct(k, ';') {
                break;
            } else if src.is_punct(k, '=')
                && !src.is_punct(k + 1, '=')
                && !src.is_punct(k + 1, '>')
                && !src.is_punct(k.wrapping_sub(1), '=')
                && !src.is_punct(k.wrapping_sub(1), '!')
                && !src.is_punct(k.wrapping_sub(1), '<')
                && !src.is_punct(k.wrapping_sub(1), '>')
            {
                eq = Some(k);
                break;
            }
            k += 1;
        }
        let init = eq.map(|eq| {
            let start = eq + 1;
            let mut m = start;
            while m < n {
                if src.is_punct(m, ';') {
                    break;
                }
                if src.is_ident(m, "else") {
                    break; // let-else
                }
                if src.is_punct(m, '{') {
                    if is_cond {
                        break; // the condition's block opens here
                    }
                    m = cx.scopes.close_of(m);
                } else if src.is_punct(m, '(') || src.is_punct(m, '[') {
                    m = cx.scopes.close_of(m);
                }
                m += 1;
            }
            (start, m)
        });
        out.push(LetStmt {
            let_idx: i,
            name,
            init,
            is_cond,
        });
    }
    out
}

/// Splits a call's argument extent `(open, close)` (exclusive of the
/// parens) at top-level commas, returning code-index ranges.
pub fn split_args(cx: &FileCx, open: usize, close: usize) -> Vec<(usize, usize)> {
    let src = cx.src;
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut j = start;
    while j < close {
        if src.is_punct(j, '(') || src.is_punct(j, '[') || src.is_punct(j, '{') {
            j = cx.scopes.close_of(j);
        } else if src.is_punct(j, ',') {
            out.push((start, j));
            start = j + 1;
        } else if src.is_punct(j, '|') {
            // Closure parameter list: skip to its closing `|` so the
            // closure's internal commas stay internal.
            let mut k = j + 1;
            while k < close && !src.is_punct(k, '|') {
                if src.is_punct(k, '(') || src.is_punct(k, '[') {
                    k = cx.scopes.close_of(k);
                }
                k += 1;
            }
            j = k;
        }
        j += 1;
    }
    if start < close {
        out.push((start, close));
    }
    out
}
