//! `nondeterministic-iteration`: order-dependent `HashMap`/`HashSet`
//! iteration in digest, aggregation, coordinator-selection, and
//! trace-merge paths.
//!
//! Hash iteration order varies per process (SipHash keys are
//! randomized), so any iteration whose effects escape — into wire
//! traffic, telemetry, a digest, or an aggregate — breaks run-to-run
//! determinism. Point lookups (`get`/`insert`/`contains_key`/`len`)
//! are fine; `iter`/`keys`/`values`/`drain`/`retain`/`into_iter` and
//! `for … in map` are not. Fix with `BTreeMap`/`BTreeSet`, sorted
//! iteration, or a reasoned `lint:allow`.
//!
//! Detection is a per-file symbol table: names whose declared type or
//! constructor mentions `HashMap`/`HashSet` (fields, params, lets),
//! propagated through guard-shaped bindings (`let g = map.lock();`)
//! and passthrough chains (`lock/read/write/unwrap/expect/clone/…`),
//! then flagged at iteration sites outside test code.

use super::{finding, let_statements, FileCx};
use crate::report::Finding;

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];
/// Methods that yield the same (or a guarding/cloned) collection.
const PASSTHROUGH: [&str; 10] = [
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "clone",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
];

/// Hash-typed names, each scoped to the function item that binds it
/// (`extent == None` means file level: struct fields, statics). The
/// same name may legitimately be a `HashMap` in one function and a
/// `BTreeMap` in another.
struct HashNames {
    entries: Vec<(String, Option<(usize, usize)>)>,
}

impl HashNames {
    fn matches(&self, name: &str, i: usize) -> bool {
        self.entries
            .iter()
            .any(|(n, ext)| n == name && ext.is_none_or(|(s, e)| s <= i && i <= e))
    }

    fn bound_in(&self, name: &str, ext: Option<(usize, usize)>) -> bool {
        self.entries.iter().any(|(n, e)| n == name && *e == ext)
    }
}

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let names = hash_typed_names(cx);
    if names.entries.is_empty() {
        return Vec::new();
    }
    let src = cx.src;
    let headers = for_in_headers(cx);
    let mut out = Vec::new();
    for i in 0..src.len() {
        if !src.is_any_ident(i) || !names.matches(src.text_of(i), i) || cx.scopes.in_test(i) {
            continue;
        }
        // Skip declaration sites (`name:` type ascriptions / struct
        // fields) — only *uses* can iterate.
        if src.is_punct(i + 1, ':') && !src.is_path_sep(i + 1) {
            continue;
        }
        let name = src.text_of(i).to_string();
        // Walk the method chain: passthroughs keep the collection,
        // an iteration method is the violation, anything else ends
        // the chain as a plain value.
        let mut j = i + 1;
        let mut flagged = false;
        let mut chained = false;
        loop {
            if src.is_punct(j, '?') {
                j += 1;
                continue;
            }
            if src.is_punct(j, '.') && src.is_any_ident(j + 1) && src.is_punct(j + 2, '(') {
                let m = src.text_of(j + 1);
                if ITER_METHODS.contains(&m) {
                    out.push(finding(
                        cx,
                        j + 1,
                        "nondeterministic-iteration",
                        format!(
                            "`.{m}()` iterates hash-ordered `{name}` — hash order \
                             is per-process random; use BTreeMap/BTreeSet or \
                             sort before iterating"
                        ),
                    ));
                    flagged = true;
                } else if PASSTHROUGH.contains(&m) {
                    j = cx.scopes.close_of(j + 2) + 1;
                    chained = true;
                    continue;
                }
            }
            break;
        }
        // Bare use inside a `for … in <expr> {` header iterates too
        // (`for (k, v) in &map`). A chain that ended in a passthrough
        // (`for k in map.clone()`) also iterates the clone.
        if !flagged
            && headers.iter().any(|&(s, e)| s <= i && i < e)
            && (!chained || ends_before_block(cx, j))
        {
            out.push(finding(
                cx,
                i,
                "nondeterministic-iteration",
                format!(
                    "`for … in` over hash-ordered `{name}` — hash order is \
                     per-process random; use BTreeMap/BTreeSet or sort first"
                ),
            ));
        }
    }
    out
}

fn ends_before_block(cx: &FileCx, j: usize) -> bool {
    j >= cx.src.len() || cx.src.is_punct(j, '{')
}

/// Names in this file whose type or initializer marks them as
/// hash-ordered — scoped to their binding function — with passthrough
/// propagation run to fixpoint.
fn hash_typed_names(cx: &FileCx) -> HashNames {
    let src = cx.src;
    let extent_at = |i: usize| {
        cx.scopes
            .enclosing_fn_item(i)
            .map(|f| (f.sig_start, f.body_close))
    };
    let mut names = HashNames {
        entries: Vec::new(),
    };
    for i in 0..src.len() {
        if !HASH_TYPES.iter().any(|t| src.is_ident(i, t)) {
            continue;
        }
        if let Some(owner) = binding_owner(cx, i) {
            let ext = extent_at(i);
            if !names.bound_in(&owner, ext) {
                names.entries.push((owner, ext));
            }
        }
    }
    // Propagate through `let g = <hash name through passthroughs>;`.
    let lets = let_statements(cx);
    for _ in 0..3 {
        let mut grew = false;
        for stmt in &lets {
            let (Some(name), Some((start, end))) = (&stmt.name, stmt.init) else {
                continue;
            };
            let ext = extent_at(stmt.let_idx);
            if names.bound_in(name, ext) {
                continue;
            }
            let mentions =
                (start..end).any(|j| src.is_any_ident(j) && names.matches(src.text_of(j), j));
            if !mentions {
                continue;
            }
            // Every *method call* in the initializer must be a
            // passthrough; `map.len()` is a value, not the map.
            let transforms = (start..end).any(|j| {
                src.is_punct(j, '.')
                    && src.is_any_ident(j + 1)
                    && src.is_punct(j + 2, '(')
                    && !PASSTHROUGH.contains(&src.text_of(j + 1))
            });
            if !transforms {
                names.entries.push((name.clone(), ext));
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    names
}

/// For a `HashMap`/`HashSet` token, the name it types or constructs:
/// walk back through type/constructor tokens to a `name:` ascription
/// (fields, params, lets, struct-literal fields) or a `name =`
/// binding. Returns `None` for unbindable positions (call arguments,
/// `use` paths).
fn binding_owner(cx: &FileCx, i: usize) -> Option<String> {
    let src = cx.src;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 48 {
        steps += 1;
        j -= 1;
        if src.is_path_sep(j.wrapping_sub(1)) || src.is_path_sep(j) {
            // Inside a path (`std::collections::HashMap`,
            // `Mutex::new`): keep walking left past it.
            continue;
        }
        if src.is_punct(j, ':') || src.is_punct(j, '=') {
            let owner = j.checked_sub(1).filter(|&k| src.is_any_ident(k));
            return owner.map(|k| src.text_of(k).to_string());
        }
        let benign = src.is_punct(j, '<')
            || src.is_punct(j, '(')
            || src.is_punct(j, '&')
            || src.tok(j).kind == crate::lexer::TokKind::Lifetime
            || src.is_any_ident(j);
        if !benign {
            return None;
        }
    }
    None
}

/// Code-index extents `(after_in, block_open)` of `for … in …` loop
/// headers.
fn for_in_headers(cx: &FileCx) -> Vec<(usize, usize)> {
    let src = cx.src;
    let mut out = Vec::new();
    for f in 0..src.len() {
        if !src.is_ident(f, "for") || src.is_punct(f + 1, '<') {
            continue; // `for<'a>` HRTB
        }
        // Scan the pattern for a top-level `in` before the block
        // opens; `impl Trait for Type {` has none.
        let mut j = f + 1;
        let mut in_at = None;
        while j < src.len() {
            if src.is_punct(j, '(') || src.is_punct(j, '[') {
                j = cx.scopes.close_of(j);
            } else if src.is_punct(j, '{') || src.is_punct(j, ';') {
                if let Some(start) = in_at {
                    out.push((start, j));
                }
                break;
            } else if src.is_ident(j, "in") && in_at.is_none() {
                in_at = Some(j + 1);
            }
            j += 1;
        }
    }
    out
}
