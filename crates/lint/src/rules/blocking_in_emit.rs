//! `blocking-in-emit`: no blocking work on the telemetry hot path.
//!
//! `Telemetry::emit` and `Sink::record` run inline in the protocol's
//! reader, heartbeat, and training threads — a lock acquisition or a
//! file/socket operation there turns observability into backpressure
//! on the thing being observed. Blocking work belongs on a worker
//! thread (the `ShipSink` pattern: classify + atomics + channel send
//! on the hot side, sockets on the shipper thread). The rule scans
//! the bodies of functions named `emit` or `record` — including
//! closures defined inside them — for `.lock()` calls and file/socket
//! construction. `writeln!` to an already-open writer stays legal:
//! the open, not the write, is the unbounded stall.

use super::{finding, FileCx};
use crate::report::Finding;

/// Types whose associated functions open files or sockets.
const IO_TYPES: [&str; 5] = [
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
];

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        if cx.scopes.in_test(i) || !in_hot_path(cx, i) {
            continue;
        }
        if src.is_punct(i, '.') && src.is_ident(i + 1, "lock") && src.is_punct(i + 2, '(') {
            out.push(finding(
                cx,
                i + 1,
                "blocking-in-emit",
                "`.lock()` on the emit hot path can stall the thread being observed — \
                 use atomics or hand off through a channel to a worker thread"
                    .to_string(),
            ));
        }
        if src.is_path_sep(i + 1) {
            for ty in IO_TYPES {
                if src.is_ident(i, ty) {
                    out.push(finding(
                        cx,
                        i,
                        "blocking-in-emit",
                        format!(
                            "`{ty}::` on the emit hot path opens a file or socket — do \
                             the I/O on a worker thread (see `ShipSink`)"
                        ),
                    ));
                }
            }
            if src.is_ident(i, "fs") {
                out.push(finding(
                    cx,
                    i,
                    "blocking-in-emit",
                    "`fs::` on the emit hot path touches the filesystem — do the I/O \
                     on a worker thread (see `ShipSink`)"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Whether any enclosing function is named `emit` or `record` —
/// closures and nested helpers defined inside them inherit the
/// hot-path constraint.
fn in_hot_path(cx: &FileCx, i: usize) -> bool {
    cx.scopes
        .fns
        .iter()
        .filter(|f| f.body_open <= i && i <= f.body_close)
        .any(|f| f.name == "emit" || f.name == "record")
}
