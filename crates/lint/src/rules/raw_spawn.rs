//! `raw-spawn`: no raw thread spawns in the compute kernels.
//!
//! Parallelism in `crates/tensor`, `crates/nn`, and
//! `core/src/aggregate.rs` must go through the `hadfl-par` substrate,
//! whose fixed chunk boundaries and ordered combines keep results
//! bit-identical at any thread count (DESIGN.md §10). Both
//! `thread::spawn(..)` and the builder form `.spawn(..)` are caught;
//! `crates/par` is outside this rule's scope — it is the one
//! sanctioned spawner.

use super::{finding, FileCx};
use crate::report::Finding;

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        let hit = (src.is_ident(i, "thread")
            && src.is_path_sep(i + 1)
            && src.is_ident(i + 3, "spawn"))
            || (src.is_punct(i, '.') && src.is_ident(i + 1, "spawn") && src.is_punct(i + 2, '('));
        if hit {
            out.push(finding(
                cx,
                i,
                "raw-spawn",
                "raw thread spawn in a compute kernel — route the work through \
                 the `hadfl-par` substrate to keep chunk boundaries deterministic"
                    .to_string(),
            ));
        }
    }
    out
}
