//! `float-reduce-order`: no free-association float accumulation in
//! the kernels.
//!
//! Float addition is not associative; the DESIGN.md §10 determinism
//! contract gets bit-identical results at any `HADFL_THREADS` by
//! pinning one association: fixed `F32_CHUNK` boundaries with
//! partials combined in ascending chunk order (`chunked_sum`,
//! `par_reduce`). A naive `.sum::<f32>()` or float `fold` outside
//! those helpers picks a different association than the parallel
//! path and silently breaks bit-identity.
//!
//! Exempt by construction: code inside a `chunked_sum(…)` /
//! `par_reduce(…)` call (that *is* the fixed association), the body
//! of `fn chunked_sum` itself, order-insensitive folds
//! (`fold(init, f32::max)` / `min`), integer sums, and test code.

use super::{finding, split_args, FileCx};
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scope::call_extents;

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut exempt: Vec<(usize, usize)> = call_extents(cx.src, cx.scopes, "chunked_sum");
    exempt.extend(call_extents(cx.src, cx.scopes, "par_reduce"));
    for f in &cx.scopes.fns {
        if f.name == "chunked_sum" {
            exempt.push((f.body_open, f.body_close));
        }
    }
    let is_exempt = |i: usize| exempt.iter().any(|&(s, e)| s <= i && i <= e);
    let mut out = Vec::new();
    for i in 0..src.len() {
        if cx.scopes.in_test(i) || is_exempt(i) || !src.is_punct(i, '.') {
            continue;
        }
        if src.is_ident(i + 1, "sum") {
            // `.sum::<f32>()` / `.sum::<f64>()`.
            let turbofish_float = src.is_path_sep(i + 2)
                && src.is_punct(i + 4, '<')
                && (src.is_ident(i + 5, "f32") || src.is_ident(i + 5, "f64"))
                && src.is_punct(i + 6, '>');
            // `let x: f32 = ….sum();` — the ascription names the type.
            let ascribed_float = src.is_punct(i + 2, '(') && stmt_has_float_ascription(cx, i);
            if turbofish_float || ascribed_float {
                out.push(finding(
                    cx,
                    i + 1,
                    "float-reduce-order",
                    "naive float `.sum()` picks a free association — use the \
                     fixed-association `chunked_sum` helper (or a waiver with \
                     the reason it can never be parallelized)"
                        .to_string(),
                ));
            }
        }
        if src.is_ident(i + 1, "fold") && src.is_punct(i + 2, '(') {
            let close = cx.scopes.close_of(i + 2);
            let args = split_args(cx, i + 2, close);
            if args.len() == 2
                && arg_is_float_init(cx, args[0])
                && !arg_is_order_insensitive(cx, args[1])
            {
                out.push(finding(
                    cx,
                    i + 1,
                    "float-reduce-order",
                    "float `fold` accumulates in a free association — use \
                     `chunked_sum`/`par_reduce`, or `f32::max`/`f32::min` \
                     style order-insensitive combiners"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Walks back from `.sum` to the statement's `let`, looking for a
/// `: f32` / `: f64` ascription before the `=`.
fn stmt_has_float_ascription(cx: &FileCx, i: usize) -> bool {
    let src = cx.src;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 80 {
        steps += 1;
        j -= 1;
        if src.is_punct(j, ';') || src.is_punct(j, '{') || src.is_punct(j, '}') {
            return false;
        }
        if src.is_ident(j, "let") {
            // Scan forward through the pattern/type for `: f32|f64`.
            for k in j + 1..i {
                if src.is_punct(k, '=') {
                    return false;
                }
                if src.is_punct(k, ':')
                    && !src.is_path_sep(k)
                    && !(k > 0 && src.is_path_sep(k - 1))
                    && (src.is_ident(k + 1, "f32") || src.is_ident(k + 1, "f64"))
                {
                    return true;
                }
            }
            return false;
        }
    }
    false
}

/// Whether a `fold` init argument is float-shaped: a float literal or
/// an `f32::`/`f64::` constant, possibly behind `-`/`&`/`(`.
fn arg_is_float_init(cx: &FileCx, (start, end): (usize, usize)) -> bool {
    let src = cx.src;
    let mut j = start;
    while j < end && (src.is_punct(j, '-') || src.is_punct(j, '&') || src.is_punct(j, '(')) {
        j += 1;
    }
    if j >= end {
        return false;
    }
    src.tok(j).kind == TokKind::Float
        || ((src.is_ident(j, "f32") || src.is_ident(j, "f64")) && src.is_path_sep(j + 1))
}

/// `f32::max` / `f32::min` (and f64 forms) are commutative and
/// associative on the non-NaN inputs the kernels feed them — order
/// cannot change the result.
fn arg_is_order_insensitive(cx: &FileCx, (start, end): (usize, usize)) -> bool {
    let src = cx.src;
    end - start == 4
        && (src.is_ident(start, "f32") || src.is_ident(start, "f64"))
        && src.is_path_sep(start + 1)
        && (src.is_ident(start + 3, "max") || src.is_ident(start + 3, "min"))
}
