//! `park-loop-spin`: no busy-wait polling loops in the worker pool.
//!
//! The persistent pool's whole point is that idle workers cost
//! nothing: between dispatches they sit in [`std::thread::park`] and
//! the dispatcher wakes them with an unpark permit. A loop that polls
//! an atomic with `.load(...)` and never blocks — no `park`,
//! `park_timeout`, `sleep`, `yield_now`, or condvar `wait` anywhere in
//! the loop — burns a core for the entire wait, inverts the autotuner's
//! dispatch-overhead measurement, and on an oversubscribed host starves
//! the very workers it is waiting for.
//!
//! The rule flags each `.load(` inside a loop whose *innermost*
//! enclosing `for`/`while`/`loop` extent (condition included, so
//! `while flag.load(..) {}` is caught) contains none of the blocking
//! calls above. CAS retry loops (`fetch_*`/`compare_exchange`) are not
//! polling and are not flagged; test code is exempt.

use super::{finding, FileCx};
use crate::report::Finding;

/// Calls that make a wait loop block (or at least yield) instead of
/// spinning: the loop is then a wake-up protocol, not a busy-wait.
const BLOCKING: [&str; 5] = ["park", "park_timeout", "sleep", "yield_now", "wait"];

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let loops = loop_extents(cx);
    let mut out = Vec::new();
    for i in 0..src.len() {
        if cx.scopes.in_test(i) {
            continue;
        }
        // `.load(` — an atomic (or atomic-like) poll.
        if !src.is_ident(i, "load")
            || !src.is_punct(i + 1, '(')
            || !src.is_punct(i.wrapping_sub(1), '.')
        {
            continue;
        }
        // Innermost enclosing loop: greatest keyword index still
        // containing the poll. The extent starts at the loop keyword so
        // polls in a `while` condition count as inside.
        let Some(&(kw, close)) = loops
            .iter()
            .filter(|&&(kw, close)| kw < i && i < close)
            .max_by_key(|&&(kw, _)| kw)
        else {
            continue;
        };
        let blocks = (kw..close).any(|j| BLOCKING.iter().any(|name| src.is_ident(j, name)));
        if !blocks {
            out.push(finding(
                cx,
                i,
                "park-loop-spin",
                "`.load(...)` polled in a loop with no park/park_timeout/sleep/\
                 yield_now — a busy-wait burns a core for the whole wait; park the \
                 thread and have the writer unpark it"
                    .to_string(),
            ));
        }
    }
    out
}

/// `(keyword, close)` extents of every `for`/`while`/`loop`, spanning
/// from the loop keyword to the body's closing brace so that `while`
/// conditions are part of the extent.
fn loop_extents(cx: &FileCx) -> Vec<(usize, usize)> {
    let src = cx.src;
    let n = src.len();
    let mut out = Vec::new();
    for i in 0..n {
        let (is_for, is_while, is_loop) = (
            src.is_ident(i, "for"),
            src.is_ident(i, "while"),
            src.is_ident(i, "loop"),
        );
        if !(is_for || is_while || is_loop) {
            continue;
        }
        if is_loop {
            if src.is_punct(i + 1, '{') {
                out.push((i, cx.scopes.close_of(i + 1)));
            }
            continue;
        }
        // Scan the head for the body `{` (bare struct literals are
        // illegal in conditions, so the first top-level `{` is the
        // body), skipping bracket groups. A `for` with no top-level
        // `in` is `impl Trait for Type` or `for<'a>`, not a loop.
        let mut saw_in = false;
        let mut j = i + 1;
        while j < n {
            if src.is_punct(j, '(') || src.is_punct(j, '[') {
                j = cx.scopes.close_of(j);
            } else if src.is_ident(j, "in") {
                saw_in = true;
            } else if src.is_punct(j, '{') {
                if is_while || saw_in {
                    out.push((i, cx.scopes.close_of(j)));
                }
                break;
            } else if src.is_punct(j, ';') {
                break;
            }
            j += 1;
        }
    }
    out
}
