//! `raw-frame`: no frame construction outside `wire::seal`/`open`.
//!
//! Every on-wire frame carries a causal stamp (origin + Lamport
//! clock); a transport that calls `Message::encode`/`decode` directly
//! ships an unstamped frame the causal merge cannot order. The
//! per-file symbol table supplies the one principled exemption: the
//! body of `fn digest_msg` (a model-checker digest, not a wire
//! frame). `encoded_len` never matches — the match is on exact
//! identifier tokens, not substrings, which is precisely what the old
//! awk gate could not guarantee.

use super::{finding, FileCx};
use crate::report::Finding;

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        let hit = if src.is_punct(i, '.')
            && src.is_ident(i + 1, "encode")
            && src.is_punct(i + 2, '(')
            && src.is_punct(i + 3, ')')
        {
            Some("encode")
        } else if src.is_ident(i + 1, "decode")
            && src.is_punct(i + 2, '(')
            && (src.is_punct(i, '.') || (i > 0 && src.is_path_sep(i - 1)))
        {
            Some("decode")
        } else {
            None
        };
        let Some(name) = hit else { continue };
        if let Some(f) = cx.scopes.enclosing_fn(i) {
            if f.name == "digest_msg" {
                continue; // model-checker digest, not a wire frame
            }
        }
        out.push(finding(
            cx,
            i + 1,
            "raw-frame",
            format!(
                "raw `{name}` builds an unstamped frame — go through \
                 `wire::seal` / `wire::open` so the causal merge can order it"
            ),
        ));
    }
    out
}
