//! `ambient-clock`: no raw wall-clock reads in protocol paths.
//!
//! `hadfl-check` exhaustively explores message/timer interleavings on
//! virtual time; a raw `Instant::now()` or `SystemTime::now()` is
//! invisible to its scheduler and silently reintroduces real-time
//! nondeterminism. Time must flow through the `hadfl::clock::Clock`
//! seam. The lexer makes this sound where grep was not: mentions in
//! strings, comments, and doc examples don't trip it.

use super::{finding, FileCx};
use crate::report::Finding;

pub fn run(cx: &FileCx) -> Vec<Finding> {
    let src = cx.src;
    let mut out = Vec::new();
    for i in 0..src.len() {
        for source in ["Instant", "SystemTime"] {
            if src.is_ident(i, source)
                && src.is_path_sep(i + 1)
                && src.is_ident(i + 3, "now")
                && src.is_punct(i + 4, '(')
            {
                out.push(finding(
                    cx,
                    i,
                    "ambient-clock",
                    format!(
                        "raw `{source}::now()` — take time through the \
                         `hadfl::clock::Clock` seam so `hadfl-check` can drive it"
                    ),
                ));
            }
        }
    }
    out
}
