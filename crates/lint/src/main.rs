//! `hadfl-lint` CLI.
//!
//! ```text
//! hadfl-lint --workspace [--json] [--root DIR]   # lint all in-scope files
//! hadfl-lint [--json] [--root DIR] FILE...       # lint specific files
//! hadfl-lint --list-rules                        # print the rule registry
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error — the same
//! contract the old `tools/lint.sh` grep gates had, so CI wiring is
//! unchanged.

use std::path::PathBuf;
use std::process::ExitCode;

use hadfl_lint::{rules, workspace};

fn main() -> ExitCode {
    let mut json = false;
    let mut scan_workspace = false;
    let mut list_rules = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => scan_workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: hadfl-lint [--workspace | FILE...] [--json] [--root DIR] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(file.to_string()),
        }
    }

    if list_rules {
        for rule in rules::all() {
            println!("{:28} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if !scan_workspace && files.is_empty() {
        scan_workspace = true;
    }

    let root = match root_arg {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => return fail(&format!("cannot read cwd: {err}")),
            };
            match workspace::find_root(&cwd) {
                Some(dir) => dir,
                None => return fail("no workspace root found (pass --root)"),
            }
        }
    };

    let report = if scan_workspace {
        workspace::analyze_workspace(&root)
    } else {
        // Explicit files are taken relative to the root so rule
        // scopes match the same way `--workspace` matches them.
        workspace::analyze_files(&root, &files)
    };
    let report = match report {
        Ok(report) => report,
        Err(err) => return fail(&format!("lint failed: {err}")),
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("hadfl-lint: {msg}");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("hadfl-lint: {msg}");
    ExitCode::from(2)
}
