//! hadfl-lint — scope-aware static analyzer for the HADFL workspace
//! invariants.
//!
//! The repo enforces invariants that `clippy` cannot express and that
//! grep kept getting wrong: the `Clock` seam behind `hadfl-check`'s
//! exhaustive exploration, the DESIGN.md §10 determinism contract,
//! the no-guard-across-`Port::send` deadlock rule, and
//! `wire::seal`/`open` causal stamping. This crate reimplements those
//! gates — plus three new rules — as a real analyzer: its own lexer
//! (strings, raw strings, char literals, nested comments, generics),
//! a brace/scope tracker, and a per-file symbol table, with no
//! external dependencies.
//!
//! Rules (see [`rules::all`]):
//!
//! 1. `ambient-clock` — no `Instant::now()`/`SystemTime::now()` in
//!    protocol paths.
//! 2. `guard-across-send` — no lock guard held across a blocking
//!    `Port::send`.
//! 3. `print-in-protocol` — no stdout/stderr macros where telemetry
//!    events belong.
//! 4. `raw-frame` — no `Message::encode`/`decode` outside
//!    `wire::seal`/`open`.
//! 5. `raw-spawn` — no raw thread spawns in the compute kernels.
//! 6. `nondeterministic-iteration` — no `HashMap`/`HashSet` iteration
//!    in order-sensitive paths.
//! 7. `unwrap-in-protocol` — no `unwrap`/`expect`/`panic!` in
//!    non-test protocol code.
//! 8. `float-reduce-order` — no free-association float accumulation
//!    outside `chunked_sum`/`par_reduce`.
//!
//! Findings carry `file:line:col` spans in human and `--json` form.
//! Inline waivers — `// lint:allow(rule): reason` — are honored only
//! with a non-empty reason, and flagged when unused (see [`waiver`]).
//! The analyzer proves itself on a seeded-violation fixture corpus
//! (`fixtures/`) that the test suite must classify with zero false
//! negatives and zero false positives, including the old awk gate's
//! documented blind spots.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod waiver;
pub mod workspace;

use report::Finding;
use rules::FileCx;
use scope::{ScopeMap, SourceFile};

/// Analysis result for one file.
pub struct FileResult {
    /// Surviving findings (rule findings minus waived, plus waiver
    /// meta-findings).
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by valid waivers.
    pub waived: usize,
}

/// Runs the named rules over one source text. `path` labels findings
/// and is *not* re-checked against rule scopes — callers pick the
/// rule set (the workspace driver picks by scope; fixture tests force
/// rules on).
///
/// Unknown rule ids are ignored; waiver grammar violations and unused
/// waivers surface as `invalid-waiver` / `unused-waiver` findings.
pub fn analyze_source(path: &str, text: &str, rule_ids: &[&str]) -> FileResult {
    let src = SourceFile::new(path, text);
    let scopes = ScopeMap::build(&src);
    let cx = FileCx {
        src: &src,
        scopes: &scopes,
    };
    let mut raw = Vec::new();
    for id in rule_ids {
        if let Some(rule) = rules::by_id(id) {
            raw.extend((rule.run)(&cx));
        }
    }
    let mut findings = Vec::new();
    let waivers = waiver::collect(&src, &rules::ids(), &mut findings);
    let waived = waiver::apply(&src, waivers, raw, &mut findings);
    FileResult { findings, waived }
}
