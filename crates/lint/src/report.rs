//! Findings and report rendering (human and `--json`).
//!
//! The JSON emitter is hand-rolled (the crate is dependency-free);
//! the schema is versioned and round-trip-tested against the vendored
//! `serde_json` in `tests/json_schema.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     {"rule": "…", "file": "…", "line": 1, "col": 1, "message": "…"}
//!   ],
//!   "summary": {"files_scanned": 0, "findings": 0, "waived": 0}
//! }
//! ```

/// One diagnostic, anchored to `file:line:col`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (kebab-case), or the meta rules
    /// `invalid-waiver` / `unused-waiver`.
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The result of an analyzer run.
#[derive(Default)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Findings suppressed by a valid `lint:allow` waiver.
    pub waived: usize,
}

impl Report {
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
    }

    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str(&format!(
                "hadfl-lint: clean ({} files scanned, {} waived)\n",
                self.files_scanned, self.waived
            ));
        } else {
            out.push_str(&format!(
                "hadfl-lint: {} finding(s) in {} files scanned ({} waived)\n",
                self.findings.len(),
                self.files_scanned,
                self.waived
            ));
        }
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"summary\":{{\"files_scanned\":{},\"findings\":{},\"waived\":{}}}}}\n",
            self.files_scanned,
            self.findings.len(),
            self.waived
        ));
        out
    }
}

/// JSON string literal with full escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn human_rendering_is_file_line_col() {
        let f = Finding {
            rule: "ambient-clock".into(),
            file: "crates/net/src/tcp.rs".into(),
            line: 3,
            col: 9,
            message: "raw Instant::now()".into(),
        };
        assert_eq!(
            f.render(),
            "crates/net/src/tcp.rs:3:9: [ambient-clock] raw Instant::now()"
        );
    }
}
