//! The hand-rolled `--json` emitter round-trips through the vendored
//! `serde_json`: schema version, finding fields, summary counts, and
//! string escaping.

use hadfl_lint::report::{Finding, Report};
use serde_json::Value;

/// Object-field lookup (the vendored `Value` keeps objects as ordered
/// key/value slices).
fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .expect("not an object")
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn sample_report() -> Report {
    let text = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let result = hadfl_lint::analyze_source("crates/core/src/exec.rs", text, &["ambient-clock"]);
    Report {
        findings: result.findings,
        files_scanned: 1,
        waived: result.waived,
    }
}

#[test]
fn json_round_trips_through_serde() {
    let report = sample_report();
    let json = report.render_json();
    let v: Value = serde_json::from_str(json.trim_end()).expect("emitted JSON must parse");

    assert_eq!(get(&v, "version").as_u64(), Some(1));
    let findings = get(&v, "findings").as_array().expect("findings array");
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(get(f, "rule").as_str(), Some("ambient-clock"));
    assert_eq!(get(f, "file").as_str(), Some("crates/core/src/exec.rs"));
    assert_eq!(get(f, "line").as_u64(), Some(2));
    assert_eq!(get(f, "col").as_u64(), Some(16));
    assert!(get(f, "message")
        .as_str()
        .expect("message string")
        .contains("Instant::now()"));

    let summary = get(&v, "summary");
    assert_eq!(get(summary, "files_scanned").as_u64(), Some(1));
    assert_eq!(get(summary, "findings").as_u64(), Some(1));
    assert_eq!(get(summary, "waived").as_u64(), Some(0));
}

#[test]
fn json_escaping_survives_hostile_messages() {
    let mut report = Report::default();
    report.findings.push(Finding {
        rule: "ambient-clock".into(),
        file: "a \"b\"\\c.rs".into(),
        line: 1,
        col: 1,
        message: "tab\there\nnewline \u{1} control".into(),
    });
    report.files_scanned = 1;
    let v: Value =
        serde_json::from_str(report.render_json().trim_end()).expect("escaped JSON parses");
    let f = &get(&v, "findings").as_array().expect("findings array")[0];
    assert_eq!(get(f, "file").as_str(), Some("a \"b\"\\c.rs"));
    assert_eq!(
        get(f, "message").as_str(),
        Some("tab\there\nnewline \u{1} control")
    );
}

#[test]
fn empty_report_is_valid_json() {
    let report = Report::default();
    let v: Value =
        serde_json::from_str(report.render_json().trim_end()).expect("empty JSON parses");
    assert_eq!(get(&v, "findings").as_array().expect("array").len(), 0);
    assert_eq!(get(get(&v, "summary"), "findings").as_u64(), Some(0));
}
