//! The seeded-violation corpus: every fixture must classify with zero
//! false negatives AND zero false positives.
//!
//! Expected findings are `//~ rule-name` markers trailing the line
//! they anchor to. `bad.rs` files seed violations (including the old
//! awk gate's documented blind spots); `ok.rs` files are known-clean
//! look-alikes. Each directory is named after the rule it exercises
//! (underscores for hyphens); its rule is forced on regardless of
//! path scope.

use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// `(line, rule)` pairs declared by `//~` markers, sorted.
fn expected_markers(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for part in line.split("//~").skip(1) {
            let rule = part.split_whitespace().next().unwrap_or("");
            assert!(!rule.is_empty(), "empty //~ marker on line {}", idx + 1);
            out.push((idx as u32 + 1, rule.to_string()));
        }
    }
    out.sort();
    out
}

/// Runs `rules` over every `.rs` file in `fixtures/<dir>` and demands
/// the findings match the markers exactly.
fn check_dir(dir: &str, rules: &[&str]) {
    let root = fixtures_root().join(dir);
    let mut checked = 0;
    for entry in fs::read_dir(&root).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let expected = expected_markers(&text);
        let rel = format!("{dir}/{}", path.file_name().unwrap().to_string_lossy());
        let result = hadfl_lint::analyze_source(&rel, &text, rules);
        let mut actual: Vec<(u32, String)> = result
            .findings
            .iter()
            .map(|f| (f.line, f.rule.clone()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, expected,
            "fixture {rel} misclassified: left = actual findings, right = //~ markers"
        );
        checked += 1;
    }
    assert!(checked >= 2, "fixtures/{dir} should hold bad.rs and ok.rs");
}

#[test]
fn ambient_clock() {
    check_dir("ambient_clock", &["ambient-clock"]);
}

#[test]
fn print_in_protocol() {
    check_dir("print_in_protocol", &["print-in-protocol"]);
}

#[test]
fn raw_frame() {
    check_dir("raw_frame", &["raw-frame"]);
}

#[test]
fn raw_spawn() {
    check_dir("raw_spawn", &["raw-spawn"]);
}

#[test]
fn guard_across_send() {
    check_dir("guard_across_send", &["guard-across-send"]);
}

#[test]
fn nondeterministic_iteration() {
    check_dir(
        "nondeterministic_iteration",
        &["nondeterministic-iteration"],
    );
}

#[test]
fn unwrap_in_protocol() {
    check_dir("unwrap_in_protocol", &["unwrap-in-protocol"]);
}

#[test]
fn float_reduce_order() {
    check_dir("float_reduce_order", &["float-reduce-order"]);
}

#[test]
fn blocking_in_emit() {
    check_dir("blocking_in_emit", &["blocking-in-emit"]);
}

#[test]
fn prof_in_inner_loop() {
    check_dir("prof_in_inner_loop", &["prof-in-inner-loop"]);
}

#[test]
fn park_loop_spin() {
    check_dir("park_loop_spin", &["park-loop-spin"]);
}

#[test]
fn waiver_corpus() {
    check_dir("waivers", &["ambient-clock"]);
}

/// Zero false positives across rules: every known-clean fixture stays
/// clean even with ALL rules forced on, not just its own.
#[test]
fn clean_fixtures_survive_every_rule() {
    let all: Vec<&str> = hadfl_lint::rules::ids();
    for entry in fs::read_dir(fixtures_root()).unwrap() {
        let dir = entry.unwrap().path();
        if !dir.is_dir() || dir.file_name().unwrap() == "mini_workspace" {
            continue;
        }
        let ok = dir.join("ok.rs");
        let text = fs::read_to_string(&ok).unwrap();
        let result = hadfl_lint::analyze_source("ok.rs", &text, &all);
        let rendered: Vec<String> = result.findings.iter().map(|f| f.render()).collect();
        assert!(
            rendered.is_empty(),
            "clean fixture {} tripped: {rendered:?}",
            ok.display()
        );
    }
}
