//! The analyzer against real trees: the actual HADFL workspace must
//! lint clean, and the mini fixture workspace must produce exactly
//! its seeded findings (scope inclusion AND exclusion both observed).

use std::path::Path;
use std::process::Command;

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

fn mini_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/mini_workspace")
}

#[test]
fn real_workspace_lints_clean() {
    let report = hadfl_lint::workspace::analyze_workspace(repo_root()).unwrap();
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "the workspace must lint clean; fix the site or add a reasoned \
         lint:allow:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — discovery is broken",
        report.files_scanned
    );
}

#[test]
fn mini_workspace_scopes_in_and_out() {
    let report = hadfl_lint::workspace::analyze_workspace(&mini_root()).unwrap();
    let got: Vec<(String, String)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.rule.clone()))
        .collect();
    assert_eq!(
        got,
        [
            (
                "crates/core/src/exec.rs".to_string(),
                "ambient-clock".to_string()
            ),
            (
                "crates/tensor/src/kernel.rs".to_string(),
                "raw-spawn".to_string()
            ),
        ],
        "expected exactly the seeded findings: clock.rs (excluded), \
         bin/tool.rs (print carve-out), and crates/check (out of scope) \
         must stay silent"
    );
}

#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_hadfl-lint");

    // Findings -> exit 1, and --json parses with both seeded findings.
    let out = Command::new(bin)
        .args(["--workspace", "--json", "--root"])
        .arg(mini_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v: serde_json::Value = serde_json::from_str(stdout.trim_end()).unwrap();
    let field = |v: &serde_json::Value, key: &str| -> serde_json::Value {
        v.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(field(&v, "version").as_u64(), Some(1));
    assert_eq!(field(&v, "findings").as_array().unwrap().len(), 2);
    assert_eq!(field(&field(&v, "summary"), "findings").as_u64(), Some(2));

    // A clean tree -> exit 0 and the clean banner.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(repo_root())
        .arg("--workspace")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("hadfl-lint: clean"));

    // Unknown flags -> exit 2.
    let out = Command::new(bin).arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // --list-rules names every registered rule.
    let out = Command::new(bin).arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8_lossy(&out.stdout).to_string();
    for id in hadfl_lint::rules::ids() {
        assert!(listing.contains(id), "--list-rules is missing {id}");
    }
}
