//! Waiver grammar and lifecycle: reasons are mandatory, unknown rules
//! are rejected, suppression is counted, and stale waivers surface.

fn findings_of(text: &str, rules: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = hadfl_lint::analyze_source("w.rs", text, rules)
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.line, f.rule))
        .collect();
    out.sort();
    out
}

#[test]
fn valid_waiver_suppresses_and_counts() {
    let text = "pub fn f() -> std::time::Instant {\n\
                \x20   // lint:allow(ambient-clock): bootstrap runs before the seam exists\n\
                \x20   std::time::Instant::now()\n\
                }\n";
    let result = hadfl_lint::analyze_source("w.rs", text, &["ambient-clock"]);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
    assert_eq!(result.waived, 1);
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let text = "pub fn f() -> std::time::Instant {\n\
                \x20   std::time::Instant::now() // lint:allow(ambient-clock): pre-seam bootstrap\n\
                }\n";
    let result = hadfl_lint::analyze_source("w.rs", text, &["ambient-clock"]);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
    assert_eq!(result.waived, 1);
}

#[test]
fn missing_reason_is_rejected_and_does_not_suppress() {
    let text = "pub fn f() -> std::time::Instant {\n\
                \x20   // lint:allow(ambient-clock)\n\
                \x20   std::time::Instant::now()\n\
                }\n";
    let got = findings_of(text, &["ambient-clock"]);
    // The malformed waiver is itself a finding AND the violation it
    // failed to waive still fires.
    assert_eq!(got, ["2:invalid-waiver", "3:ambient-clock"]);
}

#[test]
fn empty_reason_is_rejected() {
    let text = "// lint:allow(ambient-clock):   \nfn f() {}\n";
    let got = findings_of(text, &["ambient-clock"]);
    assert_eq!(got, ["1:invalid-waiver"]);
}

#[test]
fn unknown_rule_is_rejected() {
    let text = "// lint:allow(no-such-rule): reason\nfn f() {}\n";
    let got = findings_of(text, &["ambient-clock"]);
    assert_eq!(got, ["1:invalid-waiver"]);
}

#[test]
fn unused_waiver_is_flagged() {
    let text = "// lint:allow(ambient-clock): nothing here reads a clock\nfn f() {}\n";
    let got = findings_of(text, &["ambient-clock"]);
    assert_eq!(got, ["1:unused-waiver"]);
}

#[test]
fn waiver_only_covers_its_own_rule() {
    let text = "pub fn f() -> std::time::Instant {\n\
                \x20   // lint:allow(print-in-protocol): wrong rule for the site below\n\
                \x20   std::time::Instant::now()\n\
                }\n";
    let got = findings_of(text, &["ambient-clock"]);
    // The clock violation fires and the mistargeted waiver is unused.
    assert_eq!(got, ["2:unused-waiver", "3:ambient-clock"]);
}

#[test]
fn doc_comments_do_not_carry_waivers() {
    let text = "/// lint:allow(ambient-clock): docs are not annotations\n\
                pub fn f() -> std::time::Instant {\n\
                \x20   std::time::Instant::now()\n\
                }\n";
    let got = findings_of(text, &["ambient-clock"]);
    assert_eq!(got, ["3:ambient-clock"]);
}
