//! Seeded violations for `ambient-clock`: raw wall-clock reads that
//! the hadfl-check scheduler cannot see.

use std::time::{Duration, Instant, SystemTime};

pub fn naive_elapsed() -> Duration {
    let start = Instant::now(); //~ ambient-clock
    start.elapsed()
}

pub fn stamp() -> SystemTime {
    SystemTime::now() //~ ambient-clock
}

pub fn fully_qualified() -> Instant {
    std::time::Instant::now() //~ ambient-clock
}
