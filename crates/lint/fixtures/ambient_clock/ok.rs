//! Known-clean for `ambient-clock`: every mention of the banned calls
//! lives in a string, comment, or doc example — the grep gate's
//! false-positive territory.

use std::time::Duration;

/// Never call `Instant::now()` here; take time through the seam:
///
/// ```
/// let t = clock.now(); // not Instant::now()
/// ```
pub fn clocked(now: Duration) -> Duration {
    // A comment saying Instant::now() is not a call to it.
    let banner = "Instant::now() and SystemTime::now() are banned";
    let _ = banner;
    now
}

/* Block comments mentioning SystemTime::now() are fine too. */
pub fn instant_like(instant_count: u32) -> u32 {
    // `instant_count` containing the substring "instant" must not trip
    // a token-level match.
    instant_count
}
