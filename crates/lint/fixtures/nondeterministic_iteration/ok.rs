//! Known-clean for `nondeterministic-iteration`: point lookups,
//! ordered maps, and test-only iteration.

use std::collections::{BTreeMap, HashMap};

/// Point operations never observe hash order.
pub fn lookups(m: &mut HashMap<u32, u64>, k: u32) -> u64 {
    m.insert(k, 1);
    let mut total = m.len() as u64;
    if m.contains_key(&k) {
        total += m.get(&k).copied().unwrap_or(0);
    }
    m.remove(&k);
    total
}

/// BTreeMap iterates in key order — deterministic by construction.
pub fn ordered_digest(m: &BTreeMap<u32, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in m {
        acc = acc.wrapping_mul(31).wrapping_add(*k as u64 ^ *v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_free_assertions_may_iterate() {
        let m: HashMap<u32, u64> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.values().sum::<u64>(), 0);
    }
}
