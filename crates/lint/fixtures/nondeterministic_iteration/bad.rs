//! Seeded violations for `nondeterministic-iteration`: hash-ordered
//! iteration whose order escapes into digests and wire traffic.

use std::collections::{HashMap, HashSet};

pub struct Book {
    pages: HashMap<u32, String>,
}

pub fn digest(book: &Book) -> u64 {
    let mut acc = 0u64;
    for (id, text) in &book.pages { //~ nondeterministic-iteration
        acc = acc.wrapping_mul(31).wrapping_add(*id as u64 + text.len() as u64);
    }
    acc
}

pub fn keys_escape(m: &HashMap<u32, u64>) -> Vec<u32> {
    m.keys().copied().collect() //~ nondeterministic-iteration
}

/// The tcp.rs heartbeat shape: the map reaches the loop through a
/// guard binding (`let live = conns.lock();`).
pub fn heartbeat(conns: &Mutex<HashMap<u32, Conn>>) {
    let mut live = conns.lock();
    for (peer, conn) in live.iter_mut() { //~ nondeterministic-iteration
        conn.ping(*peer);
    }
}

pub fn choose(candidates: HashSet<u32>) -> Vec<u32> {
    let mut out: Vec<u32> = candidates.into_iter().collect(); //~ nondeterministic-iteration
    out.sort_unstable();
    out
}
