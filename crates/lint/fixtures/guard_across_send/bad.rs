//! Seeded violations for `guard-across-send`: a lock guard held over
//! a blocking two-argument `Port::send`. Includes the two
//! false-negative blind spots of the old awk gate as regressions.

pub fn basic(port: &mut TcpPort, m: &Mutex<State>) {
    let guard = m.lock();
    port.send(1, msg()); //~ guard-across-send
    drop(guard);
}

/// awk blind spot (false negative): a method-chain guard is still a
/// guard — `unwrap` passes the `LockResult` shell through.
pub fn chained_guard(port: &mut TcpPort, m: &std::sync::Mutex<State>) {
    let guard = m.lock().unwrap();
    port.send(1, msg()); //~ guard-across-send
    let _ = guard;
}

/// awk blind spot (false negative): shadowing in an inner scope does
/// not end the outer guard — Rust drops shadowed values at scope end.
pub fn shadowed_inner(port: &mut TcpPort, m: &Mutex<State>) {
    let g = m.lock();
    {
        let g = checksum();
        let _ = g;
    }
    port.send(1, msg()); //~ guard-across-send
}

/// Same-scope shadowing: the first guard lives until the scope ends,
/// even though its name now refers to the checksum.
pub fn shadowed_same_scope(port: &mut TcpPort, m: &Mutex<State>) {
    let g = m.lock();
    let g = checksum_of(&g);
    port.send(2, msg()); //~ guard-across-send
    let _ = g;
}

/// `expect` preserves the guard just like `unwrap`.
pub fn expected_guard(port: &mut TcpPort, m: &std::sync::RwLock<State>) {
    let view = m.read().expect("poisoned");
    port.send(3, wrap(&view)); //~ guard-across-send
}
