//! Known-clean for `guard-across-send`, including the old awk gate's
//! false-positive blind spot: `drop(guard)` before the send.

/// awk blind spot (false positive): the guard is dropped before the
/// send, so nothing is held across it.
pub fn drop_then_send(port: &mut TcpPort, m: &Mutex<State>) {
    let g = m.lock();
    let snapshot = snapshot_of(&g);
    drop(g);
    port.send(1, wrap(snapshot));
}

/// A statement-temporary guard dies at its `;` — the lock is not held
/// by the time the send runs.
pub fn temporary(port: &mut TcpPort, stats: &Mutex<Stats>) {
    stats.lock().record(1, 2);
    port.send(1, msg());
}

/// `lock().remove(..)` reduces the chain to a value; the temporary
/// guard is gone at the `;`.
pub fn take_out(port: &mut TcpPort, conns: &Mutex<ConnMap>) {
    let cached = conns.lock().remove(&1);
    port.send(1, wrap(cached));
}

/// One-argument channel sends are non-blocking and exempt.
pub fn channel_send(tx: &Sender<Msg>, m: &Mutex<State>) {
    let g = m.lock();
    tx.send(msg());
    let _ = g;
}

/// A guard confined to an inner block is gone by the send.
pub fn scoped(port: &mut TcpPort, m: &Mutex<State>) {
    {
        let g = m.lock();
        let _ = g;
    }
    port.send(1, msg());
}
