//! Seeded violations for `print-in-protocol`: ad-hoc stdout/stderr in
//! protocol paths instead of telemetry events.

pub fn chatty(round: u32) {
    println!("starting round {round}"); //~ print-in-protocol
    if round > 3 {
        eprintln!("round {round} is late"); //~ print-in-protocol
    }
}

pub fn partial(x: u32) {
    print!("{x} "); //~ print-in-protocol
    eprint!("."); //~ print-in-protocol
}

pub fn debugging(state: &[u32]) -> usize {
    dbg!(state.len()) //~ print-in-protocol
}
