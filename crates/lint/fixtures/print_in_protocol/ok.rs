//! Known-clean for `print-in-protocol`: formatted strings, doc
//! examples, and print-like names that are not the macros.

/// Examples may print:
///
/// ```
/// println!("doc examples are comments, not code");
/// ```
pub fn formats(round: u32) -> String {
    // format! writes to a String, not to stdout.
    format!("round {round}: println! would be wrong here")
}

pub fn print_like() -> &'static str {
    // An identifier *containing* "print" is not the macro.
    let blueprint = "blueprint";
    blueprint
}
