//! Waiver grammar violations. Each malformed waiver is an
//! `invalid-waiver` finding; a valid waiver that suppresses nothing is
//! `unused-waiver`.

pub fn unknown_rule() -> u32 {
    // lint:allow(made-up-rule): no such rule is registered //~ invalid-waiver
    1
}

pub fn missing_reason() -> u32 {
    // lint:allow(ambient-clock) //~ invalid-waiver
    2
}

pub fn empty_reason() -> u32 {
    /* lint:allow(ambient-clock): */ //~ invalid-waiver
    3
}

pub fn malformed() -> u32 {
    // lint:allow ambient-clock: the parentheses are required //~ invalid-waiver
    4
}

pub fn unused() -> u32 {
    // lint:allow(ambient-clock): nothing below reads a clock //~ unused-waiver
    5
}
