//! Valid waivers: each suppresses exactly the finding beside it, so
//! the file is clean and no waiver is unused.

use std::time::Instant;

pub fn bootstrap_epoch() -> Instant {
    // lint:allow(ambient-clock): process bootstrap runs before the Clock seam exists
    Instant::now()
}

pub fn trailing_form() -> Instant {
    Instant::now() // lint:allow(ambient-clock): same-line waiver form
}
