//! Known-clean look-alikes for `park-loop-spin`: wake-up protocols
//! that park between polls, CAS drains, and polls outside any loop.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

pub fn dispatcher_wait(remaining: &AtomicUsize) {
    // Poll in the condition, park in the body: the shape the rule
    // pushes toward. Spurious wakeups re-check and re-park.
    while remaining.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }
}

pub fn worker_wait(epoch: &AtomicUsize, shutdown: &AtomicBool) {
    let last = 0;
    loop {
        if epoch.load(Ordering::Acquire) == last {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            std::thread::park();
            continue;
        }
        break;
    }
}

pub fn bounded_poll_with_timeout(ready: &AtomicBool) {
    while !ready.load(Ordering::Acquire) {
        std::thread::park_timeout(Duration::from_millis(1));
    }
}

pub fn polite_poll(ready: &AtomicBool) {
    while !ready.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
}

pub fn cas_drain(next: &AtomicUsize, n: usize) {
    // A ticket drain makes forward progress on every iteration; it is
    // not a wait loop and `fetch_add` is not a poll.
    loop {
        let t = next.fetch_add(1, Ordering::Relaxed);
        if t >= n {
            break;
        }
        std::hint::black_box(t);
    }
}

pub fn poll_outside_any_loop(ready: &AtomicBool) -> bool {
    // A single load is a read, not a busy-wait.
    ready.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_spin_briefly() {
        let flag = AtomicBool::new(true);
        while !flag.load(Ordering::Acquire) {}
    }
}
