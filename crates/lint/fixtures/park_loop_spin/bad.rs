//! Seeded violations for `park-loop-spin`: wait loops that poll an
//! atomic and never block, burning a core for the whole wait.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn wait_for_flag(ready: &AtomicBool) {
    // The classic spin: the poll lives in the `while` condition and
    // the body is empty, so condition tokens must count as in-loop.
    while !ready.load(Ordering::Acquire) {} //~ park-loop-spin
}

pub fn wait_for_zero(remaining: &AtomicUsize) {
    loop {
        if remaining.load(Ordering::Acquire) == 0 { //~ park-loop-spin
            break;
        }
    }
}

pub fn spin_hint_is_still_spinning(ready: &AtomicBool) {
    // `spin_loop` relaxes the pipeline but the core stays pegged; only
    // actually blocking (or at least yielding) clears the rule.
    while !ready.load(Ordering::Acquire) { //~ park-loop-spin
        std::hint::spin_loop();
    }
}

pub fn inner_spin_inside_parking_outer(epoch: &AtomicUsize, done: &AtomicBool) {
    let mut last = 0;
    loop {
        // The outer loop parks, but the *innermost* loop around this
        // poll never blocks: it is a busy-wait all the same.
        while epoch.load(Ordering::Acquire) == last {} //~ park-loop-spin
        last += 1;
        if done.load(Ordering::Relaxed) {
            break;
        }
        std::thread::park();
    }
}
