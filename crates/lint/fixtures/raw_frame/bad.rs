//! Seeded violations for `raw-frame`: frames built or parsed outside
//! `wire::seal`/`wire::open` ship without a causal stamp.

pub fn ship(msg: &Message, out: &mut Vec<u8>) {
    let frame = msg.encode(); //~ raw-frame
    out.extend_from_slice(&frame);
}

pub fn receive(bytes: &[u8]) -> Message {
    Message::decode(bytes) //~ raw-frame
}

pub fn relay(msg: &Message) -> Message {
    let bytes = msg.encode(); //~ raw-frame
    bytes.decode() //~ raw-frame
}
