//! Known-clean for `raw-frame`: the sanctioned seal/open path, the
//! `digest_msg` exemption, and near-miss identifiers.

pub fn sealed(msg: &Message) -> Vec<u8> {
    // The one sanctioned path: the frame carries a causal stamp.
    wire::seal(stamp(), msg)
}

pub fn opened(frame: &[u8]) -> (CausalStamp, Message) {
    wire::open(frame)
}

/// The model checker digests states, not wire frames; its body is
/// exempt via the symbol table.
fn digest_msg(msg: &Message) -> u64 {
    let bytes = msg.encode();
    fxhash(&bytes)
}

pub fn measured(msg: &Message) -> usize {
    // `encoded_len` is a token, not a substring match on `encode`.
    msg.encoded_len()
}
