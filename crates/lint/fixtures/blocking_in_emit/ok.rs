//! Known-clean look-alikes for `blocking-in-emit`.

impl Sink for ChannelSink {
    fn record(&mut self, event: &Event) {
        // The sanctioned hot path: classification + atomics + a
        // channel send; a worker thread does the blocking work.
        if is_critical(&event.kind) {
            let _ = self.tx.send(event.clone());
        }
        self.depth.fetch_add(1, Ordering::SeqCst);
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        // Writing to an ALREADY-OPEN buffered writer is legal — the
        // open (done in the constructor) is the unbounded stall, not
        // the write.
        writeln!(self.out, "{event:?}").ok();
    }
}

impl JsonlSink {
    /// Constructors may open files; they run once, off the hot path.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let out = File::create(path)?;
        Ok(JsonlSink {
            out: BufWriter::new(out),
        })
    }

    /// Lock use outside emit/record bodies is out of scope here.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().clone()
    }
}

/// Doc examples never trip the rule:
///
/// ```
/// fn record(sink: &MySink) {
///     let guard = sink.state.lock();
/// }
/// ```
pub fn documented() {}

impl Sink for LookalikeSink {
    fn record(&mut self, event: &Event) {
        // `lock`-prefixed identifiers are not `.lock()` (token
        // equality, not substrings), and a local named `fs` is not
        // the module.
        self.lock_free_push(event);
        let fs = event.seq;
        let _ = fs + 1;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block_in_record_helpers() {
        fn record(path: &std::path::Path) -> std::io::Result<std::fs::File> {
            std::fs::File::create(path)
        }
        let _ = record;
    }
}
