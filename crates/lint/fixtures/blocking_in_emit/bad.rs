//! Seeded violations for `blocking-in-emit`: blocking work inside
//! `emit`/`record` bodies, including via closures defined there.

impl Telemetry {
    pub fn emit(&self, now: Duration, kind: EventKind) {
        let mut sinks = self.sinks.lock(); //~ blocking-in-emit
        for sink in sinks.iter_mut() {
            sink.record(&kind);
        }
    }
}

impl Sink for FileEverySink {
    fn record(&mut self, event: &Event) {
        // Opening the file per event is the classic hot-path stall.
        let mut f = File::create(&self.path).unwrap(); //~ blocking-in-emit
        writeln!(f, "{event:?}").ok();
    }
}

impl Sink for DialingSink {
    fn record(&mut self, event: &Event) {
        // A fresh TCP dial per event blocks on the network.
        if let Ok(mut s) = TcpStream::connect(&self.addr) { //~ blocking-in-emit
            let _ = s.write_all(b"x");
        }
        let _ = UdpSocket::bind("0.0.0.0:0"); //~ blocking-in-emit
    }
}

impl Sink for AppendingSink {
    fn record(&mut self, event: &Event) {
        let open = || {
            // The closure runs inside record: still the hot path.
            OpenOptions::new().append(true).open(&self.path) //~ blocking-in-emit
        };
        let _ = open();
        fs::write(&self.path, b"event").ok(); //~ blocking-in-emit
    }
}
