//! Seeded violations for `prof-in-inner-loop`: profiler scopes paying
//! the guard per iteration instead of per kernel invocation.

pub fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {
    for (r, row) in out.chunks_mut(n).enumerate() {
        // Per-row guard: trip-count times the cost, one row per stack.
        let _prof = hadfl_prof::scope("matmul_row"); //~ prof-in-inner-loop
        for (c, v) in row.iter_mut().enumerate() {
            *v = a[r] * b[c];
        }
    }
}

pub fn accumulate(acc: &mut [f64], params: &[f32]) {
    let mut i = 0;
    while i < acc.len() {
        let _prof = hadfl_prof::scope_bytes("acc_elem", 8); //~ prof-in-inner-loop
        acc[i] += f64::from(params[i]);
        i += 1;
    }
}

pub fn drain(queue: &mut Vec<u32>) {
    loop {
        let Some(item) = queue.pop() else { break };
        let _prof = hadfl_prof::scope("drain_item"); //~ prof-in-inner-loop
        std::hint::black_box(item);
    }
}

pub fn par_chunks(data: &mut [f32]) {
    for chunk in data.chunks_mut(1024) {
        // The callback runs inside the loop body: still per-iteration.
        let work = || {
            let _prof = scope_bytes("chunk", 4 * chunk.len() as u64); //~ prof-in-inner-loop
            chunk.iter_mut().for_each(|v| *v += 1.0);
        };
        work();
    }
}
