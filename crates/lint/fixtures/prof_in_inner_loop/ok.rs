//! Known-clean look-alikes for `prof-in-inner-loop`: hoisted guards,
//! `impl … for …` items, method calls named `scope`, and test code.

use hadfl_prof::{scope, scope_bytes};

pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {
    // One guard for the whole op, bytes covering all of it: the shape
    // the rule pushes toward.
    let _prof = scope_bytes("matmul", 4 * (a.len() + b.len() + out.len()) as u64);
    for (r, row) in out.chunks_mut(n).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = a[r] * b[c];
        }
    }
}

pub trait Kernel {
    fn run(&self);
}

pub struct Conv;

// `for` here introduces an impl, not a loop body.
impl Kernel for Conv {
    fn run(&self) {
        let _prof = scope("conv2d_fwd");
    }
}

pub struct Builder;

impl Builder {
    fn scope(&self, _name: &str) -> u32 {
        0
    }
}

pub fn unrelated_scope_method(b: &Builder) {
    for i in 0..4 {
        // A method named `scope` is not the profiler guard.
        let _ = b.scope("region") + i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_iteration_scopes_are_fine_in_tests() {
        for _ in 0..3 {
            let _prof = scope("test_iter");
        }
    }
}
