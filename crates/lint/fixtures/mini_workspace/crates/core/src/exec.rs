//! In scope for the protocol rules: the ambient clock read is a
//! finding.

pub fn round_deadline() -> std::time::Instant {
    std::time::Instant::now()
}
