//! Excluded from `ambient-clock` by the registry: this is the one
//! sanctioned real-time source.

pub fn wall_now() -> std::time::Instant {
    std::time::Instant::now()
}
