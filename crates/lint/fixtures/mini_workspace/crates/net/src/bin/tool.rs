//! A CLI binary: excluded from `print-in-protocol` (stdout is its
//! user interface), still covered by the other net rules.

fn main() {
    println!("cluster is healthy");
}
