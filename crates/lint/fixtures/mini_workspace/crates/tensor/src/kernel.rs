//! In scope for the kernel rules: the raw spawn is a finding.

pub fn fan_out(xs: Vec<f32>) -> usize {
    let handle = std::thread::spawn(move || xs.len());
    handle.join().unwrap_or(0)
}
