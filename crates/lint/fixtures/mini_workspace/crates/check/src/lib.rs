//! Outside every rule's scope: the model checker may read real time
//! (it measures its own exploration, not protocol behavior).

pub fn exploration_started() -> std::time::Instant {
    std::time::Instant::now()
}
