//! Known-clean for `unwrap-in-protocol`: propagation, defaulted
//! variants, doc examples, and test modules.

/// Doc examples may unwrap:
///
/// ```
/// let frame = port.recv().unwrap();
/// ```
pub fn propagated(res: Result<Frame, Error>) -> Result<Frame, Error> {
    let frame = res?;
    Ok(frame)
}

pub fn defaulted(a: Option<u32>, b: Option<u32>) -> u32 {
    // `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` are total —
    // token equality must not substring-match them as `unwrap`.
    a.unwrap_or(7) + a.unwrap_or_else(|| 1) + b.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Result<u32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Err(());
        w.expect_err("is err");
        if false {
            panic!("unreached");
        }
    }
}
