//! Seeded violations for `unwrap-in-protocol`: panicking shortcuts in
//! non-test protocol code.

pub fn deliver(res: Result<Frame, Error>) -> Frame {
    res.unwrap() //~ unwrap-in-protocol
}

pub fn described(res: Result<Frame, Error>) -> Frame {
    res.expect("always a frame") //~ unwrap-in-protocol
}

pub fn inverted(res: Result<Frame, Error>) -> Error {
    res.unwrap_err() //~ unwrap-in-protocol
}

pub fn routed(kind: u8) -> &'static str {
    match kind {
        0 => "hello",
        1 => "params",
        _ => unreachable!("checked by caller"), //~ unwrap-in-protocol
    }
}

pub fn unfinished() {
    todo!() //~ unwrap-in-protocol
}

pub fn asserted(flag: bool) {
    if !flag {
        panic!("flag must be set"); //~ unwrap-in-protocol
    }
}
