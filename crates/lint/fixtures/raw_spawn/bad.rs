//! Seeded violations for `raw-spawn`: ad-hoc threads in a compute
//! kernel bypass hadfl-par's fixed chunk boundaries.

pub fn split_sum(xs: Vec<f32>) -> usize {
    let handle = std::thread::spawn(move || xs.len()); //~ raw-spawn
    handle.join().unwrap_or(0)
}

pub fn named_worker() {
    let builder = std::thread::Builder::new().name("kernel".into());
    let _ = builder.spawn(|| {}); //~ raw-spawn
}
