//! Known-clean for `raw-spawn`: parallelism through the hadfl-par
//! substrate, and spawn-talk in comments only.

/// Route work through the substrate, never `thread::spawn`:
///
/// ```
/// let total = hadfl_par::par_reduce(xs.len(), partial);
/// ```
pub fn reduced(xs: &[f32]) -> f32 {
    hadfl_par::par_reduce(xs.len(), |start, end| partial_sum(&xs[start..end]))
}

pub fn spawn_like(spawn_count: u32) -> u32 {
    // "spawn" inside a string or identifier is not a spawn.
    let note = "thread::spawn is banned in kernels";
    let _ = note;
    spawn_count
}
