//! Seeded violations for `float-reduce-order`: free-association float
//! accumulation outside the chunked helpers.

pub fn naive_sum(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() //~ float-reduce-order
}

pub fn ascribed(xs: &[f32]) -> f32 {
    let total: f32 = xs.iter().copied().sum(); //~ float-reduce-order
    total
}

pub fn folded(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0, |acc, &x| acc + x) //~ float-reduce-order
}

pub fn doubled(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() //~ float-reduce-order
}
