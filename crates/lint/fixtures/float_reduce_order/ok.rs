//! Known-clean for `float-reduce-order`: the fixed-association
//! helpers, order-insensitive folds, and integer sums.

const CHUNK: usize = 4096;

/// Inside a `chunked_sum` call the association *is* the fixed one.
pub fn chunked(xs: &[f32]) -> f32 {
    chunked_sum(xs.len(), |start, end| {
        let mut acc = 0.0f32;
        for &x in &xs[start..end] {
            acc += x;
        }
        acc
    })
}

/// `f32::max` is commutative and associative on non-NaN inputs — a
/// fold with it cannot observe order.
pub fn maximum(xs: &[f32]) -> f32 {
    xs.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

pub fn minimum(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Integer addition is exact; association cannot change the result.
pub fn counted(xs: &[u32]) -> u32 {
    xs.iter().sum::<u32>()
}

/// The helper's own body is the one place the association is pinned.
fn chunked_sum(len: usize, partial: impl Fn(usize, usize) -> f32) -> f32 {
    let mut acc = 0.0f32;
    let mut start = 0;
    while start < len {
        let end = (start + CHUNK).min(len);
        acc += partial(start, end);
        start = end;
    }
    acc
}
