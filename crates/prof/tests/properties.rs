//! Property-based tests for the profiler's call-tree semantics.
//!
//! The strongest property is a shadow model: a straight-line
//! reference interpreter over the same random scope script (explicit
//! path stack, `total = elapsed`, `self = elapsed - child time`)
//! must reproduce the profiler's dump *exactly* — counts, total/self
//! nanoseconds, bytes, and sort order. On top of that: byte-identical
//! determinism across reruns under [`ManualTime`], the folded-stack
//! round-trip, and the merge algebra.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use hadfl_prof::{
    merge_dumps, parse_folded, scope, scope_bytes, to_folded, ManualTime, ProfileDump, Profiler,
    ScopeGuard, StackRow,
};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["train", "matmul", "blend", "wire", "ring"];

/// One script op decoded from a raw `u32`:
/// `op % 4`: 0 = open `scope`, 1 = open `scope_bytes`, 2 = close the
/// innermost open scope, 3 = advance virtual time. The remaining bits
/// pick the scope name and the advance/byte amount.
#[derive(Debug, Clone, Copy)]
enum Op {
    Open {
        name: &'static str,
        bytes: Option<u64>,
    },
    Close,
    Advance(u64),
}

fn decode(raw: u32) -> Op {
    let name = NAMES[(raw as usize >> 2) % NAMES.len()];
    let amount = u64::from(raw >> 5) % 10_000;
    match raw % 4 {
        0 => Op::Open { name, bytes: None },
        1 => Op::Open {
            name,
            bytes: Some(amount),
        },
        2 => Op::Close,
        _ => Op::Advance(amount),
    }
}

/// Runs the script on a real profiler, closing scopes strictly LIFO.
fn run_script(raw_ops: &[u32]) -> ProfileDump {
    let time = ManualTime::new();
    let prof = Profiler::new(7, Arc::new(time.clone()));
    let guard = prof.install();
    let mut open: Vec<ScopeGuard> = Vec::new();
    for &raw in raw_ops {
        match decode(raw) {
            Op::Open { name, bytes: None } => open.push(scope(name)),
            Op::Open {
                name,
                bytes: Some(b),
            } => open.push(scope_bytes(name, b)),
            Op::Close => {
                open.pop();
            }
            Op::Advance(ns) => time.advance(Duration::from_nanos(ns)),
        }
    }
    while open.pop().is_some() {}
    drop(guard);
    prof.dump()
}

/// The reference interpreter: same script, explicit bookkeeping.
fn shadow_model(raw_ops: &[u32]) -> Vec<StackRow> {
    struct Frame {
        path: String,
        start_ns: u64,
        child_ns: u64,
        bytes: u64,
    }
    let mut now_ns = 0u64;
    let mut stack: Vec<Frame> = Vec::new();
    let mut rows: BTreeMap<String, StackRow> = BTreeMap::new();
    let close_top = |stack: &mut Vec<Frame>, rows: &mut BTreeMap<String, StackRow>, now_ns: u64| {
        let Some(frame) = stack.pop() else { return };
        let elapsed = now_ns - frame.start_ns;
        let row = rows.entry(frame.path.clone()).or_insert_with(|| StackRow {
            stack: frame.path.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            bytes: 0,
        });
        row.count += 1;
        row.total_ns += elapsed;
        row.self_ns += elapsed - frame.child_ns;
        row.bytes += frame.bytes;
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += elapsed;
        }
    };
    for &raw in raw_ops {
        match decode(raw) {
            Op::Open { name, bytes } => {
                let path = match stack.last() {
                    Some(parent) => format!("{};{name}", parent.path),
                    None => name.to_string(),
                };
                stack.push(Frame {
                    path,
                    start_ns: now_ns,
                    child_ns: 0,
                    bytes: bytes.unwrap_or(0),
                });
            }
            Op::Close => close_top(&mut stack, &mut rows, now_ns),
            Op::Advance(ns) => now_ns += ns,
        }
    }
    while !stack.is_empty() {
        close_top(&mut stack, &mut rows, now_ns);
    }
    rows.into_values().collect()
}

fn script_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..2_000_000, 0..48)
}

proptest! {
    #[test]
    fn dump_matches_the_shadow_model_exactly(raw in script_strategy()) {
        let dump = run_script(&raw);
        let expected = shadow_model(&raw);
        prop_assert_eq!(&dump.stacks, &expected);
        // Implied invariants, asserted anyway so a future model change
        // cannot silently weaken them: sorted unique paths, and
        // self <= total with children accounted inside the parent.
        for pair in dump.stacks.windows(2) {
            prop_assert!(pair[0].stack < pair[1].stack);
        }
        for row in &dump.stacks {
            prop_assert!(row.self_ns <= row.total_ns, "{row:?}");
            let child_total: u64 = dump
                .stacks
                .iter()
                .filter(|c| {
                    c.stack.strip_prefix(&row.stack).is_some_and(|rest| {
                        rest.starts_with(';') && !rest[1..].contains(';')
                    })
                })
                .map(|c| c.total_ns)
                .sum();
            prop_assert_eq!(row.total_ns, row.self_ns + child_total, "{}", row.stack);
        }
    }

    #[test]
    fn identical_scripts_dump_identical_bytes(raw in script_strategy()) {
        let a = serde_json::to_string(&run_script(&raw)).unwrap();
        let b = serde_json::to_string(&run_script(&raw)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn folded_text_round_trips(raw in script_strategy()) {
        let dump = run_script(&raw);
        let parsed = parse_folded(&to_folded(&dump)).unwrap();
        let expected: Vec<(String, u64)> = dump
            .stacks
            .iter()
            .map(|r| (r.stack.clone(), r.self_ns))
            .collect();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn merging_a_dump_with_itself_doubles_every_stack(raw in script_strategy()) {
        let dump = run_script(&raw);
        let merged = merge_dumps(&[dump.clone(), dump.clone()]);
        prop_assert_eq!(merged.stacks.len(), dump.stacks.len());
        for (m, d) in merged.stacks.iter().zip(&dump.stacks) {
            prop_assert_eq!(&m.stack, &d.stack);
            prop_assert_eq!(m.count, 2 * d.count);
            prop_assert_eq!(m.total_ns, 2 * d.total_ns);
            prop_assert_eq!(m.self_ns, 2 * d.self_ns);
            prop_assert_eq!(m.bytes, 2 * d.bytes);
        }
        // Merging one dump is the identity on its rows.
        let single = merge_dumps(std::slice::from_ref(&dump));
        prop_assert_eq!(single.stacks, dump.stacks);
        prop_assert_eq!(single.pools, dump.pools);
    }
}
