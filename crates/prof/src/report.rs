//! Serializable profile dumps, folded-stack flamegraph text, and
//! cross-node merging.
//!
//! A [`ProfileDump`] is the deterministic export of one profiler: call
//! stacks keyed by `;`-joined paths (already merged across thread
//! lanes, sorted by path) and the pool-dispatch table (sorted by
//! region). The folded format is the standard flamegraph input — one
//! `path value` line per stack, the value being **self** nanoseconds so
//! the flame widths add up to real time without double counting.

use serde::{Deserialize, Serialize};

/// Version stamp on every dump; bump on breaking field changes.
pub const PROF_SCHEMA_VERSION: u32 = 1;

/// One call-tree path's aggregate across all thread lanes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackRow {
    /// `;`-joined scope names, outermost first (e.g. `train_step;matmul`).
    pub stack: String,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    #[serde(default)]
    pub bytes: u64,
}

/// One pool region's dispatch aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolRow {
    /// The dispatcher's scope path when the region opened.
    pub region: String,
    pub dispatches: u64,
    pub max_workers: u64,
    pub tasks: u64,
    pub busy_ns: u64,
    pub park_ns: u64,
    /// Dispatch-to-first-instruction latency summed over workers
    /// (publish + unpark cost). Absent in pre-pool dumps, hence the
    /// default.
    #[serde(default)]
    pub wake_ns: u64,
    pub wall_ns: u64,
    /// Calibrated serial-time estimate for the dispatched work, summed
    /// over dispatches; 0 when the dispatcher recorded none.
    #[serde(default)]
    pub serial_est_ns: u64,
    pub max_chunk_ns: u64,
    pub min_chunk_ns: u64,
}

impl PoolRow {
    /// Mean task duration in nanoseconds (0 when no tasks ran).
    pub fn mean_chunk_ns(&self) -> u64 {
        self.busy_ns.checked_div(self.tasks).unwrap_or(0)
    }

    /// Largest chunk over the mean chunk — 1.0 is perfectly balanced,
    /// large values mean the chunking is too coarse.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_chunk_ns();
        if mean == 0 {
            1.0
        } else {
            self.max_chunk_ns as f64 / mean as f64
        }
    }

    /// Fraction of region wall time the workers were busy computing,
    /// normalized by worker count (1.0 = every worker busy the whole
    /// region).
    pub fn busy_fraction(&self) -> f64 {
        let denom = self.wall_ns.saturating_mul(self.max_workers.max(1));
        if denom == 0 {
            1.0
        } else {
            (self.busy_ns as f64 / denom as f64).min(1.0)
        }
    }

    /// Fraction of region wall time accounted for by measured worker
    /// lifetime plus wake latency (busy + park + wake). Below ~0.95
    /// the dispatch overhead is going somewhere the pool cannot even
    /// see (spawn/join in the old substrate, scheduler noise now).
    pub fn accounted_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            (self.busy_ns + self.park_ns + self.wake_ns) as f64 / self.wall_ns as f64
        }
    }
}

/// A profiler's full deterministic export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileDump {
    pub v: u32,
    pub node: u32,
    pub stacks: Vec<StackRow>,
    pub pools: Vec<PoolRow>,
}

impl ProfileDump {
    pub fn empty(node: u32) -> Self {
        Self {
            v: PROF_SCHEMA_VERSION,
            node,
            stacks: Vec::new(),
            pools: Vec::new(),
        }
    }
}

/// Renders a dump as folded-stack flamegraph text: one `path self_ns`
/// line per stack row, in path order. Feed straight into any flamegraph
/// renderer.
pub fn to_folded(dump: &ProfileDump) -> String {
    let mut out = String::new();
    for row in &dump.stacks {
        out.push_str(&row.stack);
        out.push(' ');
        out.push_str(&row.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses folded-stack text back into `(path, self_ns)` pairs. Inverse
/// of [`to_folded`] over its output; blank lines are skipped.
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value field: {line:?}", lineno + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value {value:?}: {e}", lineno + 1))?;
        out.push((stack.to_string(), value));
    }
    Ok(out)
}

/// Merges dumps from several nodes into one fleet-wide profile: stack
/// rows sum by path, pool rows sum by region (`max_workers` and chunk
/// extrema combine by max/min). The merged dump carries `node` of the
/// first input (or 0 when empty).
pub fn merge_dumps(dumps: &[ProfileDump]) -> ProfileDump {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<&str, StackRow> = BTreeMap::new();
    let mut pools: BTreeMap<&str, PoolRow> = BTreeMap::new();
    for dump in dumps {
        for row in &dump.stacks {
            match stacks.get_mut(row.stack.as_str()) {
                Some(agg) => {
                    agg.count += row.count;
                    agg.total_ns += row.total_ns;
                    agg.self_ns += row.self_ns;
                    agg.bytes += row.bytes;
                }
                None => {
                    stacks.insert(&row.stack, row.clone());
                }
            }
        }
        for row in &dump.pools {
            match pools.get_mut(row.region.as_str()) {
                Some(agg) => {
                    agg.dispatches += row.dispatches;
                    agg.max_workers = agg.max_workers.max(row.max_workers);
                    agg.tasks += row.tasks;
                    agg.busy_ns += row.busy_ns;
                    agg.park_ns += row.park_ns;
                    agg.wake_ns += row.wake_ns;
                    agg.wall_ns += row.wall_ns;
                    agg.serial_est_ns += row.serial_est_ns;
                    agg.max_chunk_ns = agg.max_chunk_ns.max(row.max_chunk_ns);
                    agg.min_chunk_ns = if agg.min_chunk_ns == 0 {
                        row.min_chunk_ns
                    } else if row.min_chunk_ns == 0 {
                        agg.min_chunk_ns
                    } else {
                        agg.min_chunk_ns.min(row.min_chunk_ns)
                    };
                }
                None => {
                    pools.insert(&row.region, row.clone());
                }
            }
        }
    }
    ProfileDump {
        v: PROF_SCHEMA_VERSION,
        node: dumps.first().map(|d| d.node).unwrap_or(0),
        stacks: stacks.into_values().collect(),
        pools: pools.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(stack: &str, self_ns: u64) -> StackRow {
        StackRow {
            stack: stack.to_string(),
            count: 1,
            total_ns: self_ns,
            self_ns,
            bytes: 0,
        }
    }

    #[test]
    fn folded_round_trips() {
        let dump = ProfileDump {
            v: PROF_SCHEMA_VERSION,
            node: 0,
            stacks: vec![row("a", 10), row("a;b", 20), row("a;b c;d", 5)],
            pools: Vec::new(),
        };
        let folded = to_folded(&dump);
        let parsed = parse_folded(&folded).unwrap();
        let expect: Vec<(String, u64)> = dump
            .stacks
            .iter()
            .map(|r| (r.stack.clone(), r.self_ns))
            .collect();
        assert_eq!(parsed, expect);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_folded("no_value_here").is_err());
        assert!(parse_folded("stack notanumber").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }

    #[test]
    fn merge_sums_by_path_and_region() {
        let a = ProfileDump {
            v: PROF_SCHEMA_VERSION,
            node: 0,
            stacks: vec![row("x", 10), row("x;y", 1)],
            pools: vec![PoolRow {
                region: "x".to_string(),
                dispatches: 1,
                max_workers: 2,
                tasks: 4,
                busy_ns: 100,
                park_ns: 10,
                wake_ns: 3,
                wall_ns: 60,
                serial_est_ns: 50,
                max_chunk_ns: 40,
                min_chunk_ns: 10,
            }],
        };
        let mut b = a.clone();
        b.node = 1;
        b.pools[0].max_workers = 4;
        b.pools[0].min_chunk_ns = 5;
        let merged = merge_dumps(&[a, b]);
        assert_eq!(merged.stacks.len(), 2);
        assert_eq!(merged.stacks[0].self_ns, 20);
        let p = &merged.pools[0];
        assert_eq!((p.dispatches, p.max_workers, p.tasks), (2, 4, 8));
        assert_eq!((p.busy_ns, p.min_chunk_ns, p.max_chunk_ns), (200, 5, 40));
        assert_eq!((p.wake_ns, p.serial_est_ns), (6, 100));
    }

    #[test]
    fn pool_row_derived_metrics() {
        let p = PoolRow {
            region: "matmul".to_string(),
            dispatches: 1,
            max_workers: 4,
            tasks: 4,
            busy_ns: 124,
            park_ns: 260,
            wake_ns: 16,
            wall_ns: 100,
            serial_est_ns: 0,
            max_chunk_ns: 87,
            min_chunk_ns: 10,
        };
        assert_eq!(p.mean_chunk_ns(), 31);
        assert!((p.imbalance() - 87.0 / 31.0).abs() < 1e-9);
        assert!((p.busy_fraction() - 0.31).abs() < 1e-9);
        assert!((p.accounted_fraction() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pre_pool_dumps_deserialize_with_defaulted_fields() {
        // A PR-8-era pool row has no wake_ns/serial_est_ns keys.
        let json = r#"{"region":"x","dispatches":1,"max_workers":2,"tasks":4,
                       "busy_ns":100,"park_ns":10,"wall_ns":60,
                       "max_chunk_ns":40,"min_chunk_ns":10}"#;
        let p: PoolRow = serde_json::from_str(json).unwrap();
        assert_eq!((p.wake_ns, p.serial_est_ns), (0, 0));
        assert!((p.accounted_fraction() - 110.0 / 60.0).abs() < 1e-9);
    }
}
