//! In-process hierarchical compute profiler.
//!
//! The span tracer (`hadfl-telemetry`) sees protocol events; this crate
//! sees *below* them: where the nanoseconds of a train step actually go
//! — which kernel, how much of the pool's time was busy versus parked,
//! and whether chunking left workers idle. The design constraints, in
//! order:
//!
//! 1. **Zero cost when disabled.** Instrumentation sites call the free
//!    functions [`scope`]/[`scope_bytes`] unconditionally; when no
//!    profiler is installed on the thread they cost one thread-local
//!    flag check (single-digit nanoseconds, pinned by a criterion
//!    bench). No handle plumbing through kernel signatures.
//! 2. **Per-op granularity.** A scope wraps an operation (a matmul, an
//!    encode, a train step), never an element or an inner loop — the
//!    `prof-in-inner-loop` lint rule enforces this.
//! 3. **Deterministic output.** Time flows through the [`TimeSource`]
//!    seam (adapted from the runtime's `Clock`), so a scripted
//!    [`ManualTime`] makes two identical runs produce byte-identical
//!    profiles: the export merges all thread lanes into one
//!    name-ordered tree, which erases the (nondeterministic) physical
//!    thread-to-chunk assignment while preserving every deterministic
//!    sum.
//!
//! # Model
//!
//! Installing a [`Profiler`] on a thread ([`Profiler::install`]) gives
//! that thread a *lane*: a call-tree arena plus a stack of open frames.
//! [`scope`] pushes a frame; dropping the returned guard pops it and
//! charges the elapsed time to the named node (`total_ns`) and the
//! portion not covered by child scopes to `self_ns`. Uninstalling (the
//! guard from `install` dropping) commits the lane into the profiler's
//! merged tree, keyed by `;`-joined scope paths.
//!
//! Pool dispatches are recorded separately via [`PoolRegion`]: the
//! dispatcher opens a region (keyed by its current scope path), workers
//! time themselves and their claimed tasks through lock-free atomics on
//! the region, and `finish` folds the aggregate — busy, park, wall,
//! per-chunk extrema — into the profile's pool table.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use hadfl_prof::{scope, ManualTime, Profiler};
//!
//! let time = ManualTime::new();
//! let prof = Profiler::new(0, Arc::new(time.clone()));
//! {
//!     let _thread = prof.install();
//!     let _train = scope("train_step");
//!     time.advance(Duration::from_micros(5));
//!     {
//!         let _mm = scope("matmul");
//!         time.advance(Duration::from_micros(3));
//!     }
//! }
//! let dump = prof.dump();
//! assert_eq!(dump.stacks[0].stack, "train_step");
//! assert_eq!(dump.stacks[0].total_ns, 8_000);
//! assert_eq!(dump.stacks[0].self_ns, 5_000);
//! assert_eq!(dump.stacks[1].stack, "train_step;matmul");
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

mod report;

pub use report::{
    merge_dumps, parse_folded, to_folded, PoolRow, ProfileDump, StackRow, PROF_SCHEMA_VERSION,
};

/// Where the profiler reads time from. The runtime adapts its own
/// `Clock` trait onto this, so profiles produced under a `ManualClock`
/// are fully scripted.
pub trait TimeSource: Send + Sync {
    /// Monotonic elapsed time since an arbitrary epoch.
    fn now(&self) -> Duration;
}

/// Real monotonic time, measured from construction.
pub struct WallTime {
    epoch: Instant,
}

impl WallTime {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }
}

impl Default for WallTime {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallTime {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// Scripted time for determinism tests: clones share the same instant,
/// and time moves only when the test says so.
#[derive(Clone, Default)]
pub struct ManualTime(Arc<Mutex<Duration>>);

impl ManualTime {
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        *self.0.lock() += d;
    }

    /// Jumps time to the absolute value `d`.
    pub fn set(&self, d: Duration) {
        *self.0.lock() = d;
    }
}

impl TimeSource for ManualTime {
    fn now(&self) -> Duration {
        *self.0.lock()
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Call-tree lane (one per installed thread)
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct NodeStat {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    bytes: u64,
}

impl NodeStat {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            children: BTreeMap::new(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            bytes: 0,
        }
    }
}

struct Frame {
    node: usize,
    start_ns: u64,
    child_ns: u64,
}

/// One thread's call tree: an arena of named nodes (index 0 is the
/// unnamed root) plus the stack of currently open frames.
struct Lane {
    nodes: Vec<NodeStat>,
    stack: Vec<Frame>,
}

impl Lane {
    fn new() -> Self {
        Self {
            nodes: vec![NodeStat::new("")],
            stack: Vec::new(),
        }
    }

    fn enter(&mut self, name: &'static str, now_ns: u64) {
        let parent = self.stack.last().map(|f| f.node).unwrap_or(0);
        let node = match self.nodes[parent].children.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(NodeStat::new(name));
                self.nodes[parent].children.insert(name, idx);
                idx
            }
        };
        self.stack.push(Frame {
            node,
            start_ns: now_ns,
            child_ns: 0,
        });
    }

    fn exit(&mut self, now_ns: u64) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = now_ns.saturating_sub(frame.start_ns);
        let node = &mut self.nodes[frame.node];
        node.count += 1;
        node.total_ns += elapsed;
        node.self_ns += elapsed.saturating_sub(frame.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    fn add_bytes(&mut self, bytes: u64) {
        if let Some(frame) = self.stack.last() {
            self.nodes[frame.node].bytes += bytes;
        }
    }

    /// The `;`-joined path of open scopes, innermost last. Empty when
    /// no scope is open.
    fn current_path(&self) -> String {
        let mut path = String::new();
        for frame in &self.stack {
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(self.nodes[frame.node].name);
        }
        path
    }

    /// Folds this lane's finished nodes into `merged` by path and
    /// resets the lane. Open frames (unbalanced scopes) are discarded:
    /// RAII makes them unreachable in correct code.
    fn commit(&mut self, merged: &mut Merged) {
        let mut path = String::new();
        let root_children: Vec<usize> = self.nodes[0].children.values().copied().collect();
        for child in root_children {
            self.commit_node(child, &mut path, merged);
        }
        self.nodes.truncate(1);
        self.nodes[0] = NodeStat::new("");
        self.stack.clear();
    }

    fn commit_node(&self, idx: usize, path: &mut String, merged: &mut Merged) {
        let node = &self.nodes[idx];
        let prev_len = path.len();
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(node.name);
        // A node that never closed (count 0, no data) is an open frame
        // discarded by the commit; its finished children still export.
        if node.count > 0 || node.total_ns > 0 || node.bytes > 0 {
            let agg = merged.stacks.entry(path.clone()).or_default();
            agg.count += node.count;
            agg.total_ns += node.total_ns;
            agg.self_ns += node.self_ns;
            agg.bytes += node.bytes;
        }
        for &child in node.children.values() {
            self.commit_node(child, path, merged);
        }
        path.truncate(prev_len);
    }
}

#[derive(Default, Clone, Copy)]
struct StackAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    bytes: u64,
}

#[derive(Default, Clone, Copy)]
struct PoolAgg {
    dispatches: u64,
    max_workers: u64,
    tasks: u64,
    busy_ns: u64,
    park_ns: u64,
    /// Dispatch-to-first-instruction latency summed over workers: the
    /// publish/unpark cost of waking the persistent pool.
    wake_ns: u64,
    wall_ns: u64,
    /// Calibrated estimate of the serial wall time for the dispatched
    /// work, summed over dispatches (0 when the dispatcher had none).
    serial_est_ns: u64,
    max_chunk_ns: u64,
    /// `u64::MAX` until the first task lands.
    min_chunk_ns: u64,
}

#[derive(Default)]
struct Merged {
    stacks: BTreeMap<String, StackAgg>,
    pools: BTreeMap<String, PoolAgg>,
}

// ---------------------------------------------------------------------------
// Profiler handle and thread installation
// ---------------------------------------------------------------------------

struct ProfInner {
    node: u32,
    time: Arc<dyn TimeSource>,
    merged: Mutex<Merged>,
}

/// Cheaply cloneable profiler handle. `Profiler::disabled()` is inert:
/// installing it is a no-op and every instrumentation site stays on the
/// one-flag-check fast path.
#[derive(Clone)]
pub struct Profiler(Option<Arc<ProfInner>>);

struct ThreadCtx {
    prof: Arc<ProfInner>,
    time: Arc<dyn TimeSource>,
    lane: Lane,
}

thread_local! {
    /// Fast-path flag mirroring `CURRENT.is_some()`, so a disabled
    /// `scope()` is a single `Cell` read.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

impl Profiler {
    /// The inert handle: never records anything.
    pub fn disabled() -> Self {
        Profiler(None)
    }

    /// A live profiler for node `node`, reading time from `time`.
    pub fn new(node: u32, time: Arc<dyn TimeSource>) -> Self {
        Profiler(Some(Arc::new(ProfInner {
            node,
            time,
            merged: Mutex::new(Merged::default()),
        })))
    }

    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Installs this profiler on the calling thread for the lifetime of
    /// the returned guard. Scopes opened on this thread record into a
    /// thread-private lane; dropping the guard commits the lane into
    /// the merged profile (and restores any previously installed
    /// profiler). Disabled handles install nothing.
    #[must_use = "the profiler records only while the install guard is alive"]
    pub fn install(&self) -> InstallGuard {
        let Some(inner) = &self.0 else {
            return InstallGuard {
                prev: None,
                armed: false,
            };
        };
        let ctx = ThreadCtx {
            prof: Arc::clone(inner),
            time: Arc::clone(&inner.time),
            lane: Lane::new(),
        };
        let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
        ACTIVE.with(|a| a.set(true));
        InstallGuard { prev, armed: true }
    }

    /// Snapshot of everything committed so far, rows sorted by stack
    /// path / region name. Lanes still installed on live threads are
    /// not included — drop their install guards first.
    pub fn dump(&self) -> ProfileDump {
        let Some(inner) = &self.0 else {
            return ProfileDump::empty(0);
        };
        let merged = inner.merged.lock();
        let stacks = merged
            .stacks
            .iter()
            .map(|(stack, agg)| StackRow {
                stack: stack.clone(),
                count: agg.count,
                total_ns: agg.total_ns,
                self_ns: agg.self_ns,
                bytes: agg.bytes,
            })
            .collect();
        let pools = merged
            .pools
            .iter()
            .map(|(region, agg)| PoolRow {
                region: region.clone(),
                dispatches: agg.dispatches,
                max_workers: agg.max_workers,
                tasks: agg.tasks,
                busy_ns: agg.busy_ns,
                park_ns: agg.park_ns,
                wake_ns: agg.wake_ns,
                wall_ns: agg.wall_ns,
                serial_est_ns: agg.serial_est_ns,
                max_chunk_ns: agg.max_chunk_ns,
                min_chunk_ns: if agg.min_chunk_ns == u64::MAX {
                    0
                } else {
                    agg.min_chunk_ns
                },
            })
            .collect();
        ProfileDump {
            v: PROF_SCHEMA_VERSION,
            node: inner.node,
            stacks,
            pools,
        }
    }
}

/// Guard returned by [`Profiler::install`]; commits the thread's lane
/// on drop.
pub struct InstallGuard {
    prev: Option<ThreadCtx>,
    armed: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let ctx = CURRENT.with(|c| {
            let mut b = c.borrow_mut();
            let ctx = b.take();
            *b = self.prev.take();
            let restored = b.is_some();
            ACTIVE.with(|a| a.set(restored));
            ctx
        });
        if let Some(mut ctx) = ctx {
            ctx.lane.commit(&mut ctx.prof.merged.lock());
        }
    }
}

// ---------------------------------------------------------------------------
// RAII scopes
// ---------------------------------------------------------------------------

/// Guard for one open profiling scope; the scope closes when it drops.
#[must_use = "a scope measures until this guard drops"]
pub struct ScopeGuard {
    armed: bool,
}

/// Opens a named scope on the calling thread's lane. Inert (one flag
/// check) when no profiler is installed. Names become frames in the
/// `;`-joined stack path, so they must not contain `;`.
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !ACTIVE.with(Cell::get) {
        return ScopeGuard { armed: false };
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            let now = ns(ctx.time.now());
            ctx.lane.enter(name, now);
        }
    });
    ScopeGuard { armed: true }
}

/// [`scope`] plus a byte count charged to the scope's node — for codec
/// and kernel sites where throughput matters.
#[inline]
pub fn scope_bytes(name: &'static str, bytes: u64) -> ScopeGuard {
    let guard = scope(name);
    if guard.armed {
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.lane.add_bytes(bytes);
            }
        });
    }
    guard
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                let now = ns(ctx.time.now());
                ctx.lane.exit(now);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Pool regions (used by hadfl-par)
// ---------------------------------------------------------------------------

struct RegionInner {
    prof: Arc<ProfInner>,
    key: String,
    start_ns: u64,
    busy_ns: AtomicU64,
    worker_ns: AtomicU64,
    wake_ns: AtomicU64,
    serial_est_ns: AtomicU64,
    tasks: AtomicU64,
    workers: AtomicU64,
    max_chunk_ns: AtomicU64,
    min_chunk_ns: AtomicU64,
}

/// One pool dispatch, opened by the dispatching thread. Workers share
/// it by reference (all recording is lock-free atomics) and time their
/// own lifetime and each claimed task; [`PoolRegion::finish`] folds the
/// aggregate into the profile's pool table under the dispatcher's
/// current scope path.
pub struct PoolRegion(Option<RegionInner>);

/// Start-timestamp token handed back by [`PoolRegion::task_start`] /
/// [`PoolRegion::worker_start`].
#[derive(Clone, Copy)]
pub struct PoolTimer(Option<u64>);

impl PoolRegion {
    /// Opens a region when a profiler is installed on the calling
    /// thread; inert otherwise. The region key is the dispatcher's
    /// current scope path, falling back to `kind` outside any scope.
    pub fn begin(kind: &'static str) -> PoolRegion {
        if !ACTIVE.with(Cell::get) {
            return PoolRegion(None);
        }
        let inner = CURRENT.with(|c| {
            c.borrow().as_ref().map(|ctx| {
                let path = ctx.lane.current_path();
                RegionInner {
                    prof: Arc::clone(&ctx.prof),
                    key: if path.is_empty() {
                        kind.to_string()
                    } else {
                        path
                    },
                    start_ns: ns(ctx.time.now()),
                    busy_ns: AtomicU64::new(0),
                    worker_ns: AtomicU64::new(0),
                    wake_ns: AtomicU64::new(0),
                    serial_est_ns: AtomicU64::new(0),
                    tasks: AtomicU64::new(0),
                    workers: AtomicU64::new(0),
                    max_chunk_ns: AtomicU64::new(0),
                    min_chunk_ns: AtomicU64::new(u64::MAX),
                }
            })
        });
        PoolRegion(inner)
    }

    /// A region that is guaranteed inert even with a profiler
    /// installed. Calibration probes dispatch through the real pool
    /// but must not pollute the profile's pool table with their no-op
    /// rounds.
    pub fn disabled() -> PoolRegion {
        PoolRegion(None)
    }

    /// `true` when this region actually records (a profiler was
    /// installed when it began).
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Records the dispatcher's calibrated estimate of what this
    /// dispatch would have cost serially — `hadfl-trace profile` flags
    /// regions whose wall time exceeds it ("serial-better").
    pub fn set_serial_estimate(&self, estimate_ns: u64) {
        if let Some(r) = &self.0 {
            r.serial_est_ns.store(estimate_ns, Ordering::Relaxed);
        }
    }

    fn now_ns(&self) -> Option<u64> {
        self.0.as_ref().map(|r| ns(r.prof.time.now()))
    }

    /// Marks one worker joining the region (the dispatching thread
    /// counts as a worker when it drains tasks itself). The gap between
    /// the region opening and the worker's first instruction is charged
    /// as wake latency.
    pub fn worker_start(&self) -> PoolTimer {
        let now = self.now_ns();
        if let (Some(r), Some(now)) = (&self.0, now) {
            r.workers.fetch_add(1, Ordering::Relaxed);
            r.wake_ns
                .fetch_add(now.saturating_sub(r.start_ns), Ordering::Relaxed);
        }
        PoolTimer(now)
    }

    /// Closes a worker's lifetime; the gap between its lifetime and its
    /// busy time becomes park time.
    pub fn worker_end(&self, t: PoolTimer) {
        let (Some(r), Some(start), Some(now)) = (&self.0, t.0, self.now_ns()) else {
            return;
        };
        r.worker_ns
            .fetch_add(now.saturating_sub(start), Ordering::Relaxed);
    }

    /// Starts timing one claimed task (chunk).
    pub fn task_start(&self) -> PoolTimer {
        PoolTimer(self.now_ns())
    }

    /// Finishes one task, feeding busy time and per-chunk extrema.
    pub fn task_end(&self, t: PoolTimer) {
        let (Some(r), Some(start), Some(now)) = (&self.0, t.0, self.now_ns()) else {
            return;
        };
        let e = now.saturating_sub(start);
        r.busy_ns.fetch_add(e, Ordering::Relaxed);
        r.tasks.fetch_add(1, Ordering::Relaxed);
        r.max_chunk_ns.fetch_max(e, Ordering::Relaxed);
        r.min_chunk_ns.fetch_min(e, Ordering::Relaxed);
    }

    /// Ends the dispatch: computes wall and park time and commits the
    /// aggregate into the profile's pool table.
    pub fn finish(self) {
        let Some(r) = self.0 else {
            return;
        };
        let wall = ns(r.prof.time.now()).saturating_sub(r.start_ns);
        let busy = r.busy_ns.load(Ordering::Relaxed);
        let worker = r.worker_ns.load(Ordering::Relaxed);
        let mut merged = r.prof.merged.lock();
        let agg = merged.pools.entry(r.key.clone()).or_insert(PoolAgg {
            min_chunk_ns: u64::MAX,
            ..PoolAgg::default()
        });
        agg.dispatches += 1;
        agg.max_workers = agg.max_workers.max(r.workers.load(Ordering::Relaxed));
        agg.tasks += r.tasks.load(Ordering::Relaxed);
        agg.busy_ns += busy;
        agg.park_ns += worker.saturating_sub(busy);
        agg.wake_ns += r.wake_ns.load(Ordering::Relaxed);
        agg.wall_ns += wall;
        agg.serial_est_ns += r.serial_est_ns.load(Ordering::Relaxed);
        agg.max_chunk_ns = agg.max_chunk_ns.max(r.max_chunk_ns.load(Ordering::Relaxed));
        agg.min_chunk_ns = agg.min_chunk_ns.min(r.min_chunk_ns.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (ManualTime, Profiler) {
        let time = ManualTime::new();
        let prof = Profiler::new(7, Arc::new(time.clone()));
        (time, prof)
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _s = scope("nothing");
        let _b = scope_bytes("nothing", 123);
        let dump = Profiler::disabled().dump();
        assert!(dump.stacks.is_empty() && dump.pools.is_empty());
    }

    #[test]
    fn scripted_tree_matches_hand_computation() {
        let (time, prof) = manual();
        {
            let _g = prof.install();
            for _ in 0..2 {
                let _train = scope("train_step");
                time.advance(Duration::from_nanos(100));
                {
                    let _mm = scope_bytes("matmul", 64);
                    time.advance(Duration::from_nanos(40));
                }
                {
                    let _mm = scope_bytes("matmul", 64);
                    time.advance(Duration::from_nanos(60));
                }
                time.advance(Duration::from_nanos(10));
            }
        }
        let dump = prof.dump();
        assert_eq!(dump.node, 7);
        assert_eq!(dump.stacks.len(), 2);
        let train = &dump.stacks[0];
        assert_eq!(
            (
                train.stack.as_str(),
                train.count,
                train.total_ns,
                train.self_ns
            ),
            ("train_step", 2, 420, 220)
        );
        let mm = &dump.stacks[1];
        assert_eq!(
            (
                mm.stack.as_str(),
                mm.count,
                mm.total_ns,
                mm.self_ns,
                mm.bytes
            ),
            ("train_step;matmul", 4, 200, 200, 256)
        );
    }

    #[test]
    fn sibling_scopes_with_the_same_name_share_a_node() {
        let (time, prof) = manual();
        {
            let _g = prof.install();
            for _ in 0..3 {
                let _s = scope("encode");
                time.advance(Duration::from_nanos(5));
            }
        }
        let dump = prof.dump();
        assert_eq!(dump.stacks.len(), 1);
        assert_eq!(dump.stacks[0].count, 3);
        assert_eq!(dump.stacks[0].total_ns, 15);
    }

    #[test]
    fn install_restores_previous_profiler() {
        let (time, outer_prof) = manual();
        let (_, inner_prof) = manual();
        {
            let _outer = outer_prof.install();
            {
                let _inner = inner_prof.install();
                let _s = scope("inner_only");
                time.advance(Duration::from_nanos(1));
            }
            // Back on the outer profiler.
            let _s = scope("outer_only");
        }
        assert_eq!(inner_prof.dump().stacks[0].stack, "inner_only");
        assert_eq!(outer_prof.dump().stacks[0].stack, "outer_only");
    }

    #[test]
    fn lanes_from_many_threads_merge_deterministically() {
        let (_, prof) = manual();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let prof = prof.clone();
                s.spawn(move || {
                    let _g = prof.install();
                    let _s = scope("worker_op");
                });
            }
        });
        let dump = prof.dump();
        assert_eq!(dump.stacks.len(), 1);
        assert_eq!(dump.stacks[0].count, 4);
    }

    #[test]
    fn pool_region_records_busy_park_and_chunks() {
        let (time, prof) = manual();
        {
            let _g = prof.install();
            let _s = scope("matmul");
            let region = PoolRegion::begin("par");
            assert!(region.active());
            let w = region.worker_start();
            let t = region.task_start();
            time.advance(Duration::from_nanos(30));
            region.task_end(t);
            let t = region.task_start();
            time.advance(Duration::from_nanos(70));
            region.task_end(t);
            time.advance(Duration::from_nanos(25)); // parked tail
            region.worker_end(w);
            region.finish();
        }
        let dump = prof.dump();
        assert_eq!(dump.pools.len(), 1);
        let p = &dump.pools[0];
        assert_eq!(p.region, "matmul");
        assert_eq!(
            (p.dispatches, p.max_workers, p.tasks, p.busy_ns, p.park_ns),
            (1, 1, 2, 100, 25)
        );
        assert_eq!((p.wall_ns, p.max_chunk_ns, p.min_chunk_ns), (125, 70, 30));
    }

    #[test]
    fn pool_region_without_profiler_is_inert() {
        let region = PoolRegion::begin("par");
        assert!(!region.active());
        let t = region.task_start();
        region.task_end(t);
        region.finish();
    }

    #[test]
    fn unbalanced_open_scope_is_discarded_on_commit() {
        let (time, prof) = manual();
        {
            let _g = prof.install();
            let open = scope("closed");
            time.advance(Duration::from_nanos(10));
            drop(open);
            let leaked = scope("still_open");
            time.advance(Duration::from_nanos(99));
            std::mem::forget(leaked);
        }
        // Only the balanced scope survives the commit; re-install to
        // clear the leaked frame's thread state.
        let dump = prof.dump();
        assert_eq!(dump.stacks.len(), 1);
        assert_eq!(dump.stacks[0].stack, "closed");
    }
}
