//! The checked system: the real protocol actors under a ghost model,
//! a fixed planner, per-pair FIFO channels, and a gated action set.
//!
//! A [`World`] is one global state of a `k`-device cluster plus
//! coordinator: every actor's full state and every in-flight message.
//! [`World::enabled_actions`] lists the schedulable events;
//! [`World::apply`] executes one and re-checks the safety invariants.
//! Everything is deterministic — the explorer owns all nondeterminism.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Duration;

use hadfl::coordinator::RoundPlan;
use hadfl::exec::{
    CoordPhaseKind, CoordinatorActor, DeviceActor, Planner, ProtocolTiming, TrainState,
};
use hadfl::topology::Ring;
use hadfl::transport::{coordinator_id, Port};
use hadfl::wire::Message;
use hadfl::HadflError;
use hadfl_simnet::{DeviceId, NetStats};

/// One bounded model-checking problem.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Devices in the cluster (the coordinator is extra).
    pub devices: usize,
    /// Synchronization rounds the coordinator runs.
    pub rounds: usize,
    /// Ring size per round: the planner selects the first `select`
    /// available devices; the rest receive the broadcast.
    pub select: usize,
    /// Maximum crash events the scheduler may inject.
    pub crashes: usize,
    /// Let the coordinator's collect deadline elapse even while report
    /// traffic is still in flight (models a device that is merely slow
    /// being dropped). Implies tolerating [`HadflError::ClusterDead`].
    pub aggressive_deadline: bool,
    /// Treat a `< 2 alive` cluster death as an acceptable outcome
    /// instead of a violation.
    pub allow_cluster_dead: bool,
    /// Hard cap on explored states (exploration reports truncation).
    pub max_states: usize,
    /// Optional BFS depth bound (`None` explores to closure).
    pub max_depth: Option<usize>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            devices: 3,
            rounds: 1,
            select: 3,
            crashes: 0,
            aggressive_deadline: false,
            allow_cluster_dead: false,
            max_states: 1_000_000,
            max_depth: None,
        }
    }
}

impl CheckConfig {
    /// Validates the bounds the model was designed for.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] outside 2–4 devices or
    /// with a ring smaller than two members.
    pub fn validate(&self) -> Result<(), HadflError> {
        if !(2..=4).contains(&self.devices) {
            return Err(HadflError::InvalidConfig(format!(
                "hadfl-check models 2-4 devices, got {}",
                self.devices
            )));
        }
        if self.select < 2 || self.select > self.devices {
            return Err(HadflError::InvalidConfig(format!(
                "select must be 2..=devices, got {}",
                self.select
            )));
        }
        if self.rounds == 0 {
            return Err(HadflError::InvalidConfig("rounds must be >= 1".into()));
        }
        Ok(())
    }
}

/// A safety or liveness property the protocol broke, with enough
/// detail to read the counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An in-flight `ParamAccum` does not hold each member exactly
    /// zero-or-once, or its entry sum disagrees with its `hops` tag.
    AccumAlgebra(String),
    /// An in-flight merged/broadcast model is not a uniform average of
    /// distinct members.
    MergedAlgebra(String),
    /// A device's `done_round` or the coordinator's round went
    /// backwards.
    RoundRegression(String),
    /// Payload bytes stopped adding up: sent != delivered + sunk +
    /// in flight.
    LedgerLeak(String),
    /// An actor returned an error the protocol does not allow here.
    ProtocolError(String),
    /// The cluster died (< 2 devices) in a configuration that forbids
    /// it.
    ClusterDeath(String),
    /// A failure-quiescent state was reached where nothing can run but
    /// the run is not complete (deadlock / stranded device).
    Stranded(String),
    /// A reachable state has no path to completion even with no
    /// further failures (e.g. an endless probe/ack cycle).
    Livelock(String),
}

impl Violation {
    /// Stable machine-readable kind for tests and tooling.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::AccumAlgebra(_) => "accum-algebra",
            Violation::MergedAlgebra(_) => "merged-algebra",
            Violation::RoundRegression(_) => "round-regression",
            Violation::LedgerLeak(_) => "ledger-leak",
            Violation::ProtocolError(_) => "protocol-error",
            Violation::ClusterDeath(_) => "cluster-death",
            Violation::Stranded(_) => "stranded",
            Violation::Livelock(_) => "livelock",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let detail = match self {
            Violation::AccumAlgebra(d)
            | Violation::MergedAlgebra(d)
            | Violation::RoundRegression(d)
            | Violation::LedgerLeak(d)
            | Violation::ProtocolError(d)
            | Violation::ClusterDeath(d)
            | Violation::Stranded(d)
            | Violation::Livelock(d) => d,
        };
        write!(f, "{}: {}", self.kind(), detail)
    }
}

/// One schedulable event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Pop the oldest frame of the `from → to` channel and deliver it.
    Deliver {
        /// Sending participant.
        from: usize,
        /// Receiving participant.
        to: usize,
    },
    /// A device's in-ring wait elapses (probe arming / death call).
    DeviceTimer {
        /// The device whose timer fires.
        device: usize,
    },
    /// The coordinator's pending deadline elapses.
    CoordTimer,
    /// A device dies silently.
    Crash {
        /// The device that dies.
        device: usize,
    },
}

impl Action {
    /// Is this a failure injection (vs. normal progress)?
    pub fn is_crash(&self) -> bool {
        matches!(self, Action::Crash { .. })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver { from, to } => write!(f, "deliver {from}->{to}"),
            Action::DeviceTimer { device } => write!(f, "timer@{device}"),
            Action::CoordTimer => write!(f, "timer@coord"),
            Action::Crash { device } => write!(f, "crash {device}"),
        }
    }
}

/// The training-state stand-in that makes ring arithmetic checkable:
/// device `i`'s parameters are always the basis vector `e_i`, so an
/// accumulation's entries count *how often each member was added* and
/// a merged model's entries expose the averaging weights.
#[derive(Debug, Clone)]
pub struct GhostModel {
    me: usize,
    k: usize,
    steps: u64,
    installed: Vec<f32>,
}

impl GhostModel {
    /// The ghost of device `me` in a `k`-device cluster.
    pub fn new(me: usize, k: usize) -> Self {
        GhostModel {
            me,
            k,
            steps: 0,
            installed: Vec::new(),
        }
    }
}

impl TrainState for GhostModel {
    fn params(&self) -> Vec<f32> {
        let mut basis = vec![0.0; self.k];
        basis[self.me] = 1.0;
        basis
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
        self.installed = params.to_vec();
        Ok(())
    }

    fn train_step(&mut self) -> Result<(), HadflError> {
        self.steps += 1;
        Ok(())
    }

    fn version(&self) -> f64 {
        self.steps as f64
    }

    fn digest(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.me as u64).to_le_bytes());
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.extend_from_slice(&(self.installed.len() as u64).to_le_bytes());
        for p in &self.installed {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
}

/// A deterministic planner: selects the first `select` available
/// devices, rings them in id order, first member broadcasts. All the
/// paper's selection randomness is irrelevant to protocol safety, so
/// the checker pins it.
#[derive(Debug, Clone)]
pub struct FixedPlanner {
    select: usize,
}

impl Planner for FixedPlanner {
    fn plan(&mut self, available: &[DeviceId], _versions: &[f64]) -> Result<RoundPlan, HadflError> {
        let n = self.select.min(available.len());
        let chosen: Vec<DeviceId> = available[..n].to_vec();
        let ring = Ring::from_order(chosen.clone())?;
        let broadcaster = chosen[0];
        Ok(RoundPlan {
            selected: chosen,
            ring,
            unselected: available[n..].to_vec(),
            broadcaster,
        })
    }

    fn digest(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.select as u64).to_le_bytes());
    }
}

/// A [`Port`] that only collects outbound frames; receiving is the
/// scheduler's job, so both `recv` flavours report "nothing pending".
#[derive(Debug)]
struct SimPort {
    me: usize,
    participants: usize,
    outbox: Vec<(usize, Message)>,
}

impl SimPort {
    fn new(me: usize, participants: usize) -> Self {
        SimPort {
            me,
            participants,
            outbox: Vec::new(),
        }
    }
}

impl Port for SimPort {
    fn id(&self) -> usize {
        self.me
    }

    fn participants(&self) -> usize {
        self.participants
    }

    fn send(&mut self, to: usize, msg: &Message) -> Result<(), HadflError> {
        self.outbox.push((to, msg.clone()));
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, HadflError> {
        Ok(None)
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Result<Option<Message>, HadflError> {
        Ok(None)
    }

    fn stats(&self) -> NetStats {
        NetStats::new()
    }
}

// `Up` dwarfs the unit variants, but these enums live inline in
// `World`, the BFS's hot clone; boxing the actors would put a heap
// hop on every clone of every (overwhelmingly `Up`) node.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum DeviceNode {
    Up(DeviceActor<GhostModel>),
    Crashed,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum CoordNode {
    Up(CoordinatorActor<FixedPlanner>),
    /// The coordinator exited with [`HadflError::ClusterDead`]; frames
    /// addressed to it from now on fall on the floor.
    Dead,
}

/// One global state of the modeled cluster.
#[derive(Debug, Clone)]
pub struct World {
    cfg: CheckConfig,
    devices: Vec<DeviceNode>,
    coord: CoordNode,
    /// Per ordered pair, the FIFO of in-flight frames — the TCP fabric
    /// guarantees order per connection but none across connections.
    channels: BTreeMap<(usize, usize), VecDeque<Message>>,
    crashes_left: usize,
    // --- byte ledger: deliberately excluded from `digest` (the
    // counters grow monotonically and would defeat deduplication);
    // conservation is re-checked after every transition instead.
    bytes_sent: u64,
    bytes_delivered: u64,
    bytes_sunk: u64,
}

impl World {
    /// The initial state: all devices training, the coordinator opening
    /// round 1's window, no frames in flight.
    pub fn new(cfg: CheckConfig) -> Self {
        let k = cfg.devices;
        let devices = (0..k)
            .map(|d| {
                DeviceNode::Up(DeviceActor::new(
                    d,
                    k + 1,
                    GhostModel::new(d, k),
                    0.5,
                    ProtocolTiming::zero(),
                ))
            })
            .collect();
        let coord = CoordNode::Up(CoordinatorActor::new(
            k,
            FixedPlanner { select: cfg.select },
            Duration::ZERO,
            cfg.rounds,
            ProtocolTiming::zero(),
            Duration::ZERO,
        ));
        let crashes_left = cfg.crashes;
        World {
            cfg,
            devices,
            coord,
            channels: BTreeMap::new(),
            crashes_left,
            bytes_sent: 0,
            bytes_delivered: 0,
            bytes_sunk: 0,
        }
    }

    fn coord_id(&self) -> usize {
        coordinator_id(self.cfg.devices)
    }

    fn device_crashed(&self, d: usize) -> bool {
        matches!(self.devices.get(d), Some(DeviceNode::Crashed))
    }

    fn inbound_empty(&self, to: usize) -> bool {
        self.channels
            .iter()
            .all(|(&(_, t), q)| t != to || q.is_empty())
    }

    /// Has the run reached its intended outcome: every surviving device
    /// shut down, the coordinator done (or acceptably dead)?
    pub fn is_complete(&self) -> bool {
        let devices_done = self.devices.iter().all(|d| match d {
            DeviceNode::Up(a) => a.is_finished(),
            DeviceNode::Crashed => true,
        });
        let coord_done = match &self.coord {
            CoordNode::Up(c) => c.is_done(),
            CoordNode::Dead => self.cfg.allow_cluster_dead,
        };
        devices_done && coord_done
    }

    /// The oldest frame of a channel (trace annotation).
    pub fn peek(&self, from: usize, to: usize) -> Option<&Message> {
        self.channels.get(&(from, to)).and_then(VecDeque::front)
    }

    /// Every event the scheduler may fire in this state, in a
    /// deterministic order.
    ///
    /// The timer gates encode the production timescale separation
    /// (heartbeat ≪ handshake wait ≪ report deadline ≪ sync window):
    ///
    /// - a device's in-ring wait only elapses when nothing addressed to
    ///   it is still in flight, and an armed probe's deadline only
    ///   elapses unanswered when the suspect really is dead;
    /// - the coordinator's window only closes after the cluster went
    ///   quiet and no ring is still running;
    /// - the collect/final deadline only fires once everyone it is
    ///   still waiting for is dead — unless `aggressive_deadline`
    ///   explores the "device was merely slow" race;
    /// - deliveries to the coordinator are held while its window is
    ///   open (the blocking coordinator sleeps through the window;
    ///   frames wait in its mailbox).
    pub fn enabled_actions(&self) -> Vec<Action> {
        let coord_id = self.coord_id();
        let mut actions = Vec::new();

        for (&(from, to), queue) in &self.channels {
            if queue.is_empty() {
                continue;
            }
            let deliverable = if to == coord_id {
                match &self.coord {
                    CoordNode::Up(c) => c.phase_kind() != CoordPhaseKind::Window,
                    CoordNode::Dead => true, // drains to nowhere
                }
            } else {
                true // crashed devices' inbound was cleared at crash
            };
            if deliverable {
                actions.push(Action::Deliver { from, to });
            }
        }

        for d in 0..self.cfg.devices {
            let DeviceNode::Up(actor) = &self.devices[d] else {
                continue;
            };
            if actor.ring_round().is_none() || !self.inbound_empty(d) {
                continue;
            }
            match actor.probe_suspect() {
                Some(suspect) if !self.device_crashed(suspect) => {}
                _ => actions.push(Action::DeviceTimer { device: d }),
            }
        }

        if let CoordNode::Up(coord) = &self.coord {
            let enabled = match coord.phase_kind() {
                CoordPhaseKind::Window => {
                    (0..self.cfg.devices).all(|d| self.inbound_empty(d))
                        && self.devices.iter().all(|d| match d {
                            DeviceNode::Up(a) => a.ring_round().is_none(),
                            DeviceNode::Crashed => true,
                        })
                }
                CoordPhaseKind::Collect => {
                    self.cfg.aggressive_deadline
                        || (self.inbound_empty(coord_id)
                            && coord.awaiting().iter().all(|&d| self.device_crashed(d)))
                }
                CoordPhaseKind::Final => {
                    self.inbound_empty(coord_id)
                        && coord.awaiting().iter().all(|&d| self.device_crashed(d))
                }
                CoordPhaseKind::Done => false,
            };
            if enabled {
                actions.push(Action::CoordTimer);
            }
        }

        if self.crashes_left > 0 {
            for d in 0..self.cfg.devices {
                if let DeviceNode::Up(actor) = &self.devices[d] {
                    if !actor.is_finished() {
                        actions.push(Action::Crash { device: d });
                    }
                }
            }
        }

        actions
    }

    /// Executes one action and re-checks every safety invariant.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] the transition exposed, if any.
    pub fn apply(&mut self, action: &Action) -> Result<(), Violation> {
        let pre_done: Vec<Option<u32>> = self
            .devices
            .iter()
            .map(|d| match d {
                DeviceNode::Up(a) => Some(a.done_round()),
                DeviceNode::Crashed => None,
            })
            .collect();
        let pre_coord_round = match &self.coord {
            CoordNode::Up(c) => c.current_round(),
            CoordNode::Dead => None,
        };

        match action {
            Action::Deliver { from, to } => self.deliver(*from, *to)?,
            Action::DeviceTimer { device } => self.device_timer(*device)?,
            Action::CoordTimer => self.coord_timer()?,
            Action::Crash { device } => self.crash(*device),
        }

        self.check_rounds(&pre_done, pre_coord_round)?;
        self.check_frames()?;
        self.check_ledger()
    }

    fn deliver(&mut self, from: usize, to: usize) -> Result<(), Violation> {
        let Some(msg) = self
            .channels
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
        else {
            return Err(Violation::ProtocolError(format!(
                "schedule delivers on empty channel {from}->{to}"
            )));
        };
        let bytes = msg.encoded_len() as u64;
        if to == self.coord_id() {
            match &mut self.coord {
                CoordNode::Up(coord) => {
                    self.bytes_delivered += bytes;
                    let mut port = SimPort::new(to, self.cfg.devices + 1);
                    let result = coord.on_message(&mut port, msg, Duration::ZERO);
                    self.route(to, port.outbox);
                    self.coord_result(result)?;
                }
                CoordNode::Dead => self.bytes_sunk += bytes,
            }
        } else {
            match &mut self.devices[to] {
                DeviceNode::Up(actor) => {
                    self.bytes_delivered += bytes;
                    let mut port = SimPort::new(to, self.cfg.devices + 1);
                    let result = actor.on_message(&mut port, msg, Duration::ZERO);
                    self.route(to, port.outbox);
                    if let Err(e) = result {
                        return Err(Violation::ProtocolError(format!(
                            "device {to} failed handling a delivery: {e}"
                        )));
                    }
                }
                DeviceNode::Crashed => self.bytes_sunk += bytes,
            }
        }
        Ok(())
    }

    fn device_timer(&mut self, device: usize) -> Result<(), Violation> {
        let DeviceNode::Up(actor) = &mut self.devices[device] else {
            return Err(Violation::ProtocolError(format!(
                "schedule fires a timer on crashed device {device}"
            )));
        };
        let mut port = SimPort::new(device, self.cfg.devices + 1);
        let result = actor.on_timer(&mut port, Duration::ZERO);
        self.route(device, port.outbox);
        if let Err(e) = result {
            return Err(Violation::ProtocolError(format!(
                "device {device} failed its timer: {e}"
            )));
        }
        Ok(())
    }

    fn coord_timer(&mut self) -> Result<(), Violation> {
        let coord_id = self.coord_id();
        let CoordNode::Up(coord) = &mut self.coord else {
            return Err(Violation::ProtocolError(
                "schedule fires a timer on the dead coordinator".into(),
            ));
        };
        let mut port = SimPort::new(coord_id, self.cfg.devices + 1);
        let result = coord.on_timer(&mut port, Duration::ZERO);
        self.route(coord_id, port.outbox);
        self.coord_result(result)
    }

    fn coord_result(&mut self, result: Result<(), HadflError>) -> Result<(), Violation> {
        match result {
            Ok(()) => Ok(()),
            Err(HadflError::ClusterDead { round }) => {
                self.coord = CoordNode::Dead;
                if self.cfg.allow_cluster_dead {
                    Ok(())
                } else {
                    Err(Violation::ClusterDeath(format!(
                        "cluster fell below 2 devices in round {round}"
                    )))
                }
            }
            Err(e) => Err(Violation::ProtocolError(format!("coordinator failed: {e}"))),
        }
    }

    fn crash(&mut self, device: usize) {
        self.devices[device] = DeviceNode::Crashed;
        self.crashes_left -= 1;
        // Frames already in flight *from* the casualty were sent before
        // death and may still arrive; frames *to* it die with its
        // socket. (Crash-before-send interleavings cover the lost-
        // outbound cases.)
        for (&(_, to), queue) in self.channels.iter_mut() {
            if to == device {
                for msg in queue.drain(..) {
                    self.bytes_sunk += msg.encoded_len() as u64;
                }
            }
        }
    }

    /// Routes freshly emitted frames; sends to dead participants sink
    /// immediately (the transport reports such sends as errors and the
    /// protocol treats them as hints — §III-D handshakes decide).
    fn route(&mut self, from: usize, sends: Vec<(usize, Message)>) {
        let coord_id = self.coord_id();
        for (to, msg) in sends {
            let bytes = msg.encoded_len() as u64;
            self.bytes_sent += bytes;
            let target_up = if to == coord_id {
                matches!(self.coord, CoordNode::Up(_))
            } else {
                matches!(self.devices.get(to), Some(DeviceNode::Up(_)))
            };
            if target_up {
                self.channels.entry((from, to)).or_default().push_back(msg);
            } else {
                self.bytes_sunk += bytes;
            }
        }
    }

    fn check_rounds(
        &self,
        pre_done: &[Option<u32>],
        pre_coord_round: Option<usize>,
    ) -> Result<(), Violation> {
        for (d, pre) in pre_done.iter().enumerate() {
            let (Some(pre), DeviceNode::Up(actor)) = (pre, &self.devices[d]) else {
                continue;
            };
            if actor.done_round() < *pre {
                return Err(Violation::RoundRegression(format!(
                    "device {d} done_round fell {} -> {}",
                    pre,
                    actor.done_round()
                )));
            }
            if let Some(r) = actor.ring_round() {
                if r <= actor.done_round() {
                    return Err(Violation::RoundRegression(format!(
                        "device {d} re-entered ring round {r} (done {})",
                        actor.done_round()
                    )));
                }
            }
        }
        if let (Some(pre), CoordNode::Up(coord)) = (pre_coord_round, &self.coord) {
            if let Some(now) = coord.current_round() {
                if now < pre {
                    return Err(Violation::RoundRegression(format!(
                        "coordinator round fell {pre} -> {now}"
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_frames(&self) -> Result<(), Violation> {
        for (&(from, to), queue) in &self.channels {
            for msg in queue {
                self.check_frame(from, to, msg)?;
            }
        }
        Ok(())
    }

    /// The "counted exactly once" algebra over ghost basis vectors.
    fn check_frame(&self, from: usize, to: usize, msg: &Message) -> Result<(), Violation> {
        match msg {
            Message::ParamAccum {
                round,
                hops,
                params,
            } => {
                if params.iter().any(|&p| p != 0.0 && p != 1.0) {
                    return Err(Violation::AccumAlgebra(format!(
                        "accum {from}->{to} (round {round}) counts a member \
                         more than once: {params:?}"
                    )));
                }
                let sum: f32 = params.iter().sum();
                if sum != *hops as f32 || *hops == 0 || *hops as usize > self.cfg.devices {
                    return Err(Violation::AccumAlgebra(format!(
                        "accum {from}->{to} (round {round}) sums to {sum} \
                         but claims {hops} hops"
                    )));
                }
            }
            Message::MergedParams { round, params, .. } | Message::ParamSync { round, params } => {
                let nonzero: Vec<f32> = params.iter().copied().filter(|&p| p != 0.0).collect();
                let m = nonzero.len();
                let uniform = m > 0
                    && nonzero.iter().all(|&p| p.to_bits() == nonzero[0].to_bits())
                    && (nonzero[0] * m as f32 - 1.0).abs() < 1e-4;
                if !uniform {
                    return Err(Violation::MergedAlgebra(format!(
                        "merged model {from}->{to} (round {round}) is not a \
                         uniform average of distinct members: {params:?}"
                    )));
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn check_ledger(&self) -> Result<(), Violation> {
        let in_flight: u64 = self
            .channels
            .values()
            .flatten()
            .map(|m| m.encoded_len() as u64)
            .sum();
        if self.bytes_sent != self.bytes_delivered + self.bytes_sunk + in_flight {
            return Err(Violation::LedgerLeak(format!(
                "sent {} != delivered {} + sunk {} + in-flight {}",
                self.bytes_sent, self.bytes_delivered, self.bytes_sunk, in_flight
            )));
        }
        Ok(())
    }

    /// Canonical bytes identifying this state (the ledger counters are
    /// excluded; see the field comment).
    pub fn digest(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&(self.crashes_left as u64).to_le_bytes());
        for device in &self.devices {
            match device {
                DeviceNode::Up(actor) => {
                    out.push(1);
                    actor.digest_into(&mut out);
                }
                DeviceNode::Crashed => out.push(0),
            }
        }
        match &self.coord {
            CoordNode::Up(coord) => {
                out.push(1);
                coord.digest_into(&mut out);
            }
            CoordNode::Dead => out.push(0),
        }
        for (&(from, to), queue) in &self.channels {
            if queue.is_empty() {
                continue;
            }
            out.extend_from_slice(&(from as u64).to_le_bytes());
            out.extend_from_slice(&(to as u64).to_le_bytes());
            out.extend_from_slice(&(queue.len() as u64).to_le_bytes());
            for msg in queue {
                let frame = msg.encode();
                out.extend_from_slice(&(frame.len() as u64).to_le_bytes());
                out.extend_from_slice(&frame);
            }
        }
        out
    }

    /// A short human-readable participant name.
    pub fn endpoint_name(&self, id: usize) -> String {
        if id == self.coord_id() {
            "coord".into()
        } else {
            format!("dev{id}")
        }
    }
}

/// A one-line summary of a frame for trace printing.
pub fn describe_message(msg: &Message) -> String {
    match msg {
        Message::ParamSync { round, .. } => format!("ParamSync(round {round})"),
        Message::VersionReport { device, round, .. } => {
            format!("VersionReport(dev {device}, round {round})")
        }
        Message::Handshake { from } => format!("Handshake(from {from})"),
        Message::HandshakeAck { from } => format!("HandshakeAck(from {from})"),
        Message::BypassWarning { dead } => format!("BypassWarning(dead {dead})"),
        Message::TrainingConfig { .. } => "TrainingConfig".into(),
        Message::ParamAccum { round, hops, .. } => {
            format!("ParamAccum(round {round}, hops {hops})")
        }
        Message::MergedParams { round, ttl, .. } => {
            format!("MergedParams(round {round}, ttl {ttl})")
        }
        Message::RoundPlan { round, ring, .. } => {
            format!("RoundPlan(round {round}, ring {ring:?})")
        }
        Message::ReportRequest { round } => format!("ReportRequest(round {round})"),
        Message::Shutdown => "Shutdown".into(),
        Message::Heartbeat { from } => format!("Heartbeat(from {from})"),
        Message::Hello { from } => format!("Hello(from {from})"),
        Message::FinalParams { device, .. } => format!("FinalParams(dev {device})"),
        Message::TelemetryBatch { node, dropped, .. } => {
            format!("TelemetryBatch(node {node}, dropped {dropped})")
        }
    }
}
