//! Breadth-first exhaustive exploration with state deduplication,
//! counterexample traces, and graph-based liveness checking.

use std::collections::{HashMap, VecDeque};

use hadfl::HadflError;

use crate::model::{describe_message, Action, CheckConfig, Violation, World};

/// The outcome of exploring one [`CheckConfig`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct states discovered (after deduplication).
    pub states: usize,
    /// Transitions executed (including ones that led to known states).
    pub transitions: usize,
    /// Deepest BFS layer reached.
    pub max_depth: usize,
    /// Failure-quiescent states (no progress action enabled).
    pub terminals: usize,
    /// Exploration hit `max_states` or `max_depth` before closure; the
    /// liveness verdict is skipped when truncated.
    pub truncated: bool,
    /// The first violation found, with its schedule — `None` means
    /// every invariant held over the whole explored space.
    pub counterexample: Option<CounterExample>,
}

/// A violation plus the shortest action schedule reaching it (BFS
/// order makes the schedule minimal in length).
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// What broke.
    pub violation: Violation,
    /// The exact schedule to replay from [`World::new`].
    pub trace: Vec<Action>,
}

struct Node {
    world: World,
    parent: Option<(usize, Action)>,
    depth: usize,
}

fn trace_to(nodes: &[Node], mut i: usize) -> Vec<Action> {
    let mut trace = Vec::new();
    while let Some((parent, action)) = &nodes[i].parent {
        trace.push(action.clone());
        i = *parent;
    }
    trace.reverse();
    trace
}

/// Exhaustively explores every schedulable interleaving of `cfg`'s
/// cluster, checking the safety invariants on every transition and —
/// when the space closes without truncation — the liveness property
/// that every reachable state can still complete the run without
/// further failures.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for configs outside the
/// modeled bounds; violations are reported in the [`Report`], not as
/// errors.
pub fn explore(cfg: &CheckConfig) -> Result<Report, HadflError> {
    cfg.validate()?;
    let mut nodes = vec![Node {
        world: World::new(cfg.clone()),
        parent: None,
        depth: 0,
    }];
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    index.insert(nodes[0].world.digest(), 0);
    let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new()];
    let mut queue = VecDeque::from([0usize]);

    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut max_depth = 0usize;
    let mut truncated = false;

    let partial = |nodes: &Vec<Node>, transitions, terminals, max_depth, ce| Report {
        states: nodes.len(),
        transitions,
        max_depth,
        terminals,
        truncated: false,
        counterexample: Some(ce),
    };

    while let Some(i) = queue.pop_front() {
        let actions = nodes[i].world.enabled_actions();
        if actions.iter().all(Action::is_crash) {
            terminals += 1;
            if !nodes[i].world.is_complete() {
                let ce = CounterExample {
                    violation: Violation::Stranded(
                        "nothing can run, yet the cluster never shut down".into(),
                    ),
                    trace: trace_to(&nodes, i),
                };
                return Ok(partial(&nodes, transitions, terminals, max_depth, ce));
            }
        }
        for action in actions {
            transitions += 1;
            let mut world = nodes[i].world.clone();
            if let Err(violation) = world.apply(&action) {
                let mut trace = trace_to(&nodes, i);
                trace.push(action);
                let ce = CounterExample { violation, trace };
                return Ok(partial(&nodes, transitions, terminals, max_depth, ce));
            }
            let digest = world.digest();
            let target = match index.get(&digest) {
                Some(&known) => known,
                None => {
                    let depth = nodes[i].depth + 1;
                    if nodes.len() >= cfg.max_states
                        || cfg.max_depth.is_some_and(|bound| depth > bound)
                    {
                        truncated = true;
                        continue;
                    }
                    let fresh = nodes.len();
                    index.insert(digest, fresh);
                    nodes.push(Node {
                        world,
                        parent: Some((i, action.clone())),
                        depth,
                    });
                    edges.push(Vec::new());
                    max_depth = max_depth.max(depth);
                    queue.push_back(fresh);
                    fresh
                }
            };
            edges[i].push((target, action.is_crash()));
        }
    }

    // Liveness: every state must be able to reach a completed run
    // following only progress (non-crash) edges. A closed cycle that
    // cannot — e.g. an endless probe/ack exchange around a lost frame
    // — is a livelock even though no state is a deadlock.
    let counterexample = if truncated {
        None
    } else {
        let complete: Vec<usize> = (0..nodes.len())
            .filter(|&i| nodes[i].world.is_complete())
            .collect();
        if complete.is_empty() {
            let witness = (0..nodes.len())
                .max_by_key(|&i| nodes[i].depth)
                .unwrap_or(0);
            Some(CounterExample {
                violation: Violation::Livelock("no reachable state completes the run".into()),
                trace: trace_to(&nodes, witness),
            })
        } else {
            let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
            for (from, out) in edges.iter().enumerate() {
                for &(to, is_crash) in out {
                    if !is_crash {
                        reverse[to].push(from);
                    }
                }
            }
            let mut can_finish = vec![false; nodes.len()];
            let mut back = VecDeque::new();
            for &g in &complete {
                can_finish[g] = true;
                back.push_back(g);
            }
            while let Some(x) = back.pop_front() {
                for &p in &reverse[x] {
                    if !can_finish[p] {
                        can_finish[p] = true;
                        back.push_back(p);
                    }
                }
            }
            (0..nodes.len())
                .filter(|&i| !can_finish[i])
                .min_by_key(|&i| nodes[i].depth)
                .map(|stuck| CounterExample {
                    violation: Violation::Livelock(format!(
                        "state at depth {} can never complete the run, even \
                         failure-free from here on",
                        nodes[stuck].depth
                    )),
                    trace: trace_to(&nodes, stuck),
                })
        }
    };

    Ok(Report {
        states: nodes.len(),
        transitions,
        max_depth,
        terminals,
        truncated,
        counterexample,
    })
}

/// Deterministically re-executes a counterexample schedule from the
/// initial state — a printed trace doubles as a regression test.
///
/// # Errors
///
/// Returns the [`Violation`] the schedule provokes (for safety
/// counterexamples, the expected outcome), or a `protocol-error`
/// violation if the schedule fires an action that is not enabled.
pub fn replay(cfg: &CheckConfig, trace: &[Action]) -> Result<World, Violation> {
    let mut world = World::new(cfg.clone());
    for action in trace {
        if !world.enabled_actions().contains(action) {
            return Err(Violation::ProtocolError(format!(
                "replayed action `{action}` is not enabled at this point"
            )));
        }
        world.apply(action)?;
    }
    Ok(world)
}

/// Renders a schedule with message annotations by replaying it.
pub fn format_trace(cfg: &CheckConfig, trace: &[Action]) -> String {
    let mut world = World::new(cfg.clone());
    let mut out = String::new();
    for (i, action) in trace.iter().enumerate() {
        let line = match action {
            Action::Deliver { from, to } => format!(
                "{} -> {}: {}",
                world.endpoint_name(*from),
                world.endpoint_name(*to),
                world
                    .peek(*from, *to)
                    .map_or_else(|| "<empty channel>".into(), describe_message),
            ),
            Action::DeviceTimer { device } => {
                format!("timer fires at {}", world.endpoint_name(*device))
            }
            Action::CoordTimer => "timer fires at coord".into(),
            Action::Crash { device } => format!("{} crashes", world.endpoint_name(*device)),
        };
        out.push_str(&format!("  {:>3}. {line}\n", i + 1));
        if let Err(violation) = world.apply(action) {
            out.push_str(&format!("       ^ violation fires here: {violation}\n"));
            break;
        }
    }
    out
}
