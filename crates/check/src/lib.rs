//! # hadfl-check — explicit-state model checking of the §III-D protocol
//!
//! PR 1's review caught three interleaving bugs in the ring protocol by
//! hand: ring frames overtaking their `RoundPlan`, a double-counted
//! `ParamAccum` after a bypass re-send, and dropped-but-running devices
//! never receiving `Shutdown`. This crate makes that class of bug
//! machine-findable: it drives the **real** [`hadfl::exec::DeviceActor`]
//! and [`hadfl::exec::CoordinatorActor`] state machines — the same code
//! the TCP cluster runs — through a controlled scheduler and explores
//! *every* reachable interleaving of message deliveries, timer firings,
//! and peer deaths for small clusters (2–4 devices), breadth-first with
//! state-hash deduplication.
//!
//! Time is virtual: the actors take `now` as a parameter (see
//! [`hadfl::clock`]), and the checker runs them with
//! [`hadfl::exec::ProtocolTiming::zero`] at `now == 0`, which turns
//! every timeout into an explicitly scheduled event. Scheduling of those
//! events is *gated* to model the production timescale separation
//! (heartbeat ≪ handshake ≪ report deadline ≪ sync window); see
//! [`model::World::enabled_actions`].
//!
//! ## Checked invariants
//!
//! - **Counted exactly once** — every in-flight `ParamAccum` over the
//!   ghost model's basis vectors has entries in {0, 1} and sums to its
//!   `hops` tag; every in-flight `MergedParams` is the uniform average
//!   of distinct members.
//! - **Round monotonicity** — device `done_round` and the coordinator
//!   round never regress, and a device never syncs a ring round twice.
//! - **Ledger conservation** — payload bytes sent == delivered + sunk
//!   (to dead peers) + in flight, after every transition.
//! - **No unexpected protocol errors** — actor errors other than an
//!   allowed `ClusterDead` are violations.
//! - **Liveness** — from every reachable state, the cluster can still
//!   reach "all surviving devices shut down" without further failures
//!   (checked by reverse reachability over the explored graph, so
//!   probe/ack cycles are livelocks, not false passes).
//!
//! On violation the checker reports the shortest action schedule that
//! reaches the bad state; [`explore::replay`] re-executes a schedule
//! deterministically so a counterexample doubles as a regression test.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p hadfl-check --release             # standard battery
//! cargo test -p hadfl-check                      # battery as tests
//! cargo test -p hadfl-check --features seeded-bugs  # + bug rediscovery
//! ```

pub mod explore;
pub mod model;

pub use explore::{explore, replay, CounterExample, Report};
pub use model::{Action, CheckConfig, Violation, World};

/// The standard battery `cargo run -p hadfl-check` (and CI) explores:
/// every topology shape the protocol distinguishes at small scale —
/// minimal ring, multi-round, full ring, ring + broadcast audience, a
/// mid-round death, and deadline/report races.
pub fn standard_battery() -> Vec<(&'static str, CheckConfig)> {
    vec![
        (
            "2 devices, minimal ring",
            CheckConfig {
                devices: 2,
                select: 2,
                rounds: 1,
                ..CheckConfig::default()
            },
        ),
        (
            "2 devices, 2 rounds",
            CheckConfig {
                devices: 2,
                select: 2,
                rounds: 2,
                ..CheckConfig::default()
            },
        ),
        (
            "3 devices, full ring",
            CheckConfig {
                devices: 3,
                select: 3,
                rounds: 1,
                ..CheckConfig::default()
            },
        ),
        (
            "3 devices, ring of 2 + broadcast",
            CheckConfig {
                devices: 3,
                select: 2,
                rounds: 1,
                ..CheckConfig::default()
            },
        ),
        (
            "3 devices, one mid-round crash",
            // Two rounds so a death inside round 1's ring is detected,
            // bypassed, and the survivors still finish round 2 (in a
            // final round the trailing Shutdown would mask the bypass).
            CheckConfig {
                devices: 3,
                select: 3,
                rounds: 2,
                crashes: 1,
                ..CheckConfig::default()
            },
        ),
        (
            "3 devices, aggressive deadlines",
            CheckConfig {
                devices: 3,
                select: 2,
                rounds: 1,
                aggressive_deadline: true,
                allow_cluster_dead: true,
                ..CheckConfig::default()
            },
        ),
    ]
}
