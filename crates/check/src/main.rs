//! CLI for the HADFL protocol model checker.
//!
//! ```text
//! hadfl-check                        # standard battery
//! hadfl-check --devices 3 --select 2 --rounds 1 --crashes 1
//! hadfl-check --seed-bug a           # rediscover a seeded PR-1 bug
//! ```
//!
//! Exit codes: 0 — all invariants held (or the seeded bug was
//! rediscovered); 1 — a violation was found; 2 — usage error.

use std::process::ExitCode;

use hadfl_check::explore::format_trace;
use hadfl_check::{explore, standard_battery, CheckConfig, Report};

const USAGE: &str = "\
hadfl-check: exhaustive model checking of the HADFL ring protocol

USAGE:
    hadfl-check [OPTIONS]

With no options, runs the standard battery of configurations.

OPTIONS:
    --devices <N>         cluster size, 2-4 (single-config run)
    --rounds <N>          synchronization rounds          [default: 1]
    --select <N>          ring size per round             [default: devices]
    --crashes <N>         max crash events to inject      [default: 0]
    --aggressive          let deadlines race in-flight reports
    --allow-cluster-dead  accept a < 2-device cluster death
    --depth <N>           BFS depth bound (default: explore to closure)
    --max-states <N>      state cap                       [default: 1000000]
    --seed-bug <a|b|c>    rediscover a seeded PR-1 bug (needs the
                          `seeded-bugs` feature): a = dropped early ring
                          frames, b = double-counted re-send, c = shutdown
                          sent to alive devices only
    --help                this text
";

struct Cli {
    config: Option<CheckConfig>,
    seed_bug: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut devices: Option<usize> = None;
    let mut rounds: Option<usize> = None;
    let mut select: Option<usize> = None;
    let mut crashes: Option<usize> = None;
    let mut aggressive = false;
    let mut allow_cluster_dead = false;
    let mut depth: Option<usize> = None;
    let mut max_states: Option<usize> = None;
    let mut seed_bug: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--devices" => devices = Some(take("--devices")?),
            "--rounds" => rounds = Some(take("--rounds")?),
            "--select" => select = Some(take("--select")?),
            "--crashes" => crashes = Some(take("--crashes")?),
            "--depth" => depth = Some(take("--depth")?),
            "--max-states" => max_states = Some(take("--max-states")?),
            "--aggressive" => aggressive = true,
            "--allow-cluster-dead" => allow_cluster_dead = true,
            "--seed-bug" => {
                seed_bug = Some(args.next().ok_or("--seed-bug needs a|b|c".to_string())?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let custom = devices.is_some()
        || rounds.is_some()
        || select.is_some()
        || crashes.is_some()
        || aggressive
        || allow_cluster_dead
        || depth.is_some();
    let config = custom.then(|| {
        let devices = devices.unwrap_or(3);
        CheckConfig {
            devices,
            rounds: rounds.unwrap_or(1),
            select: select.unwrap_or(devices),
            crashes: crashes.unwrap_or(0),
            aggressive_deadline: aggressive,
            allow_cluster_dead,
            max_states: max_states.unwrap_or(1_000_000),
            max_depth: depth,
        }
    });
    Ok(Cli { config, seed_bug })
}

fn describe(cfg: &CheckConfig) -> String {
    format!(
        "{} devices, ring {}, {} round(s), {} crash(es){}{}",
        cfg.devices,
        cfg.select,
        cfg.rounds,
        cfg.crashes,
        if cfg.aggressive_deadline {
            ", aggressive deadlines"
        } else {
            ""
        },
        if cfg.allow_cluster_dead {
            ", cluster death tolerated"
        } else {
            ""
        },
    )
}

/// Runs one config; returns whether a violation was found.
fn run_one(name: &str, cfg: &CheckConfig) -> Result<bool, String> {
    let report: Report = explore(cfg).map_err(|e| e.to_string())?;
    match &report.counterexample {
        None => {
            println!(
                "  ok: {name} — {} states, {} transitions, depth {}, {} terminal(s){}",
                report.states,
                report.transitions,
                report.max_depth,
                report.terminals,
                if report.truncated {
                    " [TRUNCATED: liveness not verified]"
                } else {
                    ""
                },
            );
            Ok(false)
        }
        Some(ce) => {
            println!(
                "  VIOLATION: {name} — {} (after {} states)",
                ce.violation, report.states
            );
            println!("  counterexample ({} steps):", ce.trace.len());
            print!("{}", format_trace(cfg, &ce.trace));
            Ok(true)
        }
    }
}

#[cfg(feature = "seeded-bugs")]
fn run_seeded(which: &str) -> ExitCode {
    use hadfl::exec::seeded;
    let (label, cfg) = match which {
        "a" => (
            "bug A: early ring frames dropped instead of backlogged",
            // Two rounds: in the final round a trailing Shutdown would
            // rescue a stalled ring, masking the livelock.
            CheckConfig {
                devices: 2,
                select: 2,
                rounds: 2,
                ..CheckConfig::default()
            },
        ),
        "b" => (
            "bug B: bypass re-send counted twice",
            // Two rounds: a non-final ring is the only place a member
            // can go quiet long enough to detect a death and bypass it
            // (in the final round the pending Shutdown keeps every
            // member's inbox non-empty, so probes never arm).
            CheckConfig {
                devices: 3,
                select: 3,
                rounds: 2,
                crashes: 1,
                ..CheckConfig::default()
            },
        ),
        "c" => (
            "bug C: shutdown sent to alive devices only",
            CheckConfig {
                devices: 3,
                select: 2,
                rounds: 1,
                aggressive_deadline: true,
                allow_cluster_dead: true,
                ..CheckConfig::default()
            },
        ),
        other => {
            eprintln!("unknown seeded bug `{other}` (expected a, b, or c)");
            return ExitCode::from(2);
        }
    };
    seeded::reset();
    match which {
        "a" => seeded::set_drop_early_ring_frames(true),
        "b" => seeded::set_double_count_on_resend(true),
        _ => seeded::set_shutdown_alive_only(true),
    }
    println!("seeding: {label}");
    println!("config:  {}", describe(&cfg));
    let result = explore(&cfg);
    seeded::reset();
    match result {
        Ok(report) => match report.counterexample {
            Some(ce) => {
                println!(
                    "rediscovered as `{}` after exploring {} states:",
                    ce.violation.kind(),
                    report.states
                );
                println!("{}", ce.violation);
                println!("counterexample ({} steps):", ce.trace.len());
                print!("{}", format_trace(&cfg, &ce.trace));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "seeded bug NOT rediscovered ({} states explored)",
                    report.states
                );
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(not(feature = "seeded-bugs"))]
fn run_seeded(_which: &str) -> ExitCode {
    eprintln!(
        "--seed-bug needs the seeded bugs compiled in:\n    \
         cargo run -p hadfl-check --features seeded-bugs -- --seed-bug a"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(which) = &cli.seed_bug {
        return run_seeded(which);
    }

    let runs: Vec<(String, CheckConfig)> = match cli.config {
        Some(cfg) => vec![(describe(&cfg), cfg)],
        None => standard_battery()
            .into_iter()
            .map(|(name, cfg)| (name.to_string(), cfg))
            .collect(),
    };

    println!("hadfl-check: exploring {} configuration(s)", runs.len());
    let mut failed = false;
    for (name, cfg) in &runs {
        match run_one(name, cfg) {
            Ok(violated) => failed |= violated,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all invariants held across every explored interleaving");
        ExitCode::SUCCESS
    }
}
