//! The standard battery as tests: every configuration must close its
//! state space with no violation, and exploration must be
//! deterministic (the digest-keyed BFS has no ambient entropy).

use hadfl_check::{explore, standard_battery};

#[test]
fn standard_battery_holds_every_invariant() {
    for (name, cfg) in standard_battery() {
        let report = explore(&cfg).expect("battery configs are valid");
        assert!(
            report.counterexample.is_none(),
            "{name}: violation {:?}",
            report.counterexample
        );
        assert!(
            !report.truncated,
            "{name}: must explore to closure so liveness is checked"
        );
        assert!(report.states > 1, "{name}: exploration went nowhere");
        assert!(
            report.terminals > 0,
            "{name}: no quiescent state — the run never completed"
        );
    }
}

#[test]
fn exploration_is_deterministic() {
    for (name, cfg) in standard_battery() {
        let a = explore(&cfg).expect("valid config");
        let b = explore(&cfg).expect("valid config");
        assert_eq!(a.states, b.states, "{name}: state count diverged");
        assert_eq!(
            a.transitions, b.transitions,
            "{name}: transition count diverged"
        );
        assert_eq!(a.max_depth, b.max_depth, "{name}: depth diverged");
    }
}

#[test]
fn depth_bound_truncates_and_reports_it() {
    let (_, mut cfg) = standard_battery().remove(2);
    cfg.max_depth = Some(3);
    let report = explore(&cfg).expect("valid config");
    assert!(report.truncated, "a depth bound of 3 cannot reach closure");
    assert!(
        report.counterexample.is_none(),
        "truncated exploration must not fabricate a liveness verdict"
    );
}

#[test]
fn invalid_configs_are_rejected() {
    let (_, mut cfg) = standard_battery().remove(0);
    cfg.devices = 1;
    assert!(explore(&cfg).is_err(), "1 device cannot form a ring");
    let (_, mut cfg) = standard_battery().remove(0);
    cfg.select = 1;
    assert!(explore(&cfg).is_err(), "ring of 1 is not a ring");
    let (_, mut cfg) = standard_battery().remove(0);
    cfg.devices = 5;
    assert!(explore(&cfg).is_err(), "beyond the modeled 2-4 devices");
}
