//! The checker must rediscover the three PR-1 review bugs when they
//! are compiled back in (`--features seeded-bugs`) — and each printed
//! counterexample must actually replay to the violation it claims.
//!
//! The seams are process-global toggles, so these tests serialize on a
//! mutex and reset the flags on every exit path.
#![cfg(feature = "seeded-bugs")]

use std::sync::Mutex;

use hadfl::exec::seeded;
use hadfl_check::{explore, replay, Action, CheckConfig, CounterExample};

static FLAGS: Mutex<()> = Mutex::new(());

/// Resets the seams even if the test panics mid-way.
struct FlagGuard;
impl Drop for FlagGuard {
    fn drop(&mut self) {
        seeded::reset();
    }
}

fn rediscover(cfg: &CheckConfig, arm: impl FnOnce()) -> CounterExample {
    let _serial = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FlagGuard;
    seeded::reset();
    arm();
    let report = explore(cfg).expect("seeded configs are valid");
    report
        .counterexample
        .expect("the seeded bug must be rediscovered")
}

#[test]
fn bug_a_dropped_early_frames_is_a_livelock() {
    // Two rounds: in the final round the trailing Shutdown would
    // rescue the stalled ring and mask the bug.
    let cfg = CheckConfig {
        devices: 2,
        select: 2,
        rounds: 2,
        ..CheckConfig::default()
    };
    let ce = rediscover(&cfg, || seeded::set_drop_early_ring_frames(true));
    assert_eq!(ce.violation.kind(), "livelock");

    // The schedule must replay onto a state that cannot complete.
    let _serial = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FlagGuard;
    seeded::set_drop_early_ring_frames(true);
    let world = replay(&cfg, &ce.trace).expect("livelock traces replay cleanly");
    assert!(!world.is_complete(), "trace must end short of completion");
}

#[test]
fn bug_b_double_counted_resend_breaks_the_algebra() {
    // Two rounds: only a non-final ring goes quiet enough for the
    // death probe to arm (a pending Shutdown keeps inboxes busy).
    let cfg = CheckConfig {
        devices: 3,
        select: 3,
        rounds: 2,
        crashes: 1,
        ..CheckConfig::default()
    };
    let ce = rediscover(&cfg, || seeded::set_double_count_on_resend(true));
    assert!(
        matches!(ce.violation.kind(), "merged-algebra" | "accum-algebra"),
        "double counting must surface in the aggregation algebra, got {}",
        ce.violation.kind()
    );

    // Replaying the schedule must provoke the same class of violation.
    let _serial = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FlagGuard;
    seeded::set_double_count_on_resend(true);
    let verdict = replay(&cfg, &ce.trace);
    let violation = verdict.expect_err("safety trace must replay to its violation");
    assert_eq!(violation.kind(), ce.violation.kind());
}

#[test]
fn bug_c_partial_shutdown_strands_devices() {
    let cfg = CheckConfig {
        devices: 3,
        select: 2,
        rounds: 1,
        aggressive_deadline: true,
        allow_cluster_dead: true,
        ..CheckConfig::default()
    };
    let ce = rediscover(&cfg, || seeded::set_shutdown_alive_only(true));
    assert_eq!(ce.violation.kind(), "stranded");

    // The replayed end state is quiescent yet unfinished: the dropped
    // device never received its Shutdown.
    let _serial = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FlagGuard;
    seeded::set_shutdown_alive_only(true);
    let world = replay(&cfg, &ce.trace).expect("stranded traces replay cleanly");
    assert!(!world.is_complete());
    assert!(
        world.enabled_actions().iter().all(Action::is_crash),
        "nothing but failures can run from the stranded state"
    );
}

#[test]
fn seams_default_off_leaves_the_battery_clean() {
    let _serial = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    seeded::reset();
    for (name, cfg) in hadfl_check::standard_battery() {
        let report = explore(&cfg).expect("battery configs are valid");
        assert!(
            report.counterexample.is_none(),
            "{name}: seams off must behave exactly like main"
        );
    }
}
