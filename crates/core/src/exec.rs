//! Threaded executor: HADFL over real OS threads and channels.
//!
//! The virtual-time [`crate::driver`] is what the experiments use; this
//! module runs the same protocol with *actual concurrency*, the way the
//! paper deploys it — one thread per device, heterogeneity emulated with
//! `sleep()` (exactly the paper's method), parameters moving as encoded
//! [`crate::wire::Message`] frames over crossbeam channels, and the
//! ring reduce/distribute executed hop by hop between device threads.
//! The coordinator thread only ever sees control-plane messages.
//!
//! Fault injection is a virtual-time-only feature; the threaded executor
//! assumes live devices (a networked deployment would reuse the §III-D
//! handshake messages already defined in [`crate::wire`]).

use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hadfl_nn::LrSchedule;
use parking_lot::Mutex;

use crate::aggregate::blend_params;
use crate::config::HadflConfig;
use crate::coordinator::StrategyGenerator;
use crate::error::HadflError;
use crate::wire::Message;
use crate::workload::Workload;
use hadfl_simnet::DeviceId;

/// Options of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOptions {
    /// Computing-power ratios, one device thread per entry.
    pub powers: Vec<f64>,
    /// Emulated compute time per local step on a power-1 device (the
    /// paper's `sleep()`); device `i` sleeps `step_sleep / powers[i]`.
    pub step_sleep: Duration,
    /// Wall-clock synchronization window.
    pub window: Duration,
    /// Number of synchronization rounds to run.
    pub rounds: usize,
}

impl ThreadedOptions {
    /// CI-scale options: short sleeps, a few windows.
    pub fn quick(powers: &[f64]) -> Self {
        ThreadedOptions {
            powers: powers.to_vec(),
            step_sleep: Duration::from_millis(4),
            window: Duration::from_millis(60),
            rounds: 3,
        }
    }
}

/// One synchronization round of a threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRound {
    /// Round index from 1.
    pub round: usize,
    /// Cumulative local steps per device at sync time.
    pub versions: Vec<u64>,
    /// Devices selected for the ring.
    pub selected: Vec<usize>,
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Per-round records.
    pub rounds: Vec<ThreadedRound>,
    /// Test accuracy of the post-run consensus (average of all device
    /// models).
    pub final_accuracy: f32,
    /// Total bytes moved between device threads (encoded frames).
    pub peer_bytes: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

/// Commands on a device thread's channel.
enum Cmd {
    /// An encoded wire frame from a peer device.
    Frame(Bytes),
    /// Coordinator: report your version for `round`.
    Report(usize),
    /// Coordinator: execute this round plan.
    Plan {
        ring: Vec<usize>,
        broadcaster: usize,
        unselected: Vec<usize>,
    },
    /// Coordinator: training is over.
    Stop,
}

/// Runs HADFL over real threads. See the module docs.
///
/// # Errors
///
/// Returns configuration/substrate errors from setup, and
/// [`HadflError::InvalidConfig`] if a device thread fails mid-protocol
/// (e.g. a peer disappeared, which cannot happen without fault
/// injection).
///
/// # Example
///
/// ```no_run
/// use hadfl::exec::{run_threaded, ThreadedOptions};
/// use hadfl::{HadflConfig, Workload};
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let report = run_threaded(
///     &Workload::quick("mlp", 0),
///     &HadflConfig::builder().build()?,
///     &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
/// )?;
/// println!("consensus accuracy {:.3}", report.final_accuracy);
/// # Ok(())
/// # }
/// ```
pub fn run_threaded(
    workload: &Workload,
    config: &HadflConfig,
    opts: &ThreadedOptions,
) -> Result<ThreadedReport, HadflError> {
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    if opts.rounds == 0 {
        return Err(HadflError::InvalidConfig("need at least 1 round".into()));
    }
    if opts.powers.iter().any(|&p| !(p > 0.0) || !p.is_finite()) {
        return Err(HadflError::InvalidConfig(format!("bad powers {:?}", opts.powers)));
    }
    let built = workload.build(k)?;
    let start = Instant::now();

    // Channel mesh: every participant can reach every device; devices
    // report to the coordinator over one shared channel.
    let mut device_txs: Vec<Sender<Cmd>> = Vec::with_capacity(k);
    let mut device_rxs: Vec<Option<Receiver<Cmd>>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = unbounded();
        device_txs.push(tx);
        device_rxs.push(Some(rx));
    }
    let (report_tx, report_rx) = unbounded::<Message>();
    let peer_bytes = Mutex::new(0u64);

    let mut rounds_log: Vec<ThreadedRound> = Vec::with_capacity(opts.rounds);
    let mut final_models: Vec<Vec<f32>> = Vec::new();
    let mut runtimes: Vec<_> = built.runtimes.into_iter().collect();

    thread::scope(|scope| -> Result<(), HadflError> {
        // --- Device threads. ---
        let mut handles = Vec::with_capacity(k);
        for (i, mut rt) in runtimes.drain(..).enumerate() {
            let rx = device_rxs[i].take().expect("each receiver moved once");
            let txs = device_txs.clone();
            let report_tx = report_tx.clone();
            let peer_bytes = &peer_bytes;
            let sleep = Duration::from_secs_f64(
                opts.step_sleep.as_secs_f64() / opts.powers[i],
            );
            let (lr, momentum, beta) = (config.lr, config.momentum, config.blend_beta);
            handles.push(scope.spawn(move || -> Result<Vec<f32>, HadflError> {
                rt.set_optimizer(LrSchedule::constant(lr), momentum);
                let send_frame = |to: usize, msg: &Message| {
                    let frame = msg.encode();
                    *peer_bytes.lock() += frame.len() as u64;
                    // A closed peer channel means the run is tearing down.
                    let _ = txs[to].send(Cmd::Frame(frame));
                };
                loop {
                    // Drain pending commands without blocking, then train.
                    match rx.try_recv() {
                        Ok(Cmd::Stop) => return Ok(rt.model.param_vector()),
                        Ok(Cmd::Report(round)) => {
                            let _ = report_tx.send(Message::VersionReport {
                                device: i as u32,
                                round: round as u32,
                                version: rt.steps_done as f64,
                            });
                        }
                        Ok(Cmd::Plan { ring, broadcaster, unselected }) => {
                            // Selected device: run the blocking ring
                            // reduce/distribute.
                            let pos = ring
                                .iter()
                                .position(|&d| d == i)
                                .expect("plan sent to ring members only");
                            let n = ring.len();
                            let downstream = ring[(pos + 1) % n];
                            if pos == 0 {
                                send_frame(
                                    downstream,
                                    &Message::ParamAccum {
                                        hops: 1,
                                        params: rt.model.param_vector(),
                                    },
                                );
                            }
                            // Block until the merge completes for us.
                            loop {
                                match rx.recv_timeout(Duration::from_secs(10)) {
                                    Ok(Cmd::Frame(frame)) => {
                                        match Message::decode(&frame)? {
                                            Message::ParamAccum { hops, mut params } => {
                                                let mine = rt.model.param_vector();
                                                for (a, m) in params.iter_mut().zip(&mine) {
                                                    *a += m;
                                                }
                                                let hops = hops + 1;
                                                if hops as usize == n {
                                                    let scale = 1.0 / n as f32;
                                                    for a in &mut params {
                                                        *a *= scale;
                                                    }
                                                    rt.model.set_param_vector(&params)?;
                                                    if n > 1 {
                                                        send_frame(
                                                            downstream,
                                                            &Message::MergedParams {
                                                                ttl: (n - 1) as u32,
                                                                params: params.clone(),
                                                            },
                                                        );
                                                    }
                                                    if broadcaster == i {
                                                        for &u in &unselected {
                                                            send_frame(
                                                                u,
                                                                &Message::ParamSync {
                                                                    round: 0,
                                                                    params: params.clone(),
                                                                },
                                                            );
                                                        }
                                                    }
                                                    break;
                                                }
                                                send_frame(
                                                    downstream,
                                                    &Message::ParamAccum { hops, params },
                                                );
                                            }
                                            Message::MergedParams { ttl, params } => {
                                                rt.model.set_param_vector(&params)?;
                                                if ttl > 1 {
                                                    send_frame(
                                                        downstream,
                                                        &Message::MergedParams {
                                                            ttl: ttl - 1,
                                                            params: params.clone(),
                                                        },
                                                    );
                                                }
                                                if broadcaster == i {
                                                    for &u in &unselected {
                                                        send_frame(
                                                            u,
                                                            &Message::ParamSync {
                                                                round: 0,
                                                                params: params.clone(),
                                                            },
                                                        );
                                                    }
                                                }
                                                break;
                                            }
                                            other => {
                                                return Err(HadflError::InvalidConfig(
                                                    format!("unexpected frame in ring: {other:?}"),
                                                ))
                                            }
                                        }
                                    }
                                    Ok(Cmd::Stop) => return Ok(rt.model.param_vector()),
                                    Ok(_) => {}
                                    Err(_) => {
                                        return Err(HadflError::InvalidConfig(
                                            "ring peer timed out".into(),
                                        ))
                                    }
                                }
                            }
                        }
                        Ok(Cmd::Frame(frame)) => {
                            // Unselected device receiving the broadcast:
                            // blend non-blockingly and keep training.
                            if let Message::ParamSync { params, .. } = Message::decode(&frame)? {
                                let mut local = rt.model.param_vector();
                                blend_params(&mut local, &params, beta)?;
                                rt.model.set_param_vector(&local)?;
                            }
                        }
                        Err(_) => {
                            // No command: one heterogeneity-aware local step.
                            rt.train_steps(1)?;
                            thread::sleep(sleep);
                        }
                    }
                }
            }));
        }

        // --- Coordinator (this thread). ---
        let mut generator = StrategyGenerator::new(config);
        let all: Vec<DeviceId> = (0..k).map(DeviceId).collect();
        for round in 1..=opts.rounds {
            thread::sleep(opts.window);
            for tx in &device_txs {
                let _ = tx.send(Cmd::Report(round));
            }
            let mut versions = vec![0.0f64; k];
            let mut got = 0;
            while got < k {
                match report_rx.recv_timeout(Duration::from_secs(10)) {
                    Ok(Message::VersionReport { device, version, .. }) => {
                        versions[device as usize] = version;
                        got += 1;
                    }
                    Ok(_) => {}
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                        return Err(HadflError::InvalidConfig(
                            "device thread stopped reporting".into(),
                        ))
                    }
                }
            }
            let plan = generator.plan_round(&all, &versions)?;
            let ring: Vec<usize> = plan.ring.members().iter().map(|d| d.index()).collect();
            let unselected: Vec<usize> = plan.unselected.iter().map(|d| d.index()).collect();
            for &member in &ring {
                let _ = device_txs[member].send(Cmd::Plan {
                    ring: ring.clone(),
                    broadcaster: plan.broadcaster.index(),
                    unselected: unselected.clone(),
                });
            }
            rounds_log.push(ThreadedRound {
                round,
                versions: versions.iter().map(|&v| v as u64).collect(),
                selected: plan.selected.iter().map(|d| d.index()).collect(),
            });
        }
        for tx in &device_txs {
            let _ = tx.send(Cmd::Stop);
        }
        for handle in handles {
            let params = handle.join().map_err(|_| {
                HadflError::InvalidConfig("device thread panicked".into())
            })??;
            final_models.push(params);
        }
        Ok(())
    })?;

    // Consensus evaluation: average every device's final model.
    let refs: Vec<&[f32]> = final_models.iter().map(Vec::as_slice).collect();
    let consensus = crate::aggregate::average_params(&refs)?;
    let mut built_eval = workload.build(k)?;
    let metrics = built_eval.evaluate_params(&consensus)?;

    let moved = *peer_bytes.lock();
    Ok(ThreadedReport {
        rounds: rounds_log,
        final_accuracy: metrics.accuracy,
        peer_bytes: moved,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> HadflConfig {
        HadflConfig::builder().num_selected(2).seed(seed).build().unwrap()
    }

    #[test]
    fn threaded_run_completes_all_rounds() {
        let report = run_threaded(
            &Workload::quick("mlp", 61),
            &quick_config(61),
            &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
        )
        .unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.final_accuracy.is_finite());
        assert!(report.peer_bytes > 0, "parameters must have moved between threads");
        assert!(report.wall >= Duration::from_millis(3 * 60));
    }

    #[test]
    fn fast_device_accumulates_more_versions() {
        let report = run_threaded(
            &Workload::quick("mlp", 62),
            &quick_config(62),
            &ThreadedOptions {
                powers: vec![4.0, 1.0],
                step_sleep: Duration::from_millis(8),
                window: Duration::from_millis(80),
                rounds: 2,
            },
        )
        .unwrap();
        let last = report.rounds.last().unwrap();
        assert!(
            last.versions[0] > last.versions[1],
            "power-4 device should outpace power-1: {:?}",
            last.versions
        );
    }

    #[test]
    fn every_round_selects_a_valid_ring() {
        let report = run_threaded(
            &Workload::quick("mlp", 63),
            &quick_config(63),
            &ThreadedOptions::quick(&[1.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        for r in &report.rounds {
            assert_eq!(r.selected.len(), 2);
            assert!(r.selected.iter().all(|&d| d < 4));
        }
    }

    #[test]
    fn validates_options() {
        let w = Workload::quick("mlp", 64);
        let c = quick_config(64);
        assert!(run_threaded(&w, &c, &ThreadedOptions::quick(&[1.0])).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.rounds = 0;
        assert!(run_threaded(&w, &c, &bad).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.powers = vec![1.0, -1.0];
        assert!(run_threaded(&w, &c, &bad).is_err());
    }
}
