//! Deployed executor: HADFL over a real message fabric.
//!
//! The virtual-time [`crate::driver`] is what the experiments use; this
//! module runs the same protocol with *actual concurrency*, the way the
//! paper deploys it — one participant per thread or process,
//! heterogeneity emulated with `sleep()` (exactly the paper's method),
//! parameters moving as encoded [`crate::wire::Message`] frames over a
//! [`Port`](crate::transport::Port), and the ring reduce/distribute
//! executed hop by hop between devices. The coordinator only ever sees
//! control-plane messages plus the final parameter uploads.
//!
//! # Actors and drivers
//!
//! The protocol logic lives in two *single-steppable actors* —
//! [`DeviceActor`] and [`CoordinatorActor`] — whose only side effects
//! are sends on the [`Port`] they are handed. Each actor advances one
//! event at a time: [`DeviceActor::on_message`] /
//! [`CoordinatorActor::on_message`] for a delivered frame,
//! [`DeviceActor::on_timer`] / [`CoordinatorActor::on_timer`] for an
//! elapsed deadline, [`DeviceActor::on_idle`] for a local training
//! step. The blocking entry points — [`run_device`] and
//! [`run_coordinator`] — are thin drivers that pump a real port into
//! the actor, sleeping and timing via the [`Clock`] seam
//! ([`crate::clock`]): wall clock in production, virtual time under
//! `hadfl-check`, which schedules the very same actors exhaustively
//! through every message ordering.
//!
//! [`run_threaded`] wires the loops to the in-process
//! [`ChannelTransport`]; `hadfl-net` wires the same loops to TCP
//! sockets for multi-process clusters.
//!
//! Fault tolerance follows §III-D: a ring member that goes silent is
//! probed with [`Message::Handshake`]; absent an ack, the prober
//! broadcasts [`Message::BypassWarning`] and the ring closes around the
//! dead device, the dead device's upstream re-sending its last frame to
//! its new downstream. The coordinator also drops devices that miss a
//! report deadline and excludes them from later plans.

// Protocol hot path: panicking on a malformed peer frame or a poisoned
// invariant would take down a device thread silently. Every unwrap that
// remains must be an `#[allow]` with its invariant spelled out.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::mem;
use std::thread;
use std::time::Duration;

use hadfl_nn::LrSchedule;

use crate::aggregate::blend_params;
use crate::clock::{Clock, ManualClock, WallClock};
use crate::config::HadflConfig;
use crate::coordinator::{RoundPlan, StrategyGenerator};
use crate::error::HadflError;
use crate::predict::VersionPredictor;
use crate::trace::CommSummary;
use crate::transport::{coordinator_id, ChannelTransport, Port};
use crate::wire::Message;
use crate::workload::{DeviceRuntime, Workload};
use hadfl_simnet::DeviceId;
use hadfl_telemetry::{EventKind, Telemetry};

pub mod seeded {
    //! Seeded re-introductions of the three interleaving bugs PR 1's
    //! review caught by hand, used by `hadfl-check` to prove the model
    //! checker would have found them mechanically.
    //!
    //! Without the `seeded-bugs` cargo feature every query compiles to
    //! a constant `false` and the protocol is unchanged. With the
    //! feature, each bug is an `AtomicBool` the checker flips per run:
    //!
    //! * [`drop_early_ring_frames`] — ring frames that overtake their
    //!   `RoundPlan` are dropped instead of held in the backlog
    //!   (PR-1 bug: round-tag overtake loses an accumulation).
    //! * [`double_count_on_resend`] — the `contributed` guard is
    //!   skipped, so a bypass re-send adds a member's parameters twice
    //!   (PR-1 bug: bypass double-count skews the merged mean).
    //! * [`shutdown_alive_only`] — the coordinator shuts down only the
    //!   devices it still considers alive, stranding dropped-but-running
    //!   devices in their training loops (PR-1 bug: missing shutdown).

    #[cfg(feature = "seeded-bugs")]
    use std::sync::atomic::{AtomicBool, Ordering};

    #[cfg(feature = "seeded-bugs")]
    static DROP_EARLY_RING_FRAMES: AtomicBool = AtomicBool::new(false);
    #[cfg(feature = "seeded-bugs")]
    static DOUBLE_COUNT_ON_RESEND: AtomicBool = AtomicBool::new(false);
    #[cfg(feature = "seeded-bugs")]
    static SHUTDOWN_ALIVE_ONLY: AtomicBool = AtomicBool::new(false);

    /// Is the round-tag-overtake bug seeded?
    #[cfg(feature = "seeded-bugs")]
    pub fn drop_early_ring_frames() -> bool {
        DROP_EARLY_RING_FRAMES.load(Ordering::SeqCst)
    }
    /// Is the round-tag-overtake bug seeded? (feature off: never)
    #[cfg(not(feature = "seeded-bugs"))]
    #[inline(always)]
    pub const fn drop_early_ring_frames() -> bool {
        false
    }

    /// Is the bypass-double-count bug seeded?
    #[cfg(feature = "seeded-bugs")]
    pub fn double_count_on_resend() -> bool {
        DOUBLE_COUNT_ON_RESEND.load(Ordering::SeqCst)
    }
    /// Is the bypass-double-count bug seeded? (feature off: never)
    #[cfg(not(feature = "seeded-bugs"))]
    #[inline(always)]
    pub const fn double_count_on_resend() -> bool {
        false
    }

    /// Is the missing-shutdown bug seeded?
    #[cfg(feature = "seeded-bugs")]
    pub fn shutdown_alive_only() -> bool {
        SHUTDOWN_ALIVE_ONLY.load(Ordering::SeqCst)
    }
    /// Is the missing-shutdown bug seeded? (feature off: never)
    #[cfg(not(feature = "seeded-bugs"))]
    #[inline(always)]
    pub const fn shutdown_alive_only() -> bool {
        false
    }

    /// Seeds (or clears) the round-tag-overtake bug.
    #[cfg(feature = "seeded-bugs")]
    pub fn set_drop_early_ring_frames(on: bool) {
        DROP_EARLY_RING_FRAMES.store(on, Ordering::SeqCst);
    }

    /// Seeds (or clears) the bypass-double-count bug.
    #[cfg(feature = "seeded-bugs")]
    pub fn set_double_count_on_resend(on: bool) {
        DOUBLE_COUNT_ON_RESEND.store(on, Ordering::SeqCst);
    }

    /// Seeds (or clears) the missing-shutdown bug.
    #[cfg(feature = "seeded-bugs")]
    pub fn set_shutdown_alive_only(on: bool) {
        SHUTDOWN_ALIVE_ONLY.store(on, Ordering::SeqCst);
    }

    /// Clears every seeded bug (call between checker runs — the flags
    /// are process-global).
    #[cfg(feature = "seeded-bugs")]
    pub fn reset() {
        set_drop_early_ring_frames(false);
        set_double_count_on_resend(false);
        set_shutdown_alive_only(false);
    }
}

/// Failure-detection and deadline knobs of the deployed protocol.
#[derive(Debug, Clone)]
pub struct ProtocolTiming {
    /// Ring silence before the downstream probes its upstream (§III-D).
    pub ring_wait: Duration,
    /// Wait after a [`Message::Handshake`] before declaring the peer
    /// dead.
    pub handshake_wait: Duration,
    /// Coordinator's deadline for a round's version reports; devices
    /// that miss it are dropped from future plans.
    pub report_deadline: Duration,
    /// Coordinator's deadline for final parameter uploads at shutdown.
    pub final_deadline: Duration,
    /// Hard cap on one ring synchronization before a member gives up.
    pub ring_hard_limit: Duration,
}

impl Default for ProtocolTiming {
    fn default() -> Self {
        ProtocolTiming {
            ring_wait: Duration::from_secs(10),
            handshake_wait: Duration::from_secs(2),
            report_deadline: Duration::from_secs(10),
            final_deadline: Duration::from_secs(30),
            ring_hard_limit: Duration::from_secs(120),
        }
    }
}

impl ProtocolTiming {
    /// Tight timeouts for in-process tests: failures are detected in
    /// hundreds of milliseconds instead of tens of seconds.
    pub fn quick() -> Self {
        ProtocolTiming {
            ring_wait: Duration::from_millis(400),
            handshake_wait: Duration::from_millis(250),
            report_deadline: Duration::from_secs(5),
            final_deadline: Duration::from_secs(10),
            ring_hard_limit: Duration::from_secs(30),
        }
    }

    /// All-zero timing for virtual-time model checking: every deadline
    /// is considered elapsed the moment the scheduler chooses to fire
    /// the timer, so timeouts are explicit events rather than races.
    pub fn zero() -> Self {
        ProtocolTiming {
            ring_wait: Duration::ZERO,
            handshake_wait: Duration::ZERO,
            report_deadline: Duration::ZERO,
            final_deadline: Duration::ZERO,
            ring_hard_limit: Duration::ZERO,
        }
    }
}

/// Options of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOptions {
    /// Computing-power ratios, one device thread per entry.
    pub powers: Vec<f64>,
    /// Emulated compute time per local step on a power-1 device (the
    /// paper's `sleep()`); device `i` sleeps `step_sleep / powers[i]`.
    pub step_sleep: Duration,
    /// Wall-clock synchronization window.
    pub window: Duration,
    /// Number of synchronization rounds to run.
    pub rounds: usize,
    /// Failure-detection and deadline knobs.
    pub timing: ProtocolTiming,
}

impl ThreadedOptions {
    /// CI-scale options: short sleeps, a few windows.
    pub fn quick(powers: &[f64]) -> Self {
        ThreadedOptions {
            powers: powers.to_vec(),
            step_sleep: Duration::from_millis(4),
            window: Duration::from_millis(60),
            rounds: 3,
            timing: ProtocolTiming::quick(),
        }
    }
}

/// One synchronization round of a deployed run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRound {
    /// Round index from 1.
    pub round: usize,
    /// Cumulative local steps per device at sync time (0 for devices
    /// already dropped).
    pub versions: Vec<u64>,
    /// Devices selected for the ring.
    pub selected: Vec<usize>,
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Per-round records.
    pub rounds: Vec<ThreadedRound>,
    /// Test accuracy of the post-run consensus (average of the final
    /// models the coordinator collected).
    pub final_accuracy: f32,
    /// Total bytes moved between device threads (encoded frames).
    pub peer_bytes: u64,
    /// Full per-participant byte ledger of the run, comparable with the
    /// analytical driver's [`CommSummary`].
    pub comm: CommSummary,
    /// Devices the coordinator dropped (missed reports or bypass
    /// warnings), with the round they were dropped in.
    pub dropped: Vec<(usize, usize)>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

/// What the coordinator learned from a deployed run.
#[derive(Debug, Clone)]
pub struct CoordinatorRun {
    /// Per-round records.
    pub rounds: Vec<ThreadedRound>,
    /// Final parameters per device that uploaded before the deadline.
    pub final_models: BTreeMap<usize, Vec<f32>>,
    /// Devices dropped mid-run, with the round they were dropped in.
    pub dropped: Vec<(usize, usize)>,
}

/// The training-side state a [`DeviceActor`] owns: the real
/// [`DeviceRuntime`] in production, a ghost model under `hadfl-check`
/// whose parameters are chosen to make the ring arithmetic
/// machine-checkable.
pub trait TrainState {
    /// Current parameter vector (what rides in ring frames).
    fn params(&self) -> Vec<f32>;

    /// Installs a parameter vector (merged model or blended broadcast).
    ///
    /// # Errors
    ///
    /// Returns substrate errors (e.g. a length mismatch).
    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError>;

    /// One heterogeneity-aware local training step.
    ///
    /// # Errors
    ///
    /// Returns substrate errors from the training step.
    fn train_step(&mut self) -> Result<(), HadflError>;

    /// Parameter version reported to the coordinator.
    fn version(&self) -> f64;

    /// Canonical bytes of this state for model-checker deduplication.
    fn digest(&self, out: &mut Vec<u8>) {
        for p in self.params() {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.version().to_bits().to_le_bytes());
    }
}

impl TrainState for DeviceRuntime {
    fn params(&self) -> Vec<f32> {
        self.model.param_vector()
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
        self.model.set_param_vector(params)?;
        Ok(())
    }

    fn train_step(&mut self) -> Result<(), HadflError> {
        self.train_steps(1)?;
        Ok(())
    }

    fn version(&self) -> f64 {
        self.steps_done as f64
    }
}

/// The coordinator's round-planning policy: the paper's
/// [`StrategyGenerator`] in production, a deterministic fixture under
/// `hadfl-check`.
pub trait Planner {
    /// Plans one synchronization round over the available devices.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when no valid ring exists
    /// (e.g. fewer than two available devices).
    fn plan(&mut self, available: &[DeviceId], versions: &[f64]) -> Result<RoundPlan, HadflError>;

    /// Canonical bytes of planner state for model-checker deduplication
    /// (stateless planners need not override).
    fn digest(&self, _out: &mut Vec<u8>) {}

    /// The normalized Eq. (8) first-draw probabilities of the most
    /// recent [`plan`](Self::plan) call, parallel to its `available`
    /// argument. Planners without a probability model (checker
    /// fixtures) return `None` and telemetry logs an empty row.
    fn last_probabilities(&self) -> Option<&[f64]> {
        None
    }
}

impl Planner for StrategyGenerator {
    fn plan(&mut self, available: &[DeviceId], versions: &[f64]) -> Result<RoundPlan, HadflError> {
        self.plan_round(available, versions)
    }

    fn last_probabilities(&self) -> Option<&[f64]> {
        StrategyGenerator::last_probabilities(self)
    }
}

/// Per-round ring state of one member (§III-D bookkeeping).
#[derive(Debug, Clone)]
struct RingRun {
    /// Round this ring synchronizes; ring frames carry the same tag.
    round: u32,
    /// Live members in ring order; shrinks as deaths are bypassed.
    live: Vec<usize>,
    /// Broadcaster for the round's merged model.
    broadcaster: usize,
    /// Devices to broadcast the merged model to.
    unselected: Vec<usize>,
    /// Last frame this member sent, with its recipient — re-sent when
    /// the recipient is declared dead.
    last_sent: Option<(usize, Message)>,
    /// Set once this member has installed the merged model; duplicate
    /// merges (possible after a re-send) are ignored.
    merged_done: bool,
    /// Set once this member's parameters are inside an accumulation it
    /// forwarded; a re-sent [`Message::ParamAccum`] (possible after a
    /// bypass) must not count the member twice.
    contributed: bool,
}

/// The round a ring frame belongs to; `None` for non-ring messages.
fn ring_frame_round(msg: &Message) -> Option<u32> {
    match msg {
        Message::ParamAccum { round, .. } | Message::MergedParams { round, .. } => Some(*round),
        _ => None,
    }
}

/// Holds a ring frame that belongs to a different round than the ring
/// currently running: frames for future rounds are replayed when their
/// plan arrives, frames for past rounds are re-send duplicates and are
/// dropped.
fn stash_ring_frame(backlog: &mut Vec<Message>, current: u32, msg: Message) {
    // Seeded PR-1 bug: no backlog at all — early frames vanish.
    if seeded::drop_early_ring_frames() {
        return;
    }
    if ring_frame_round(&msg).is_some_and(|r| r > current) {
        backlog.push(msg);
    }
}

impl RingRun {
    fn pos(&self, id: usize) -> Option<usize> {
        self.live.iter().position(|&d| d == id)
    }

    // Invariant: `downstream`/`upstream` are only asked for members of
    // `live` — a member never removes *itself* from its own ring (the
    // in-ring BypassWarning handler ignores `dead == me`), and every
    // caller passes either `me` or a value just checked with `pos`.
    #[allow(clippy::expect_used)]
    fn downstream(&self, id: usize) -> usize {
        // lint:allow(unwrap-in-protocol): callers only pass members of `live` (invariant above)
        let pos = self.pos(id).expect("member of own ring");
        self.live[(pos + 1) % self.live.len()]
    }

    #[allow(clippy::expect_used)]
    fn upstream(&self, id: usize) -> usize {
        // lint:allow(unwrap-in-protocol): callers only pass members of `live` (invariant above)
        let pos = self.pos(id).expect("member of own ring");
        self.live[(pos + self.live.len() - 1) % self.live.len()]
    }
}

/// Sends `msg` to `to`, recording it as the member's re-sendable last
/// frame. A send failure is treated as silence: the §III-D probe will
/// catch the dead peer.
fn send_ring<P: Port>(port: &mut P, run: &mut RingRun, to: usize, msg: Message) {
    let _ = port.send(to, &msg);
    run.last_sent = Some((to, msg));
}

/// Finishes the reduce half: installs the mean, starts the distribute
/// half, and broadcasts to the unselected if this member is the
/// round's broadcaster.
#[allow(clippy::too_many_arguments)]
fn finish_reduce<P: Port, T: TrainState>(
    port: &mut P,
    train: &mut T,
    run: &mut RingRun,
    me: usize,
    mut params: Vec<f32>,
    hops: u32,
    tel: &Telemetry,
    now: Duration,
) -> Result<(), HadflError> {
    let _prof = hadfl_prof::scope("ring_merge");
    crate::aggregate::scale_params(&mut params, 1.0 / hops as f32);
    train.set_params(&params)?;
    run.merged_done = true;
    tel.emit(
        now,
        EventKind::Merge {
            round: run.round,
            participants: hops,
        },
    );
    if run.live.len() > 1 {
        let downstream = run.downstream(me);
        send_ring(
            port,
            run,
            downstream,
            Message::MergedParams {
                round: run.round,
                ttl: (run.live.len() - 1) as u32,
                params: params.clone(),
            },
        );
    }
    broadcast_if_mine(port, run, me, &params);
    Ok(())
}

/// Sends the merged model to every unselected device if `me` is (or has
/// replaced) the broadcaster.
fn broadcast_if_mine<P: Port>(port: &mut P, run: &RingRun, me: usize, params: &[f32]) {
    // If the planned broadcaster died, the first live member inherits
    // the role so the unselected still hear about the round.
    let effective = if run.live.contains(&run.broadcaster) {
        run.broadcaster
    } else {
        run.live[0]
    };
    if effective != me {
        return;
    }
    for &u in &run.unselected {
        let _ = port.send(
            u,
            &Message::ParamSync {
                round: run.round,
                params: params.to_vec(),
            },
        );
    }
}

/// After `dead` was removed from `run.live`: re-send the last frame if
/// it was addressed to the dead member, or initiate the reduce if the
/// origin died before anything was sent.
fn repair_after_bypass<P: Port, T: TrainState>(
    port: &mut P,
    train: &mut T,
    run: &mut RingRun,
    me: usize,
    dead: usize,
) {
    match run.last_sent.clone() {
        Some((to, msg)) if to == dead => {
            let downstream = run.downstream(me);
            send_ring(port, run, downstream, msg);
        }
        None if run.live[0] == me && !run.merged_done => {
            // The origin died silent; its downstream (now first) starts
            // the reduce.
            run.contributed = true;
            let downstream = run.downstream(me);
            send_ring(
                port,
                run,
                downstream,
                Message::ParamAccum {
                    round: run.round,
                    hops: 1,
                    params: train.params(),
                },
            );
        }
        _ => {}
    }
}

/// Applies a [`Message::BypassWarning`] to a ring this member already
/// finished. The member forwarded its last frame and left the ring
/// loop; if that frame's recipient is the one now declared dead, the
/// frame never reached the rest of the ring and must be re-sent to the
/// new downstream.
fn bypass_in_finished_ring<P: Port>(port: &mut P, run: &mut RingRun, me: usize, dead: usize) {
    if dead == me || run.pos(dead).is_none() {
        return;
    }
    run.live.retain(|&d| d != dead);
    if run.live.len() < 2 {
        return;
    }
    if let Some((to, msg)) = run.last_sent.clone() {
        if to == dead {
            let downstream = run.downstream(me);
            send_ring(port, run, downstream, msg);
        }
    }
}

/// Per-actor span bookkeeping for the causal timeline: a deterministic
/// id counter (first span of every actor is 1) and the stack of open
/// spans. Telemetry-only state — never part of
/// [`DeviceActor::digest_into`], so span tracking cannot split
/// model-checker states.
#[derive(Debug, Clone, Default)]
struct Spans {
    next: u64,
    /// Open spans, innermost last: `(name, id, round)`.
    open: Vec<(&'static str, u64, u32)>,
}

impl Spans {
    /// Opens `name` and emits [`EventKind::SpanStart`]. No-op (id 0)
    /// when telemetry is disabled, so the checker never pays for it.
    fn start(
        &mut self,
        tel: &Telemetry,
        now: Duration,
        name: &'static str,
        parent: u64,
        round: u32,
        device: usize,
    ) -> u64 {
        if !tel.enabled() {
            return 0;
        }
        self.next += 1;
        let span = self.next;
        self.open.push((name, span, round));
        tel.emit(
            now,
            EventKind::SpanStart {
                span,
                parent,
                name: name.to_string(),
                round,
                device: device as u32,
            },
        );
        span
    }

    /// Closes the innermost open span called `name` (no-op when none
    /// is open — callers end speculatively at phase transitions).
    fn end(&mut self, tel: &Telemetry, now: Duration, name: &'static str, device: usize) {
        if let Some(i) = self.open.iter().rposition(|(n, _, _)| *n == name) {
            let (_, span, round) = self.open.remove(i);
            tel.emit(
                now,
                EventKind::SpanEnd {
                    span,
                    round,
                    device: device as u32,
                },
            );
        }
    }

    /// Closes every open span, innermost first (shutdown path).
    fn end_all(&mut self, tel: &Telemetry, now: Duration, device: usize) {
        while let Some((_, span, round)) = self.open.pop() {
            tel.emit(
                now,
                EventKind::SpanEnd {
                    span,
                    round,
                    device: device as u32,
                },
            );
        }
    }

    /// The innermost open ring-half span, for parenting `merge` and
    /// `bypass_repair` under the ring they belong to (0 = no parent).
    fn ring_parent(&self) -> u64 {
        self.open
            .iter()
            .rev()
            .find(|(n, _, _)| *n == "ring_reduce" || *n == "ring_gather")
            .map_or(0, |&(_, span, _)| span)
    }
}

/// A member's in-ring bookkeeping beyond [`RingRun`]: the probe in
/// flight and when the ring began (for the hard stall limit).
#[derive(Debug, Clone)]
struct RingPhase {
    run: RingRun,
    /// Upstream we handshaked, and the ack deadline.
    probe: Option<(usize, Duration)>,
    /// Clock reading at ring entry.
    started: Duration,
}

/// Where a device is in its protocol loop.
#[derive(Debug, Clone)]
enum DevicePhase {
    /// Local training; polling for coordinator commands.
    Training,
    /// Inside a ring synchronization.
    Ring(RingPhase),
    /// Shutdown acknowledged; final parameters uploaded.
    Finished,
}

/// What the blocking driver should do next for a [`DeviceActor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHint {
    /// Poll without blocking; if nothing is pending, run one training
    /// step ([`DeviceActor::on_idle`]) and sleep `step_sleep`.
    Train,
    /// Block up to this long for a message; on timeout call
    /// [`DeviceActor::on_timer`].
    Ring(Duration),
    /// The device is done; stop driving.
    Finished,
}

/// How one in-ring step left the ring.
enum RingStep {
    Continue,
    Completed,
    Shutdown,
}

/// One device's §III-D protocol state machine, advanced one event at a
/// time. Side effects are sends on the [`Port`] passed to each step.
#[derive(Debug, Clone)]
pub struct DeviceActor<T: TrainState> {
    me: usize,
    coord: usize,
    blend_beta: f32,
    timing: ProtocolTiming,
    /// Highest round whose ring this member finished.
    done_round: u32,
    /// The finished ring's state — kept because a late §III-D bypass
    /// may still need this member's last frame re-sent.
    last_ring: Option<RingRun>,
    /// Ring frames that overtook their RoundPlan: TCP gives no ordering
    /// between the coordinator's connection and a peer's, so an
    /// accumulation can arrive before the plan it belongs to.
    backlog: Vec<Message>,
    /// Peers a §III-D bypass declared dead, remembered across rounds.
    /// A `BypassWarning` can overtake the `RoundPlan` of the ring it
    /// belongs to (independent connections again); joining with the
    /// stale membership would forward frames to the dead member and
    /// stall the ring (found by hadfl-check), so plan membership is
    /// filtered through this set on entry.
    known_dead: BTreeSet<usize>,
    phase: DevicePhase,
    train: T,
    /// Structured-event emitter; disabled by default. Never part of
    /// [`digest_into`](Self::digest_into) — observability must not
    /// split model-checker states.
    tel: Telemetry,
    /// Local steps taken since the last [`EventKind::LocalSteps`]
    /// batch; only counted while telemetry is enabled.
    pending_steps: u64,
    /// Open-span bookkeeping; telemetry-only, never digested.
    spans: Spans,
}

impl<T: TrainState> DeviceActor<T> {
    /// An actor for device `me` of a `participants`-port cluster
    /// (devices plus coordinator).
    pub fn new(
        me: usize,
        participants: usize,
        train: T,
        blend_beta: f32,
        timing: ProtocolTiming,
    ) -> Self {
        DeviceActor {
            me,
            coord: coordinator_id(participants - 1),
            blend_beta,
            timing,
            done_round: 0,
            last_ring: None,
            backlog: Vec::new(),
            known_dead: BTreeSet::new(),
            phase: DevicePhase::Training,
            train,
            tel: Telemetry::disabled(),
            pending_steps: 0,
            spans: Spans::default(),
        }
    }

    /// Attaches a telemetry handle; a disabled handle is a no-op.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Opens the `train` span for `round` (the local-training window
    /// that ends at the round's [`Message::ReportRequest`]). Drivers
    /// call this once at startup; the actor reopens it itself whenever
    /// a ring or a broadcast blend returns it to the training phase.
    pub fn begin_training(&mut self, now: Duration, round: u32) {
        if self.spans.open.iter().any(|(n, _, _)| *n == "train") {
            return; // duplicate broadcast: the window is already open
        }
        self.spans.start(&self.tel, now, "train", 0, round, self.me);
    }

    /// This device's id.
    pub fn id(&self) -> usize {
        self.me
    }

    /// The owned training state (checker introspection).
    pub fn train(&self) -> &T {
        &self.train
    }

    /// Highest round whose ring this member finished.
    pub fn done_round(&self) -> u32 {
        self.done_round
    }

    /// Has the device acknowledged shutdown?
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, DevicePhase::Finished)
    }

    /// The round of the ring this member is currently inside, if any.
    pub fn ring_round(&self) -> Option<u32> {
        match &self.phase {
            DevicePhase::Ring(ring) => Some(ring.run.round),
            _ => None,
        }
    }

    /// Is a handshake probe pending (checker scheduling detail)?
    pub fn probe_armed(&self) -> bool {
        matches!(&self.phase, DevicePhase::Ring(ring) if ring.probe.is_some())
    }

    /// The upstream a pending handshake probe is addressed to, if any
    /// (checker scheduling detail: a probe deadline may only elapse
    /// unanswered when its suspect really is dead).
    pub fn probe_suspect(&self) -> Option<usize> {
        match &self.phase {
            DevicePhase::Ring(ring) => ring.probe.map(|(suspect, _)| suspect),
            _ => None,
        }
    }

    /// What the blocking driver should do next.
    pub fn hint(&self, now: Duration) -> DeviceHint {
        match &self.phase {
            DevicePhase::Finished => DeviceHint::Finished,
            DevicePhase::Training => DeviceHint::Train,
            DevicePhase::Ring(ring) => {
                let wait = match ring.probe {
                    Some((_, deadline)) => deadline.saturating_sub(now),
                    None => self.timing.ring_wait,
                };
                DeviceHint::Ring(wait.max(Duration::from_millis(1)))
            }
        }
    }

    /// Delivers one message to the actor.
    ///
    /// # Errors
    ///
    /// Returns substrate errors from training-state updates and
    /// [`HadflError::InvalidConfig`] when a ring synchronization
    /// exceeds `timing.ring_hard_limit`.
    pub fn on_message<P: Port>(
        &mut self,
        port: &mut P,
        msg: Message,
        now: Duration,
    ) -> Result<(), HadflError> {
        match self.phase {
            DevicePhase::Finished => Ok(()),
            DevicePhase::Training => self.training_message(port, msg, now),
            DevicePhase::Ring(_) => match self.ring_message(port, msg, now)? {
                RingStep::Continue => Ok(()),
                RingStep::Completed => {
                    self.complete_ring(now);
                    Ok(())
                }
                RingStep::Shutdown => {
                    self.finish(port, now);
                    Ok(())
                }
            },
        }
    }

    /// One local training step (the driver's idle action while the
    /// device is in its training phase).
    ///
    /// # Errors
    ///
    /// Returns substrate errors from the training step.
    pub fn on_idle<P: Port>(&mut self, _port: &mut P) -> Result<(), HadflError> {
        if matches!(self.phase, DevicePhase::Training) {
            let _prof = hadfl_prof::scope("local_step");
            self.train.train_step()?;
            if self.tel.enabled() {
                self.pending_steps += 1;
            }
        }
        Ok(())
    }

    /// Flushes the batched local-step count as one
    /// [`EventKind::LocalSteps`] event. Batches close at the protocol
    /// transitions that carry a timestamp (report, ring entry,
    /// shutdown), so one event covers roughly one training window.
    fn flush_steps(&mut self, now: Duration) {
        if self.pending_steps > 0 {
            self.tel.emit(
                now,
                EventKind::LocalSteps {
                    device: self.me as u32,
                    steps: self.pending_steps,
                    version: self.train.version() as u64,
                },
            );
            self.pending_steps = 0;
        }
        // The training window closes wherever the batch does.
        self.spans.end(&self.tel, now, "train", self.me);
    }

    /// An elapsed wait inside a ring: §III-D silence handling — probe
    /// the upstream, or declare it dead when the probe deadline passed.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the ring exceeds
    /// `timing.ring_hard_limit`.
    pub fn on_timer<P: Port>(&mut self, port: &mut P, now: Duration) -> Result<(), HadflError> {
        let me = self.me;
        let coord = self.coord;
        let handshake_wait = self.timing.handshake_wait;
        let hard_limit = self.timing.ring_hard_limit;
        let DevicePhase::Ring(ring) = &mut self.phase else {
            return Ok(());
        };
        if now.saturating_sub(ring.started) > hard_limit {
            return Err(HadflError::InvalidConfig(
                "ring synchronization stalled".into(),
            ));
        }
        match ring.probe {
            Some((suspect, deadline)) if now >= deadline => {
                // §III-D: no ack — declare the upstream dead, warn
                // everyone, bypass.
                let parent = self.spans.ring_parent();
                self.spans
                    .start(&self.tel, now, "bypass_repair", parent, ring.run.round, me);
                ring.probe = None;
                for &member in &ring.run.live {
                    if member != me && member != suspect {
                        let _ = port.send(
                            member,
                            &Message::BypassWarning {
                                dead: suspect as u32,
                            },
                        );
                    }
                }
                let _ = port.send(
                    coord,
                    &Message::BypassWarning {
                        dead: suspect as u32,
                    },
                );
                ring.run.live.retain(|&d| d != suspect);
                self.known_dead.insert(suspect);
                self.tel.emit(
                    now,
                    EventKind::BypassDeclared {
                        round: ring.run.round,
                        dead: suspect as u32,
                    },
                );
                if ring.run.live.len() < 2 {
                    ring.run.merged_done = true; // dissolved; keep local model
                } else {
                    self.tel.emit(
                        now,
                        EventKind::RingRepair {
                            round: ring.run.round,
                            dead: suspect as u32,
                        },
                    );
                    repair_after_bypass(port, &mut self.train, &mut ring.run, me, suspect);
                }
                self.spans.end(&self.tel, now, "bypass_repair", me);
            }
            Some(_) => {} // ack still pending
            None => {
                // Silence: probe the upstream we are waiting on.
                let suspect = ring.run.upstream(me);
                let _ = port.send(suspect, &Message::Handshake { from: me as u32 });
                ring.probe = Some((suspect, now + handshake_wait));
            }
        }
        let done = ring.run.merged_done;
        if done {
            self.complete_ring(now);
        }
        Ok(())
    }

    /// Canonical bytes of the actor's full state (model-checker
    /// deduplication).
    pub fn digest_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.me as u64).to_le_bytes());
        out.extend_from_slice(&self.done_round.to_le_bytes());
        digest_opt_ring(out, self.last_ring.as_ref());
        out.extend_from_slice(&(self.backlog.len() as u64).to_le_bytes());
        for m in &self.backlog {
            digest_msg(out, m);
        }
        out.extend_from_slice(&(self.known_dead.len() as u64).to_le_bytes());
        for &d in &self.known_dead {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        match &self.phase {
            DevicePhase::Training => out.push(0),
            DevicePhase::Ring(ring) => {
                out.push(1);
                digest_ring(out, &ring.run);
                match ring.probe {
                    Some((suspect, deadline)) => {
                        out.push(1);
                        out.extend_from_slice(&(suspect as u64).to_le_bytes());
                        out.extend_from_slice(&(deadline.as_nanos() as u64).to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&(ring.started.as_nanos() as u64).to_le_bytes());
            }
            DevicePhase::Finished => out.push(2),
        }
        self.train.digest(out);
    }

    /// Uploads final parameters and retires the actor.
    fn finish<P: Port>(&mut self, port: &mut P, now: Duration) {
        let _ = port.send(
            self.coord,
            &Message::FinalParams {
                device: self.me as u32,
                params: self.train.params(),
            },
        );
        self.phase = DevicePhase::Finished;
        self.flush_steps(now);
        self.spans.end_all(&self.tel, now, self.me);
        self.tel.emit(
            now,
            EventKind::DeviceFinished {
                device: self.me as u32,
                version: self.train.version() as u64,
            },
        );
        self.tel.flush();
    }

    /// Leaves the ring phase, recording the finished ring for late
    /// bypass repairs.
    fn complete_ring(&mut self, now: Duration) {
        if let DevicePhase::Ring(ring) = mem::replace(&mut self.phase, DevicePhase::Training) {
            self.done_round = self.done_round.max(ring.run.round);
            // Close whatever ring-half (or mid-repair) span is still
            // open; each end is a no-op when the name isn't open.
            for name in ["merge", "bypass_repair", "ring_gather", "ring_reduce"] {
                self.spans.end(&self.tel, now, name, self.me);
            }
            self.tel.emit(
                now,
                EventKind::RingExit {
                    round: ring.run.round,
                    dissolved: ring.run.live.len() < 2,
                },
            );
            self.begin_training(now, ring.run.round + 1);
            self.last_ring = Some(ring.run);
        }
    }

    /// A message delivered while the device is locally training.
    fn training_message<P: Port>(
        &mut self,
        port: &mut P,
        msg: Message,
        now: Duration,
    ) -> Result<(), HadflError> {
        match msg {
            Message::Shutdown => {
                self.finish(port, now);
            }
            Message::ReportRequest { round } => {
                self.flush_steps(now);
                let _ = port.send(
                    self.coord,
                    &Message::VersionReport {
                        device: self.me as u32,
                        round,
                        version: self.train.version(),
                    },
                );
                self.spans
                    .start(&self.tel, now, "wait_for_plan", 0, round, self.me);
            }
            Message::RoundPlan {
                round,
                ring,
                broadcaster,
                unselected,
            } => {
                self.enter_ring(port, round, &ring, broadcaster, &unselected, now)?;
            }
            Message::ParamSync { round, params } => {
                // Unselected device receiving the broadcast: blend
                // non-blockingly and keep training.
                self.spans.end(&self.tel, now, "wait_for_plan", self.me);
                self.spans
                    .start(&self.tel, now, "broadcast_blend", 0, round, self.me);
                let prof = hadfl_prof::scope("broadcast_blend");
                let mut local = self.train.params();
                blend_params(&mut local, &params, self.blend_beta)?;
                self.train.set_params(&local)?;
                drop(prof);
                self.spans.end(&self.tel, now, "broadcast_blend", self.me);
                self.begin_training(now, round + 1);
            }
            Message::Handshake { from } => {
                let _ = port.send(
                    from as usize,
                    &Message::HandshakeAck {
                        from: self.me as u32,
                    },
                );
            }
            // A ring frame outside a ring: either it overtook its
            // RoundPlan (hold it for the plan) or it is a re-send
            // duplicate for a ring already finished (drop it, via the
            // final `_` arm). Seeded PR-1 bug: no backlog — early
            // frames vanish.
            msg @ (Message::ParamAccum { .. } | Message::MergedParams { .. })
                if !seeded::drop_early_ring_frames()
                    && ring_frame_round(&msg).is_some_and(|r| r > self.done_round) =>
            {
                self.backlog.push(msg);
            }
            Message::BypassWarning { dead } => {
                let dead = dead as usize;
                if dead != self.me {
                    self.known_dead.insert(dead);
                }
                // A death in the ring this member already finished: if
                // the member's last frame was addressed to the dead
                // device, the stranded new downstream still needs it.
                if let Some(run) = self.last_ring.as_mut() {
                    bypass_in_finished_ring(port, run, self.me, dead);
                }
            }
            _ => {} // heartbeats, stale acks
        }
        Ok(())
    }

    /// Joins the ring a [`Message::RoundPlan`] describes, initiating
    /// the reduce if this member is first, and replays any backlogged
    /// frames that overtook the plan.
    fn enter_ring<P: Port>(
        &mut self,
        port: &mut P,
        round: u32,
        ring: &[u32],
        broadcaster: u32,
        unselected: &[u32],
        now: Duration,
    ) -> Result<(), HadflError> {
        let mut run = RingRun {
            round,
            live: ring.iter().map(|&d| d as usize).collect(),
            broadcaster: broadcaster as usize,
            unselected: unselected.iter().map(|&d| d as usize).collect(),
            last_sent: None,
            merged_done: false,
            contributed: false,
        };
        if run.pos(self.me).is_none() {
            return Ok(()); // not addressed to us; stale broadcast
        }
        self.flush_steps(now);
        self.spans.end(&self.tel, now, "wait_for_plan", self.me);
        // A BypassWarning may have overtaken this plan: membership the
        // coordinator believed alive at planning time can already be
        // known dead here. Joining with the stale membership would
        // forward the accumulation to the dead member and stall the
        // ring forever (found by hadfl-check).
        run.live.retain(|d| !self.known_dead.contains(d));
        run.unselected.retain(|d| !self.known_dead.contains(d));
        if run.live.len() < 2 {
            // The ring dissolved before it began; keep the local model
            // and treat the round as synchronized, as the in-ring
            // bypass does when membership drops below two.
            self.done_round = self.done_round.max(round);
            self.backlog
                .retain(|m| ring_frame_round(m).is_some_and(|r| r > round));
            self.tel.emit(
                now,
                EventKind::RingExit {
                    round,
                    dissolved: true,
                },
            );
            self.begin_training(now, round + 1);
            return Ok(());
        }
        self.tel.emit(
            now,
            EventKind::RingEnter {
                round,
                ring: run.live.iter().map(|&d| d as u32).collect(),
            },
        );
        self.spans
            .start(&self.tel, now, "ring_reduce", 0, round, self.me);
        // Frames for rings before this one are dead history.
        self.backlog
            .retain(|m| ring_frame_round(m).is_some_and(|r| r >= round));
        // The first member initiates the reduce with its own parameters.
        if run.live[0] == self.me {
            run.contributed = true;
            let downstream = run.downstream(self.me);
            send_ring(
                port,
                &mut run,
                downstream,
                Message::ParamAccum {
                    round,
                    hops: 1,
                    params: self.train.params(),
                },
            );
            // Contribution forwarded: the reduce half is done for the
            // initiator; it now waits for the merged model to wrap.
            self.spans.end(&self.tel, now, "ring_reduce", self.me);
            self.spans
                .start(&self.tel, now, "ring_gather", 0, round, self.me);
        }
        self.phase = DevicePhase::Ring(RingPhase {
            run,
            probe: None,
            started: now,
        });
        // Frames for this ring that arrived before its RoundPlan are
        // replayed ahead of anything the fabric delivers next. (No new
        // backlog entry for the *current* round can appear while the
        // ring runs — stash_ring_frame only holds future rounds — so
        // replaying here is equivalent to the pre-poll replay of the
        // former blocking loop.)
        while matches!(self.phase, DevicePhase::Ring(_)) {
            let Some(held) = self
                .backlog
                .iter()
                .position(|m| ring_frame_round(m) == Some(round))
            else {
                break;
            };
            let msg = self.backlog.remove(held);
            match self.ring_message(port, msg, now)? {
                RingStep::Continue => {}
                RingStep::Completed => self.complete_ring(now),
                RingStep::Shutdown => self.finish(port, now),
            }
        }
        Ok(())
    }

    /// A message delivered while inside a ring synchronization.
    fn ring_message<P: Port>(
        &mut self,
        port: &mut P,
        msg: Message,
        now: Duration,
    ) -> Result<RingStep, HadflError> {
        let me = self.me;
        let hard_limit = self.timing.ring_hard_limit;
        let DevicePhase::Ring(ring) = &mut self.phase else {
            return Ok(RingStep::Continue);
        };
        if now.saturating_sub(ring.started) > hard_limit {
            return Err(HadflError::InvalidConfig(
                "ring synchronization stalled".into(),
            ));
        }
        match msg {
            Message::ParamAccum {
                round,
                hops,
                mut params,
            } => {
                if round != ring.run.round {
                    stash_ring_frame(
                        &mut self.backlog,
                        ring.run.round,
                        Message::ParamAccum {
                            round,
                            hops,
                            params,
                        },
                    );
                    return Ok(RingStep::Continue);
                }
                ring.probe = None;
                if ring.run.contributed && !seeded::double_count_on_resend() {
                    // Re-send duplicate after a bypass: our parameters
                    // already ride an accumulation we forwarded; adding
                    // them again would skew the merged mean. One shape
                    // of duplicate is still load-bearing: when the dead
                    // member was the last hop before the wrap back to
                    // the initiator, the re-sent frame carries *every*
                    // live member's contribution — it IS the finished
                    // sum, and dropping it would stall the ring (found
                    // by `hadfl-check`, see DESIGN.md §Protocol
                    // invariants). Merge it without adding ourselves.
                    if hops as usize >= ring.run.live.len() && !ring.run.merged_done {
                        let parent = self.spans.ring_parent();
                        let round = ring.run.round;
                        self.spans.start(&self.tel, now, "merge", parent, round, me);
                        finish_reduce(
                            port,
                            &mut self.train,
                            &mut ring.run,
                            me,
                            params,
                            hops,
                            &self.tel,
                            now,
                        )?;
                        self.spans.end(&self.tel, now, "merge", me);
                    }
                } else {
                    ring.run.contributed = true;
                    let prof = hadfl_prof::scope("ring_accumulate");
                    let mine = self.train.params();
                    crate::aggregate::accumulate_params(&mut params, &mine);
                    drop(prof);
                    let hops = hops + 1;
                    self.tel.emit(
                        now,
                        EventKind::Accumulate {
                            round: ring.run.round,
                            hops,
                        },
                    );
                    if hops as usize >= ring.run.live.len() {
                        // This member closes the reduce: merge nests
                        // under its reduce half, which ends here.
                        let parent = self.spans.ring_parent();
                        let round = ring.run.round;
                        self.spans.start(&self.tel, now, "merge", parent, round, me);
                        finish_reduce(
                            port,
                            &mut self.train,
                            &mut ring.run,
                            me,
                            params,
                            hops,
                            &self.tel,
                            now,
                        )?;
                        self.spans.end(&self.tel, now, "merge", me);
                        self.spans.end(&self.tel, now, "ring_reduce", me);
                        self.spans
                            .start(&self.tel, now, "ring_gather", 0, round, me);
                    } else {
                        let downstream = ring.run.downstream(me);
                        let round = ring.run.round;
                        send_ring(
                            port,
                            &mut ring.run,
                            downstream,
                            Message::ParamAccum {
                                round,
                                hops,
                                params,
                            },
                        );
                        self.spans.end(&self.tel, now, "ring_reduce", me);
                        self.spans
                            .start(&self.tel, now, "ring_gather", 0, round, me);
                    }
                }
            }
            Message::MergedParams { round, ttl, params } => {
                if round != ring.run.round {
                    stash_ring_frame(
                        &mut self.backlog,
                        ring.run.round,
                        Message::MergedParams { round, ttl, params },
                    );
                    return Ok(RingStep::Continue);
                }
                ring.probe = None;
                self.train.set_params(&params)?;
                ring.run.merged_done = true;
                if ttl > 1 {
                    let downstream = ring.run.downstream(me);
                    let round = ring.run.round;
                    send_ring(
                        port,
                        &mut ring.run,
                        downstream,
                        Message::MergedParams {
                            round,
                            ttl: ttl - 1,
                            params: params.clone(),
                        },
                    );
                }
                // The effective broadcaster's fan-out to the unselected
                // is the round's `broadcast_blend` segment.
                let effective = if ring.run.live.contains(&ring.run.broadcaster) {
                    ring.run.broadcaster
                } else {
                    ring.run.live[0]
                };
                if effective == me && !ring.run.unselected.is_empty() {
                    let parent = self.spans.ring_parent();
                    self.spans
                        .start(&self.tel, now, "broadcast_blend", parent, round, me);
                    broadcast_if_mine(port, &ring.run, me, &params);
                    self.spans.end(&self.tel, now, "broadcast_blend", me);
                } else {
                    broadcast_if_mine(port, &ring.run, me, &params);
                }
            }
            Message::Handshake { from } => {
                let _ = port.send(from as usize, &Message::HandshakeAck { from: me as u32 });
            }
            Message::HandshakeAck { from } => {
                if let Some((suspect, _)) = ring.probe {
                    if suspect == from as usize {
                        // Upstream is alive, just slow; wait afresh.
                        ring.probe = None;
                    }
                }
            }
            Message::BypassWarning { dead } => {
                let dead = dead as usize;
                // `dead == me` is unreachable via the protocol (nobody
                // warns a device about itself) but would corrupt the
                // neighbour lookups; ignore it defensively.
                if dead != me {
                    self.known_dead.insert(dead);
                }
                if dead != me && ring.run.pos(dead).is_some() {
                    let parent = self.spans.ring_parent();
                    self.spans
                        .start(&self.tel, now, "bypass_repair", parent, ring.run.round, me);
                    ring.run.live.retain(|&d| d != dead);
                    if let Some((suspect, _)) = ring.probe {
                        if suspect == dead {
                            ring.probe = None;
                        }
                    }
                    if ring.run.live.len() < 2 {
                        ring.run.merged_done = true; // dissolved; keep local model
                    } else {
                        self.tel.emit(
                            now,
                            EventKind::RingRepair {
                                round: ring.run.round,
                                dead: dead as u32,
                            },
                        );
                        repair_after_bypass(port, &mut self.train, &mut ring.run, me, dead);
                    }
                    self.spans.end(&self.tel, now, "bypass_repair", me);
                }
            }
            Message::ReportRequest { round } => {
                let _ = port.send(
                    self.coord,
                    &Message::VersionReport {
                        device: me as u32,
                        round,
                        version: self.train.version(),
                    },
                );
            }
            Message::Shutdown => return Ok(RingStep::Shutdown),
            _ => {} // heartbeats, broadcasts meant for the unselected
        }
        let DevicePhase::Ring(ring) = &self.phase else {
            return Ok(RingStep::Continue);
        };
        Ok(if ring.run.merged_done {
            RingStep::Completed
        } else {
            RingStep::Continue
        })
    }
}

fn digest_msg(out: &mut Vec<u8>, msg: &Message) {
    let frame = msg.encode();
    out.extend_from_slice(&(frame.len() as u64).to_le_bytes());
    out.extend_from_slice(&frame);
}

fn digest_ring(out: &mut Vec<u8>, run: &RingRun) {
    out.extend_from_slice(&run.round.to_le_bytes());
    out.extend_from_slice(&(run.live.len() as u64).to_le_bytes());
    for &d in &run.live {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&(run.broadcaster as u64).to_le_bytes());
    out.extend_from_slice(&(run.unselected.len() as u64).to_le_bytes());
    for &d in &run.unselected {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    match &run.last_sent {
        Some((to, msg)) => {
            out.push(1);
            out.extend_from_slice(&(*to as u64).to_le_bytes());
            digest_msg(out, msg);
        }
        None => out.push(0),
    }
    out.push(run.merged_done as u8);
    out.push(run.contributed as u8);
}

fn digest_opt_ring(out: &mut Vec<u8>, run: Option<&RingRun>) {
    match run {
        Some(run) => {
            out.push(1);
            digest_ring(out, run);
        }
        None => out.push(0),
    }
}

/// Runs one device's protocol loop over `port` until the coordinator
/// sends [`Message::Shutdown`]; the device then uploads its final
/// parameters and returns. Timing comes from a fresh [`WallClock`];
/// see [`run_device_with_clock`] for an injected clock.
///
/// The loop trains one heterogeneity-aware local step at a time
/// (sleeping `step_sleep` per step to emulate compute power), answers
/// [`Message::Handshake`] probes, reports versions on request, joins
/// ring synchronizations it is planned into, and blends broadcast
/// models it receives while unselected.
///
/// # Errors
///
/// Returns substrate errors from training, and
/// [`HadflError::InvalidConfig`] when the fabric is torn down or a ring
/// synchronization exceeds `timing.ring_hard_limit`.
pub fn run_device<P: Port>(
    port: P,
    rt: DeviceRuntime,
    config: &HadflConfig,
    step_sleep: Duration,
    timing: &ProtocolTiming,
) -> Result<(), HadflError> {
    run_device_with_clock(port, rt, config, step_sleep, timing, &WallClock::new())
}

/// [`run_device`] with an injected [`Clock`] (deterministic tests).
///
/// # Errors
///
/// As [`run_device`].
pub fn run_device_with_clock<P: Port>(
    port: P,
    rt: DeviceRuntime,
    config: &HadflConfig,
    step_sleep: Duration,
    timing: &ProtocolTiming,
    clock: &dyn Clock,
) -> Result<(), HadflError> {
    run_device_instrumented(
        port,
        rt,
        config,
        step_sleep,
        timing,
        clock,
        Telemetry::disabled(),
    )
}

/// [`run_device_with_clock`] with a telemetry handle: emits the device
/// lifecycle, local-step batches, and ring events, all timestamped from
/// `clock` so [`crate::clock::ManualClock`] runs are deterministic.
///
/// # Errors
///
/// As [`run_device`].
pub fn run_device_instrumented<P: Port>(
    mut port: P,
    mut rt: DeviceRuntime,
    config: &HadflConfig,
    step_sleep: Duration,
    timing: &ProtocolTiming,
    clock: &dyn Clock,
    tel: Telemetry,
) -> Result<(), HadflError> {
    rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
    let me = port.id();
    let participants = port.participants();
    tel.emit(clock.now(), EventKind::DeviceStarted { device: me as u32 });
    let mut actor = DeviceActor::new(me, participants, rt, config.blend_beta, timing.clone())
        .with_telemetry(tel);
    actor.begin_training(clock.now(), 1);
    loop {
        match actor.hint(clock.now()) {
            DeviceHint::Finished => return Ok(()),
            DeviceHint::Train => match port.try_recv()? {
                Some(msg) => actor.on_message(&mut port, msg, clock.now())?,
                None => {
                    // No command: one heterogeneity-aware local step.
                    actor.on_idle(&mut port)?;
                    clock.sleep(step_sleep);
                }
            },
            DeviceHint::Ring(wait) => match port.recv_timeout(wait)? {
                Some(msg) => actor.on_message(&mut port, msg, clock.now())?,
                None => actor.on_timer(&mut port, clock.now())?,
            },
        }
    }
}

/// Where the coordinator is in its round script.
#[derive(Debug, Clone)]
enum CoordPhase {
    /// Letting devices train until the window closes.
    Window { round: usize, until: Duration },
    /// Collecting version reports for `round` until the deadline.
    Collect {
        round: usize,
        versions: BTreeMap<usize, f64>,
        deadline: Duration,
    },
    /// Shutdown sent; collecting final parameter uploads.
    Final { deadline: Duration },
    /// Run complete.
    Done,
}

/// Which phase a [`CoordinatorActor`] is in (checker introspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordPhaseKind {
    /// Training window open.
    Window,
    /// Collecting version reports.
    Collect,
    /// Collecting final parameters.
    Final,
    /// Run complete.
    Done,
}

/// What the blocking driver should do next for a [`CoordinatorActor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordHint {
    /// Sleep this long, then call [`CoordinatorActor::on_timer`].
    Sleep(Duration),
    /// Block up to this long for a message; on timeout call
    /// [`CoordinatorActor::on_timer`].
    Recv(Duration),
    /// A deadline already passed: call [`CoordinatorActor::on_timer`]
    /// immediately.
    Timer,
    /// The run is complete; collect it with
    /// [`CoordinatorActor::into_run`].
    Done,
}

/// The coordinator's protocol state machine, advanced one event at a
/// time: per round, wait out the window, collect version reports
/// (dropping devices that miss the deadline or are reported dead by a
/// ring), plan the ring via a [`Planner`], distribute the plan; after
/// the last round shut the cluster down and collect final parameters.
#[derive(Debug, Clone)]
pub struct CoordinatorActor<Pl: Planner> {
    k: usize,
    rounds: usize,
    window: Duration,
    timing: ProtocolTiming,
    planner: Pl,
    alive: BTreeSet<usize>,
    dropped: Vec<(usize, usize)>,
    rounds_log: Vec<ThreadedRound>,
    final_models: BTreeMap<usize, Vec<f32>>,
    phase: CoordPhase,
    /// Structured-event emitter; disabled by default. Never part of
    /// [`digest_into`](Self::digest_into) — observability must not
    /// split model-checker states.
    tel: Telemetry,
    /// Eq. (7) shadow predictors, one per device, maintained only while
    /// telemetry is enabled so prediction-vs-actual error can be
    /// logged per round. Planning behavior is untouched: the deployed
    /// coordinator plans from *reported* versions either way.
    predictors: Option<Vec<VersionPredictor>>,
    /// When the current round's window opened (round-latency metric).
    round_opened: Duration,
}

/// Smoothing factor of the telemetry-only Eq. (7) shadow predictors.
const TELEMETRY_PREDICTOR_ALPHA: f64 = 0.3;

impl<Pl: Planner> CoordinatorActor<Pl> {
    /// An actor for a `k`-device cluster starting its first window at
    /// `now`.
    pub fn new(
        k: usize,
        planner: Pl,
        window: Duration,
        rounds: usize,
        timing: ProtocolTiming,
        now: Duration,
    ) -> Self {
        CoordinatorActor {
            k,
            rounds,
            window,
            timing,
            planner,
            alive: (0..k).collect(),
            dropped: Vec::new(),
            rounds_log: Vec::new(),
            final_models: BTreeMap::new(),
            phase: CoordPhase::Window {
                round: 1,
                until: now + window,
            },
            tel: Telemetry::disabled(),
            predictors: None,
            round_opened: now,
        }
    }

    /// Attaches a telemetry handle; a disabled handle is a no-op. An
    /// enabled handle also switches on the per-device Eq. (7) shadow
    /// predictors behind the round's prediction-error events.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        if tel.enabled() {
            self.predictors = (0..self.k)
                .map(|_| VersionPredictor::new(TELEMETRY_PREDICTOR_ALPHA, 0.0))
                .collect::<Result<Vec<_>, _>>()
                .ok();
        }
        self.tel = tel;
        self
    }

    /// Devices still considered alive.
    pub fn alive(&self) -> &BTreeSet<usize> {
        &self.alive
    }

    /// Which phase the coordinator is in.
    pub fn phase_kind(&self) -> CoordPhaseKind {
        match self.phase {
            CoordPhase::Window { .. } => CoordPhaseKind::Window,
            CoordPhase::Collect { .. } => CoordPhaseKind::Collect,
            CoordPhase::Final { .. } => CoordPhaseKind::Final,
            CoordPhase::Done => CoordPhaseKind::Done,
        }
    }

    /// Is the run complete?
    pub fn is_done(&self) -> bool {
        matches!(self.phase, CoordPhase::Done)
    }

    /// Alive devices whose report (Collect) or final upload (Final)
    /// has not arrived yet — empty in other phases. The checker uses
    /// this to decide when a deadline may legitimately elapse: under
    /// correctly-tuned production timeouts a deadline only fires for
    /// devices that are really gone.
    pub fn awaiting(&self) -> Vec<usize> {
        match &self.phase {
            CoordPhase::Collect { versions, .. } => self
                .alive
                .iter()
                .copied()
                .filter(|d| !versions.contains_key(d))
                .collect(),
            CoordPhase::Final { .. } => self
                .alive
                .iter()
                .copied()
                .filter(|d| !self.final_models.contains_key(d))
                .collect(),
            CoordPhase::Window { .. } | CoordPhase::Done => Vec::new(),
        }
    }

    /// The round currently being windowed or collected, if any
    /// (checker introspection: round tags must be monotone).
    pub fn current_round(&self) -> Option<usize> {
        match &self.phase {
            CoordPhase::Window { round, .. } | CoordPhase::Collect { round, .. } => Some(*round),
            CoordPhase::Final { .. } | CoordPhase::Done => None,
        }
    }

    /// What the blocking driver should do next.
    pub fn hint(&self, now: Duration) -> CoordHint {
        match &self.phase {
            CoordPhase::Window { until, .. } => CoordHint::Sleep(until.saturating_sub(now)),
            CoordPhase::Collect { deadline, .. } | CoordPhase::Final { deadline } => {
                let left = deadline.saturating_sub(now);
                if left.is_zero() {
                    CoordHint::Timer
                } else {
                    CoordHint::Recv(left)
                }
            }
            CoordPhase::Done => CoordHint::Done,
        }
    }

    /// The run's outcome. Meaningful once [`is_done`](Self::is_done).
    pub fn into_run(self) -> CoordinatorRun {
        self.tel.flush();
        CoordinatorRun {
            rounds: self.rounds_log,
            final_models: self.final_models,
            dropped: self.dropped,
        }
    }

    /// Delivers one message to the actor.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::ClusterDead`] when a report collection
    /// this message completes leaves fewer than two devices, and
    /// planner errors.
    pub fn on_message<P: Port>(
        &mut self,
        port: &mut P,
        msg: Message,
        now: Duration,
    ) -> Result<(), HadflError> {
        let mut collect_full = false;
        let mut final_full = false;
        match &mut self.phase {
            CoordPhase::Collect {
                round, versions, ..
            } => {
                let round = *round;
                match msg {
                    Message::VersionReport {
                        device, version, ..
                    } => {
                        let device = device as usize;
                        if self.alive.contains(&device) {
                            versions.insert(device, version);
                        }
                    }
                    Message::BypassWarning { dead } => {
                        let dead = dead as usize;
                        if self.alive.remove(&dead) {
                            self.dropped.push((dead, round));
                            versions.remove(&dead);
                            self.tel.emit(
                                now,
                                EventKind::DeviceDropped {
                                    round: round as u32,
                                    device: dead as u32,
                                },
                            );
                        }
                    }
                    _ => {}
                }
                collect_full = versions.len() >= self.alive.len();
            }
            CoordPhase::Final { .. } => {
                match msg {
                    Message::FinalParams { device, params } => {
                        let device = device as usize;
                        if self.alive.contains(&device) {
                            self.final_models.insert(device, params);
                        }
                    }
                    Message::BypassWarning { dead } => {
                        let dead = dead as usize;
                        if self.alive.remove(&dead) {
                            self.dropped.push((dead, self.rounds));
                            self.tel.emit(
                                now,
                                EventKind::DeviceDropped {
                                    round: self.rounds as u32,
                                    device: dead as u32,
                                },
                            );
                        }
                    }
                    _ => {}
                }
                final_full = self.final_models.len() >= self.alive.len();
            }
            // The blocking driver never polls during a window (it
            // sleeps); under the checker, deliveries are gated off.
            // Anything that does land here is dropped, matching a
            // message the blocking coordinator would only have read
            // later from its mailbox.
            CoordPhase::Window { .. } | CoordPhase::Done => {}
        }
        if collect_full {
            self.finish_collect(port, now)?;
        }
        if final_full {
            self.phase = CoordPhase::Done;
        }
        Ok(())
    }

    /// An elapsed deadline: close the window, the report collection, or
    /// the final-upload collection — whichever is pending.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::ClusterDead`] when a closed report
    /// collection leaves fewer than two devices, and planner errors.
    pub fn on_timer<P: Port>(&mut self, port: &mut P, now: Duration) -> Result<(), HadflError> {
        match &self.phase {
            CoordPhase::Window { round, until } if now >= *until => {
                let round = *round;
                for &d in &self.alive {
                    let _ = port.send(
                        d,
                        &Message::ReportRequest {
                            round: round as u32,
                        },
                    );
                }
                self.phase = CoordPhase::Collect {
                    round,
                    versions: BTreeMap::new(),
                    deadline: now + self.timing.report_deadline,
                };
                Ok(())
            }
            CoordPhase::Collect { deadline, .. } if now >= *deadline => {
                self.finish_collect(port, now)
            }
            CoordPhase::Final { deadline } if now >= *deadline => {
                self.phase = CoordPhase::Done;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Canonical bytes of the actor's full state (model-checker
    /// deduplication).
    pub fn digest_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&(self.alive.len() as u64).to_le_bytes());
        for &d in &self.alive {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.dropped.len() as u64).to_le_bytes());
        for &(d, r) in &self.dropped {
            out.extend_from_slice(&(d as u64).to_le_bytes());
            out.extend_from_slice(&(r as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.rounds_log.len() as u64).to_le_bytes());
        for entry in &self.rounds_log {
            out.extend_from_slice(&(entry.round as u64).to_le_bytes());
            for &v in &entry.versions {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &s in &entry.selected {
                out.extend_from_slice(&(s as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.final_models.len() as u64).to_le_bytes());
        for (&d, params) in &self.final_models {
            out.extend_from_slice(&(d as u64).to_le_bytes());
            for p in params {
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
        }
        match &self.phase {
            CoordPhase::Window { round, until } => {
                out.push(0);
                out.extend_from_slice(&(*round as u64).to_le_bytes());
                out.extend_from_slice(&(until.as_nanos() as u64).to_le_bytes());
            }
            CoordPhase::Collect {
                round,
                versions,
                deadline,
            } => {
                out.push(1);
                out.extend_from_slice(&(*round as u64).to_le_bytes());
                out.extend_from_slice(&(versions.len() as u64).to_le_bytes());
                for (&d, &v) in versions {
                    out.extend_from_slice(&(d as u64).to_le_bytes());
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                out.extend_from_slice(&(deadline.as_nanos() as u64).to_le_bytes());
            }
            CoordPhase::Final { deadline } => {
                out.push(2);
                out.extend_from_slice(&(deadline.as_nanos() as u64).to_le_bytes());
            }
            CoordPhase::Done => out.push(3),
        }
        self.planner.digest(out);
    }

    /// Closes the round's report collection: drops devices that missed
    /// the deadline, plans and distributes the next ring — or, after
    /// the last round, shuts the cluster down.
    fn finish_collect<P: Port>(&mut self, port: &mut P, now: Duration) -> Result<(), HadflError> {
        let CoordPhase::Collect {
            round, versions, ..
        } = mem::replace(&mut self.phase, CoordPhase::Done)
        else {
            return Ok(());
        };
        // §III-D, coordinator side: missing the deadline means dead.
        let missing: Vec<usize> = self
            .alive
            .iter()
            .copied()
            .filter(|d| !versions.contains_key(d))
            .collect();
        for d in missing {
            self.alive.remove(&d);
            self.dropped.push((d, round));
            self.tel.emit(
                now,
                EventKind::DeviceDropped {
                    round: round as u32,
                    device: d as u32,
                },
            );
        }
        if self.alive.len() < 2 {
            // Best-effort shutdown of *every* device, dropped included:
            // a device the coordinator dropped may well still be
            // running, and without a Shutdown it would train forever
            // (and a threaded harness would never join its thread).
            for d in self.shutdown_targets() {
                let _ = port.send(d, &Message::Shutdown);
            }
            self.tel.emit(
                now,
                EventKind::ShutdownSent {
                    round: round as u32,
                },
            );
            self.tel.flush();
            return Err(HadflError::ClusterDead { round });
        }

        let available: Vec<DeviceId> = self.alive.iter().map(|&d| DeviceId(d)).collect();
        let avail_versions: Vec<f64> = available.iter().map(|d| versions[&d.index()]).collect();
        if let Some(predictors) = self.predictors.as_mut() {
            // Eq. (7) shadow forecast: predicted-vs-actual *before* the
            // round's observation updates the smoother.
            for (d, &actual) in available.iter().zip(&avail_versions) {
                if let Some(p) = predictors.get_mut(d.index()) {
                    let predicted = p.forecast(1);
                    self.tel.emit(
                        now,
                        EventKind::Prediction {
                            round: round as u32,
                            device: d.index() as u32,
                            predicted,
                            actual,
                        },
                    );
                    p.observe(actual);
                }
            }
        }
        let plan = self.planner.plan(&available, &avail_versions)?;
        let ring: Vec<u32> = plan
            .ring
            .members()
            .iter()
            .map(|d| d.index() as u32)
            .collect();
        let unselected: Vec<u32> = plan.unselected.iter().map(|d| d.index() as u32).collect();
        // The decision is logged before its frames go out: RoundPlanned
        // is the causal source of the round's critical path, so it must
        // happen-before every RoundPlan send in the merged timeline.
        if self.tel.enabled() {
            self.tel.emit(
                now,
                EventKind::RoundPlanned {
                    round: round as u32,
                    available: available.iter().map(|d| d.index() as u32).collect(),
                    versions: avail_versions.clone(),
                    probabilities: self
                        .planner
                        .last_probabilities()
                        .map(<[f64]>::to_vec)
                        .unwrap_or_default(),
                    selected: plan.selected.iter().map(|d| d.index() as u32).collect(),
                    unselected: unselected.clone(),
                    broadcaster: plan.broadcaster.index() as u32,
                },
            );
        }
        for &member in plan.ring.members() {
            let _ = port.send(
                member.index(),
                &Message::RoundPlan {
                    round: round as u32,
                    ring: ring.clone(),
                    broadcaster: plan.broadcaster.index() as u32,
                    unselected: unselected.clone(),
                },
            );
        }
        let mut version_row = vec![0u64; self.k];
        for (&d, &v) in &versions {
            version_row[d] = v as u64;
        }
        self.rounds_log.push(ThreadedRound {
            round,
            versions: version_row,
            selected: plan.selected.iter().map(|d| d.index()).collect(),
        });
        if self.tel.enabled() {
            self.tel.emit(
                now,
                EventKind::RoundComplete {
                    round: round as u32,
                    duration_us: now.saturating_sub(self.round_opened).as_micros() as u64,
                },
            );
        }

        if round >= self.rounds {
            // Shutdown goes to every device, dropped ones included —
            // being dropped from planning does not stop a device's
            // training loop, so it must still hear that the run is
            // over. Only live devices' final parameters are collected.
            for d in self.shutdown_targets() {
                let _ = port.send(d, &Message::Shutdown);
            }
            self.tel.emit(
                now,
                EventKind::ShutdownSent {
                    round: round as u32,
                },
            );
            self.tel.flush();
            self.phase = CoordPhase::Final {
                deadline: now + self.timing.final_deadline,
            };
        } else {
            self.round_opened = now;
            self.phase = CoordPhase::Window {
                round: round + 1,
                until: now + self.window,
            };
        }
        Ok(())
    }

    /// Who a cluster shutdown is addressed to: every device — unless
    /// the seeded PR-1 bug narrows it to the alive set, stranding
    /// dropped-but-running devices.
    fn shutdown_targets(&self) -> Vec<usize> {
        if seeded::shutdown_alive_only() {
            self.alive.iter().copied().collect()
        } else {
            (0..self.k).collect()
        }
    }
}

/// Runs the coordinator's protocol loop over `port` (see
/// [`CoordinatorActor`] for the script). Timing comes from a fresh
/// [`WallClock`]; see [`run_coordinator_with_clock`] for an injected
/// clock.
///
/// # Errors
///
/// Returns [`HadflError::ClusterDead`] when fewer than two devices
/// remain, and fabric errors from the transport.
pub fn run_coordinator<P: Port>(
    port: P,
    config: &HadflConfig,
    window: Duration,
    rounds: usize,
    timing: &ProtocolTiming,
) -> Result<CoordinatorRun, HadflError> {
    run_coordinator_with_clock(port, config, window, rounds, timing, &WallClock::new())
}

/// [`run_coordinator`] with an injected [`Clock`] (deterministic
/// tests).
///
/// # Errors
///
/// As [`run_coordinator`].
pub fn run_coordinator_with_clock<P: Port>(
    port: P,
    config: &HadflConfig,
    window: Duration,
    rounds: usize,
    timing: &ProtocolTiming,
    clock: &dyn Clock,
) -> Result<CoordinatorRun, HadflError> {
    run_coordinator_instrumented(
        port,
        config,
        window,
        rounds,
        timing,
        clock,
        Telemetry::disabled(),
    )
}

/// [`run_coordinator_with_clock`] with a telemetry handle: emits round
/// plans with their Eq. (8) selection probabilities, Eq. (7)
/// prediction-vs-actual versions, device drops, and round latencies.
///
/// # Errors
///
/// As [`run_coordinator`].
pub fn run_coordinator_instrumented<P: Port>(
    mut port: P,
    config: &HadflConfig,
    window: Duration,
    rounds: usize,
    timing: &ProtocolTiming,
    clock: &dyn Clock,
    tel: Telemetry,
) -> Result<CoordinatorRun, HadflError> {
    let k = port.participants() - 1;
    let planner = StrategyGenerator::new(config);
    let mut actor = CoordinatorActor::new(k, planner, window, rounds, timing.clone(), clock.now())
        .with_telemetry(tel);
    loop {
        match actor.hint(clock.now()) {
            CoordHint::Sleep(d) => {
                clock.sleep(d);
                actor.on_timer(&mut port, clock.now())?;
            }
            CoordHint::Timer => actor.on_timer(&mut port, clock.now())?,
            CoordHint::Recv(left) => match port.recv_timeout(left)? {
                Some(msg) => actor.on_message(&mut port, msg, clock.now())?,
                None => actor.on_timer(&mut port, clock.now())?,
            },
            CoordHint::Done => return Ok(actor.into_run()),
        }
    }
}

/// Runs HADFL over real threads and in-process channels. See the
/// module docs.
///
/// # Errors
///
/// Returns configuration/substrate errors from setup, and
/// [`HadflError::ClusterDead`] if fewer than two devices survive.
///
/// # Example
///
/// ```no_run
/// use hadfl::exec::{run_threaded, ThreadedOptions};
/// use hadfl::{HadflConfig, Workload};
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let report = run_threaded(
///     &Workload::quick("mlp", 0),
///     &HadflConfig::builder().build()?,
///     &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
/// )?;
/// println!("consensus accuracy {:.3}", report.final_accuracy);
/// # Ok(())
/// # }
/// ```
pub fn run_threaded(
    workload: &Workload,
    config: &HadflConfig,
    opts: &ThreadedOptions,
) -> Result<ThreadedReport, HadflError> {
    let k = validate_threaded(opts)?;
    let built = workload.build(k)?;
    let wall_clock = WallClock::new();

    let mut hub = ChannelTransport::hub(k + 1);
    let coordinator_port = hub.claim(coordinator_id(k))?;
    let mut device_ports = Vec::with_capacity(k);
    for i in 0..k {
        device_ports.push(hub.claim(i)?);
    }

    let outcome = thread::scope(|scope| -> Result<CoordinatorRun, HadflError> {
        let mut handles = Vec::with_capacity(k);
        for (i, (port, rt)) in device_ports.drain(..).zip(built.runtimes).enumerate() {
            let sleep = Duration::from_secs_f64(opts.step_sleep.as_secs_f64() / opts.powers[i]);
            let timing = opts.timing.clone();
            handles.push(scope.spawn(move || run_device(port, rt, config, sleep, &timing)));
        }
        let run = run_coordinator(
            coordinator_port,
            config,
            opts.window,
            opts.rounds,
            &opts.timing,
        )?;
        for handle in handles {
            handle
                .join()
                .map_err(|_| HadflError::InvalidConfig("device thread panicked".into()))??;
        }
        Ok(run)
    })?;

    // Consensus evaluation: average the collected final models.
    if outcome.final_models.is_empty() {
        return Err(HadflError::InvalidConfig(
            "no device uploaded final parameters".into(),
        ));
    }
    let refs: Vec<&[f32]> = outcome.final_models.values().map(Vec::as_slice).collect();
    let consensus = crate::aggregate::average_params(&refs)?;
    let mut built_eval = workload.build(k)?;
    let metrics = built_eval.evaluate_params(&consensus)?;

    let stats = hub.net_stats();
    Ok(ThreadedReport {
        rounds: outcome.rounds,
        final_accuracy: metrics.accuracy,
        peer_bytes: stats.total_bytes() - stats.server_bytes(),
        comm: CommSummary::from_stats(&stats, k),
        dropped: outcome.dropped,
        wall: wall_clock.now(),
    })
}

fn validate_threaded(opts: &ThreadedOptions) -> Result<usize, HadflError> {
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    if opts.rounds == 0 {
        return Err(HadflError::InvalidConfig("need at least 1 round".into()));
    }
    if opts.powers.iter().any(|&p| !(p > 0.0) || !p.is_finite()) {
        return Err(HadflError::InvalidConfig(format!(
            "bad powers {:?}",
            opts.powers
        )));
    }
    Ok(k)
}

/// [`run_threaded`] in virtual time: the same actors over the same
/// channel hub, but driven by one thread on a [`ManualClock`] as a
/// discrete-event simulation. Heterogeneity becomes exact — a power-4
/// device takes *exactly* 4× the local steps of a power-1 device per
/// window, because steps are scheduled at `step_sleep / power`
/// intervals of virtual time instead of raced against the OS
/// scheduler. Identical inputs give identical reports, so assertions
/// about relative progress ("the fast device outpaces the slow one")
/// hold on any host, however loaded.
///
/// The driver mirrors the blocking loops event-for-event: in-flight
/// messages are delivered to a fixpoint before time advances (channel
/// latency is zero in virtual time), then the clock jumps straight to
/// the earliest pending deadline — a device's next scheduled step, a
/// ring silence timeout, or the coordinator's window/report/final
/// deadline.
///
/// `report.wall` is virtual elapsed time.
///
/// # Errors
///
/// As [`run_threaded`].
pub fn run_virtual(
    workload: &Workload,
    config: &HadflConfig,
    opts: &ThreadedOptions,
) -> Result<ThreadedReport, HadflError> {
    let k = validate_threaded(opts)?;
    let built = workload.build(k)?;
    let clock = ManualClock::new();

    let mut hub = ChannelTransport::hub(k + 1);
    let mut coord_port = hub.claim(coordinator_id(k))?;
    let mut device_ports = Vec::with_capacity(k);
    for i in 0..k {
        device_ports.push(hub.claim(i)?);
    }

    let planner = StrategyGenerator::new(config);
    let mut coord = CoordinatorActor::new(
        k,
        planner,
        opts.window,
        opts.rounds,
        opts.timing.clone(),
        clock.now(),
    );

    let mut devices = Vec::with_capacity(k);
    let mut sleeps = Vec::with_capacity(k);
    let mut next_step = Vec::with_capacity(k);
    for (i, mut rt) in built.runtimes.into_iter().enumerate() {
        rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
        let mut actor = DeviceActor::new(i, k + 1, rt, config.blend_beta, opts.timing.clone());
        actor.begin_training(clock.now(), 1);
        devices.push(actor);
        // Like the blocking loop: step first, then wait out the sleep.
        sleeps.push(Duration::from_secs_f64(
            opts.step_sleep.as_secs_f64() / opts.powers[i],
        ));
        next_step.push(clock.now());
    }

    let outcome = loop {
        // Deliver every in-flight message before anything else happens:
        // virtual channels have zero latency, so a frame sent "now" is
        // readable "now". Actions below may send more — drain to a
        // fixpoint.
        loop {
            let mut progressed = false;
            while let Some(msg) = coord_port.try_recv()? {
                coord.on_message(&mut coord_port, msg, clock.now())?;
                progressed = true;
            }
            for (i, actor) in devices.iter_mut().enumerate() {
                while let Some(msg) = device_ports[i].try_recv()? {
                    // A finished device's leftovers are dead frames.
                    if !matches!(actor.hint(clock.now()), DeviceHint::Finished) {
                        actor.on_message(&mut device_ports[i], msg, clock.now())?;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        let now = clock.now();
        let coord_wake = match coord.hint(now) {
            CoordHint::Done => break coord.into_run(),
            CoordHint::Timer => {
                coord.on_timer(&mut coord_port, now)?;
                continue;
            }
            // The blocking driver's Sleep unconditionally ends in
            // on_timer, and an elapsed Recv's recv_timeout(0) returns
            // None into on_timer; both fire immediately here.
            CoordHint::Sleep(d) | CoordHint::Recv(d) if d.is_zero() => {
                coord.on_timer(&mut coord_port, now)?;
                continue;
            }
            CoordHint::Sleep(d) | CoordHint::Recv(d) => now + d,
        };

        // Local steps due at the current instant (ports are empty, so
        // idle is the right action, exactly as in the blocking loop).
        let mut stepped = false;
        for (i, actor) in devices.iter_mut().enumerate() {
            if matches!(actor.hint(now), DeviceHint::Train) && next_step[i] <= now {
                actor.on_idle(&mut device_ports[i])?;
                next_step[i] = now + sleeps[i];
                stepped = true;
            }
        }
        if stepped {
            continue;
        }

        // Nothing due now: jump to the earliest pending deadline.
        let mut wake = coord_wake;
        let mut ring_deadline: Vec<Option<Duration>> = vec![None; k];
        for (i, actor) in devices.iter().enumerate() {
            match actor.hint(now) {
                DeviceHint::Finished => {}
                DeviceHint::Train => wake = wake.min(next_step[i]),
                DeviceHint::Ring(wait) => {
                    let deadline = now + wait;
                    ring_deadline[i] = Some(deadline);
                    wake = wake.min(deadline);
                }
            }
        }
        clock.set(wake);

        // Ring waits that just elapsed with an empty port are silence:
        // fire the §III-D probe logic. (Train steps and coordinator
        // deadlines are re-derived from hints on the next iteration.)
        let now = clock.now();
        for (i, actor) in devices.iter_mut().enumerate() {
            if ring_deadline[i].is_some_and(|d| d <= now)
                && matches!(actor.hint(now), DeviceHint::Ring(_))
            {
                actor.on_timer(&mut device_ports[i], now)?;
            }
        }
    };

    if outcome.final_models.is_empty() {
        return Err(HadflError::InvalidConfig(
            "no device uploaded final parameters".into(),
        ));
    }
    let refs: Vec<&[f32]> = outcome.final_models.values().map(Vec::as_slice).collect();
    let consensus = crate::aggregate::average_params(&refs)?;
    let mut built_eval = workload.build(k)?;
    let metrics = built_eval.evaluate_params(&consensus)?;

    let stats = hub.net_stats();
    Ok(ThreadedReport {
        rounds: outcome.rounds,
        final_accuracy: metrics.accuracy,
        peer_bytes: stats.total_bytes() - stats.server_bytes(),
        comm: CommSummary::from_stats(&stats, k),
        dropped: outcome.dropped,
        wall: clock.now(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn quick_config(seed: u64) -> HadflConfig {
        HadflConfig::builder()
            .num_selected(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn threaded_run_completes_all_rounds() {
        let report = run_threaded(
            &Workload::quick("mlp", 61),
            &quick_config(61),
            &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
        )
        .unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.final_accuracy.is_finite());
        assert!(
            report.peer_bytes > 0,
            "parameters must have moved between threads"
        );
        assert!(report.wall >= Duration::from_millis(3 * 60));
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn fast_device_accumulates_more_versions() {
        // Virtual time makes the heterogeneity assertion exact: the
        // power-4 device steps every 2 ms of simulated time, the
        // power-1 device every 8 ms, so per 80 ms window the version
        // gap is 4x by construction — no OS scheduler involved.
        let report = run_virtual(
            &Workload::quick("mlp", 62),
            &quick_config(62),
            &ThreadedOptions {
                powers: vec![4.0, 1.0],
                step_sleep: Duration::from_millis(8),
                window: Duration::from_millis(80),
                rounds: 2,
                timing: ProtocolTiming::quick(),
            },
        )
        .unwrap();
        let last = report.rounds.last().unwrap();
        assert!(
            last.versions[0] > last.versions[1],
            "power-4 device should outpace power-1: {:?}",
            last.versions
        );
    }

    #[test]
    fn virtual_run_completes_rounds_and_is_deterministic() {
        let w = Workload::quick("mlp", 65);
        let c = quick_config(65);
        let opts = ThreadedOptions::quick(&[2.0, 1.0, 1.0]);
        let report = run_virtual(&w, &c, &opts).unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.final_accuracy.is_finite());
        assert!(
            report.peer_bytes > 0,
            "parameters must have moved through the hub"
        );
        assert!(report.dropped.is_empty());
        assert!(report.wall >= Duration::from_millis(3 * 60));

        let again = run_virtual(&w, &c, &opts).unwrap();
        assert_eq!(report.rounds, again.rounds);
        assert_eq!(report.wall, again.wall);
        assert_eq!(report.peer_bytes, again.peer_bytes);
        assert!((report.final_accuracy - again.final_accuracy).abs() < 1e-12);
    }

    #[test]
    fn virtual_run_validates_options_like_threaded() {
        let w = Workload::quick("mlp", 66);
        let c = quick_config(66);
        assert!(run_virtual(&w, &c, &ThreadedOptions::quick(&[1.0])).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.powers = vec![1.0, f64::NAN];
        assert!(run_virtual(&w, &c, &bad).is_err());
    }

    #[test]
    fn every_round_selects_a_valid_ring() {
        let report = run_threaded(
            &Workload::quick("mlp", 63),
            &quick_config(63),
            &ThreadedOptions::quick(&[1.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        for r in &report.rounds {
            assert_eq!(r.selected.len(), 2);
            assert!(r.selected.iter().all(|&d| d < 4));
        }
    }

    #[test]
    fn validates_options() {
        let w = Workload::quick("mlp", 64);
        let c = quick_config(64);
        assert!(run_threaded(&w, &c, &ThreadedOptions::quick(&[1.0])).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.rounds = 0;
        assert!(run_threaded(&w, &c, &bad).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.powers = vec![1.0, -1.0];
        assert!(run_threaded(&w, &c, &bad).is_err());
    }

    #[test]
    fn comm_ledger_matches_peer_bytes() {
        let report = run_threaded(
            &Workload::quick("mlp", 65),
            &quick_config(65),
            &ThreadedOptions::quick(&[1.0, 1.0, 1.0]),
        )
        .unwrap();
        let device_total: u64 = report.comm.total_bytes - report.comm.server_bytes;
        assert_eq!(report.peer_bytes, device_total);
        assert!(report.comm.messages > 0);
        // Control traffic through the coordinator must be negligible
        // next to the parameter frames (decentralization claim).
        assert!(report.comm.server_bytes < report.peer_bytes);
    }

    /// A device the coordinator drops keeps training — being excluded
    /// from planning does not stop its loop. Shutdown must reach it
    /// anyway, or the harness would block forever joining its thread.
    #[test]
    fn shutdown_reaches_dropped_devices() {
        let k = 3;
        let config = quick_config(67);
        let workload = Workload::quick("mlp", 67);
        let built = workload.build(k).unwrap();
        let mut timing = ProtocolTiming::quick();
        timing.report_deadline = Duration::from_millis(500);
        let step_sleep = Duration::from_millis(4);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let mute_id = 2usize;
        let mut mute_port = hub.claim(mute_id).unwrap();
        let mut ports: Vec<_> = (0..k)
            .filter(|&i| i != mute_id)
            .map(|i| hub.claim(i).unwrap())
            .collect();

        let outcome = thread::scope(|scope| {
            let mut runtimes: Vec<_> = built.runtimes.into_iter().enumerate().collect();
            runtimes.retain(|(i, _)| *i != mute_id);
            for ((_, rt), port) in runtimes.into_iter().zip(ports.drain(..)) {
                let timing = timing.clone();
                let config = &config;
                scope.spawn(move || run_device(port, rt, config, step_sleep, &timing));
            }
            // The mute device never reports (so it is dropped in round
            // 1) but stays alive until it hears Shutdown.
            scope.spawn(move || {
                let clock = WallClock::new();
                let deadline = clock.now() + Duration::from_secs(30);
                loop {
                    assert!(
                        clock.now() < deadline,
                        "dropped device never heard Shutdown"
                    );
                    if let Ok(Some(Message::Shutdown)) =
                        mute_port.recv_timeout(Duration::from_millis(100))
                    {
                        return;
                    }
                }
            });
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(60),
                2,
                &timing,
            )
        })
        .unwrap();

        assert!(
            outcome.dropped.iter().any(|&(d, _)| d == mute_id),
            "mute device must be dropped: {:?}",
            outcome.dropped
        );
        assert_eq!(outcome.final_models.len(), 2);
    }

    /// When the cluster collapses below two devices the coordinator
    /// errors out — but it must still shut the stragglers down instead
    /// of leaving them training forever.
    #[test]
    fn cluster_dead_still_shuts_devices_down() {
        let k = 2;
        let config = quick_config(68);
        let mut timing = ProtocolTiming::quick();
        timing.report_deadline = Duration::from_millis(300);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let mut mute_ports: Vec<_> = (0..k).map(|i| hub.claim(i).unwrap()).collect();

        let err = thread::scope(|scope| {
            for mut port in mute_ports.drain(..) {
                scope.spawn(move || {
                    let clock = WallClock::new();
                    let deadline = clock.now() + Duration::from_secs(30);
                    loop {
                        assert!(
                            clock.now() < deadline,
                            "device never heard Shutdown after ClusterDead"
                        );
                        if let Ok(Some(Message::Shutdown)) =
                            port.recv_timeout(Duration::from_millis(100))
                        {
                            return;
                        }
                    }
                });
            }
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(40),
                2,
                &timing,
            )
        })
        .unwrap_err();
        assert!(
            matches!(err, HadflError::ClusterDead { round: 1 }),
            "expected ClusterDead, got {err:?}"
        );
    }

    /// TCP gives no ordering between the coordinator's connection and a
    /// peer's: a ring frame can arrive before the RoundPlan it belongs
    /// to. The member must hold it and replay it once the plan lands.
    #[test]
    fn ring_frames_overtaking_their_plan_are_replayed() {
        let k = 2;
        let config = quick_config(69);
        let workload = Workload::quick("mlp", 69);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer_port = hub.claim(1).unwrap();

        thread::scope(|scope| {
            // The accumulation overtakes the plan that explains it.
            peer_port
                .send(
                    0,
                    &Message::ParamAccum {
                        round: 1,
                        hops: 1,
                        params: vec![0.5; dim],
                    },
                )
                .unwrap();
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![1, 0],
                        broadcaster: 1,
                        unselected: vec![],
                    },
                )
                .unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            // The device closes the reduce it replayed from its backlog.
            match peer_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1,
                    ttl: 1,
                    params,
                }) => assert_eq!(params.len(), dim),
                other => panic!("expected the merged model, got {other:?}"),
            }
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, .. }) => {}
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
        });
    }

    /// After a bypass, the dead member's upstream re-sends its last
    /// accumulation — which can reach a member that already added its
    /// parameters. The duplicate must not be counted twice.
    #[test]
    fn duplicate_accum_after_bypass_is_ignored() {
        let k = 3;
        let config = quick_config(70);
        let workload = Workload::quick("mlp", 70);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut peer2 = hub.claim(2).unwrap();

        thread::scope(|scope| {
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![1, 0, 2],
                        broadcaster: 1,
                        unselected: vec![],
                    },
                )
                .unwrap();
            let accum = Message::ParamAccum {
                round: 1,
                hops: 1,
                params: vec![3.0; dim],
            };
            peer1.send(0, &accum).unwrap();
            // A bypass-repair re-send of the same accumulation.
            peer1.send(0, &accum).unwrap();
            peer1
                .send(
                    0,
                    &Message::MergedParams {
                        round: 1,
                        ttl: 1,
                        params: vec![7.0; dim],
                    },
                )
                .unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, params }) => {
                    assert!(
                        params.iter().all(|&p| p == 7.0),
                        "device must install the merged model unchanged"
                    );
                }
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
            // Exactly one accumulation reaches the downstream: the
            // duplicate was dropped, not forwarded with doubled params.
            let mut accums = 0;
            while let Some(msg) = peer2.try_recv().unwrap() {
                if let Message::ParamAccum { hops, .. } = msg {
                    assert_eq!(hops, 2);
                    accums += 1;
                }
            }
            assert_eq!(accums, 1, "the re-sent duplicate must not be forwarded");
        });
    }

    /// A member that finished its ring and went back to training may
    /// still hold the only copy of the frame its (now dead) downstream
    /// never forwarded: a late BypassWarning must trigger the re-send
    /// even outside the ring loop.
    #[test]
    fn finished_member_repairs_ring_after_downstream_death() {
        let k = 3;
        let config = quick_config(71);
        let workload = Workload::quick("mlp", 71);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut peer2 = hub.claim(2).unwrap();

        thread::scope(|scope| {
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![2, 0, 1],
                        broadcaster: 2,
                        unselected: vec![],
                    },
                )
                .unwrap();
            // Device 0 closes the reduce and forwards the merged model
            // to its downstream 1...
            peer2
                .send(
                    0,
                    &Message::ParamAccum {
                        round: 1,
                        hops: 2,
                        params: vec![1.0; dim],
                    },
                )
                .unwrap();
            // ...which dies before forwarding; the stranded member 2
            // broadcasts the bypass.
            peer2.send(0, &Message::BypassWarning { dead: 1 }).unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            match peer1.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1, ttl: 2, ..
                }) => {}
                other => panic!("downstream 1 should get the merge first, got {other:?}"),
            }
            // The repair: device 0 re-sends its merged frame to the new
            // downstream even though its own ring is long finished.
            match peer2.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1,
                    ttl: 2,
                    params,
                }) => assert_eq!(params.len(), dim),
                other => panic!("stranded member must be repaired, got {other:?}"),
            }
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, .. }) => {}
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
        });
    }

    /// A planned ring member that dies silently mid-protocol: it
    /// reports versions (so the coordinator keeps planning it) but
    /// ignores ring frames and handshakes. The live members must detect
    /// it via the §III-D probe and close the ring around it.
    #[test]
    fn ring_bypasses_a_silent_member() {
        let k = 4;
        let seed = 66;
        let workload = Workload::quick("mlp", seed);
        // Select every device so the zombie is in the ring from round 1.
        let config = HadflConfig::builder()
            .num_selected(4)
            .seed(seed)
            .build()
            .unwrap();
        let built = workload.build(k).unwrap();
        let timing = ProtocolTiming::quick();
        let step_sleep = Duration::from_millis(4);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let zombie_id = 2usize;
        let mut zombie_port = hub.claim(zombie_id).unwrap();
        let mut ports: Vec<_> = (0..k)
            .filter(|&i| i != zombie_id)
            .map(|i| hub.claim(i).unwrap())
            .collect();

        let outcome = thread::scope(|scope| {
            let mut runtimes: Vec<_> = built.runtimes.into_iter().enumerate().collect();
            runtimes.retain(|(i, _)| *i != zombie_id);
            for ((_, rt), port) in runtimes.into_iter().zip(ports.drain(..)) {
                let timing = timing.clone();
                let config = &config;
                scope.spawn(move || run_device(port, rt, config, step_sleep, &timing));
            }
            // The zombie answers the first version report and then dies
            // silently — a death *after* planning, which only the
            // in-ring handshake path can catch.
            scope.spawn(move || loop {
                match zombie_port.recv_timeout(Duration::from_secs(5)) {
                    Ok(Some(Message::ReportRequest { round })) => {
                        let _ = zombie_port.send(
                            k,
                            &Message::VersionReport {
                                device: zombie_id as u32,
                                round,
                                version: 1.0,
                            },
                        );
                        return;
                    }
                    Ok(Some(_)) => {}
                    _ => return,
                }
            });
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(60),
                2,
                &timing,
            )
        })
        .unwrap();

        assert_eq!(outcome.rounds.len(), 2);
        assert!(
            outcome.dropped.iter().any(|&(d, _)| d == zombie_id),
            "zombie must be reported dead via the bypass path: {:?}",
            outcome.dropped
        );
        // The three live devices all upload final parameters.
        assert_eq!(outcome.final_models.len(), 3);
        assert!(!outcome.final_models.contains_key(&zombie_id));
    }

    /// A minimal [`TrainState`] for single-stepping the actors without
    /// a real training substrate.
    #[derive(Debug, Clone)]
    struct StubTrain {
        params: Vec<f32>,
        steps: u64,
    }

    impl TrainState for StubTrain {
        fn params(&self) -> Vec<f32> {
            self.params.clone()
        }
        fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
            self.params = params.to_vec();
            Ok(())
        }
        fn train_step(&mut self) -> Result<(), HadflError> {
            self.steps += 1;
            Ok(())
        }
        fn version(&self) -> f64 {
            self.steps as f64
        }
    }

    fn stub_actor(me: usize, k: usize) -> DeviceActor<StubTrain> {
        DeviceActor::new(
            me,
            k + 1,
            StubTrain {
                params: vec![1.0, 2.0],
                steps: 0,
            },
            0.5,
            ProtocolTiming::zero(),
        )
    }

    /// Single-stepped through a full two-member ring, the actor walks
    /// Training → Ring → Training → Finished and its digest changes at
    /// every transition.
    #[test]
    fn device_actor_single_steps_a_ring() {
        let k = 2;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(0).unwrap();
        let mut peer = hub.claim(1).unwrap();
        let mut actor = stub_actor(0, k);
        let t = Duration::ZERO;

        assert_eq!(actor.hint(t), DeviceHint::Train);
        let mut d0 = Vec::new();
        actor.digest_into(&mut d0);

        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![0, 1],
                    broadcaster: 0,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.ring_round(), Some(1));
        let mut d1 = Vec::new();
        actor.digest_into(&mut d1);
        assert_ne!(d0, d1, "entering the ring must change the digest");
        // As live[0] the actor initiated the reduce.
        match peer.try_recv().unwrap() {
            Some(Message::ParamAccum {
                round: 1, hops: 1, ..
            }) => {}
            other => panic!("expected the opening accumulation, got {other:?}"),
        }

        actor
            .on_message(
                &mut port,
                Message::MergedParams {
                    round: 1,
                    ttl: 1,
                    params: vec![5.0, 5.0],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.ring_round(), None);
        assert_eq!(actor.done_round(), 1);
        assert_eq!(actor.train().params, vec![5.0, 5.0]);

        actor.on_message(&mut port, Message::Shutdown, t).unwrap();
        assert!(actor.is_finished());
        assert_eq!(actor.hint(t), DeviceHint::Finished);
    }

    /// Two timer firings — probe, then expired probe — bypass a dead
    /// upstream, exactly the §III-D schedule the checker explores.
    #[test]
    fn device_actor_timers_drive_the_bypass() {
        let k = 3;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut peer2 = hub.claim(2).unwrap();
        let mut coord = hub.claim(k).unwrap();
        let mut actor = stub_actor(0, k);
        let t = Duration::ZERO;

        // Ring 2 → 0 → 1: the upstream 2 will never answer.
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![2, 0, 1],
                    broadcaster: 2,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        assert!(!actor.probe_armed());
        actor.on_timer(&mut port, t).unwrap();
        assert!(actor.probe_armed(), "first timer arms the probe");
        match peer2.try_recv().unwrap() {
            Some(Message::Handshake { from: 0 }) => {}
            other => panic!("expected a handshake probe, got {other:?}"),
        }
        actor.on_timer(&mut port, t).unwrap();
        assert!(!actor.probe_armed(), "second timer declares the death");
        match peer1.try_recv().unwrap() {
            Some(Message::BypassWarning { dead: 2 }) => {}
            other => panic!("ring peers must hear the bypass, got {other:?}"),
        }
        match coord.try_recv().unwrap() {
            Some(Message::BypassWarning { dead: 2 }) => {}
            other => panic!("coordinator must hear the bypass, got {other:?}"),
        }
        // The origin died silent, so this member (now first) initiates.
        match peer1.try_recv().unwrap() {
            Some(Message::ParamAccum {
                round: 1, hops: 1, ..
            }) => {}
            other => panic!("survivor must initiate the reduce, got {other:?}"),
        }
    }

    /// A live upstream's ack clears the probe instead of killing it.
    #[test]
    fn device_actor_ack_clears_probe() {
        let k = 2;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(0).unwrap();
        let _peer = hub.claim(1).unwrap();
        let mut actor = stub_actor(0, k);
        let t = Duration::ZERO;
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![1, 0],
                    broadcaster: 1,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        actor.on_timer(&mut port, t).unwrap();
        assert!(actor.probe_armed());
        actor
            .on_message(&mut port, Message::HandshakeAck { from: 1 }, t)
            .unwrap();
        assert!(!actor.probe_armed(), "ack must clear the §III-D probe");
        assert_eq!(actor.ring_round(), Some(1), "ring continues after ack");
    }

    /// The wrap-around bypass shape `hadfl-check` found: in ring
    /// 0→1→2→0, member 2 dies after 1 forwarded it the two-member
    /// accumulation; 1's bypass re-send hands the *complete* sum back
    /// to the already-contributed initiator 0, who must merge it (not
    /// drop it as a duplicate, which stalls the ring for good).
    #[test]
    fn complete_resend_to_contributed_initiator_finishes_the_ring() {
        let k = 3;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let _peer2 = hub.claim(2).unwrap();
        let mut actor = stub_actor(0, k);
        let t = Duration::ZERO;
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![0, 1, 2],
                    broadcaster: 0,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        // Initiator sent accum(hops=1) to 1; now its upstream 2 goes
        // silent: probe, then declare dead — live shrinks to [0, 1].
        actor.on_timer(&mut port, t).unwrap();
        assert!(actor.probe_armed());
        actor.on_timer(&mut port, t).unwrap();
        assert_eq!(actor.ring_round(), Some(1), "ring repaired, not done");
        // 1's bypass re-send: the accumulation that was addressed to
        // the dead 2, carrying both live members' parameters.
        actor
            .on_message(
                &mut port,
                Message::ParamAccum {
                    round: 1,
                    hops: 2,
                    params: vec![6.0, 6.0],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.done_round(), 1, "complete re-send ends the ring");
        assert_eq!(
            actor.train().params,
            vec![3.0, 3.0],
            "merged model is the accumulation averaged over its hops"
        );
        let mut merged = 0;
        while let Some(msg) = peer1.try_recv().unwrap() {
            if let Message::MergedParams {
                round: 1,
                ttl: 1,
                params,
            } = msg
            {
                assert_eq!(params, vec![3.0, 3.0]);
                merged += 1;
            }
        }
        assert_eq!(merged, 1, "survivor 1 must receive the merged model");
    }

    /// The warning-overtakes-plan shape `hadfl-check` found: device 2
    /// hears `BypassWarning(dead 0)` *before* the round-1 `RoundPlan`
    /// naming 0 arrives (independent connections give no ordering).
    /// Joining with the stale membership would forward the
    /// accumulation to dead 0 and stall the ring; instead the plan's
    /// membership must be filtered through the remembered death.
    #[test]
    fn bypass_warning_before_the_plan_filters_ring_membership() {
        let k = 3;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(2).unwrap();
        let _peer0 = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut actor = stub_actor(2, k);
        let t = Duration::ZERO;
        actor
            .on_message(&mut port, Message::BypassWarning { dead: 0 }, t)
            .unwrap();
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![0, 1, 2],
                    broadcaster: 0,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.ring_round(), Some(1), "ring runs without dead 0");
        // With 0 filtered out, 1 initiates; its hops-1 accumulation
        // closes the two-member ring at this actor.
        actor
            .on_message(
                &mut port,
                Message::ParamAccum {
                    round: 1,
                    hops: 1,
                    params: vec![5.0, 2.0],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.done_round(), 1, "two survivors finish the ring");
        assert_eq!(
            actor.train().params,
            vec![3.0, 2.0],
            "merge averages the initiator's [5, 2] with our own [1, 2]"
        );
        let mut merged = 0;
        while let Some(msg) = peer1.try_recv().unwrap() {
            if let Message::MergedParams {
                round: 1,
                ttl: 1,
                params,
            } = msg
            {
                assert_eq!(params, vec![3.0, 2.0]);
                merged += 1;
            }
        }
        assert_eq!(merged, 1, "initiator 1 must receive the merged model");
    }

    /// When every other planned member is already known dead, the ring
    /// dissolves at entry: the device keeps its local model, marks the
    /// round synchronized, and keeps training instead of stalling.
    #[test]
    fn ring_dissolved_at_entry_keeps_local_model() {
        let k = 2;
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(1).unwrap();
        let mut peer0 = hub.claim(0).unwrap();
        let mut actor = stub_actor(1, k);
        let t = Duration::ZERO;
        actor
            .on_message(&mut port, Message::BypassWarning { dead: 0 }, t)
            .unwrap();
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![0, 1],
                    broadcaster: 0,
                    unselected: vec![],
                },
                t,
            )
            .unwrap();
        assert_eq!(actor.ring_round(), None, "no ring with a lone member");
        assert_eq!(actor.done_round(), 1, "round counts as synchronized");
        assert_eq!(actor.train().params, vec![1.0, 2.0], "model untouched");
        assert_eq!(
            peer0.try_recv().unwrap(),
            None,
            "nothing may be sent to the dead member"
        );
    }

    /// The coordinator driver runs to completion on a [`ManualClock`]:
    /// virtual time advances through window, report deadline, and final
    /// deadline without any wall-clock waiting.
    #[test]
    fn coordinator_runs_on_a_manual_clock() {
        let k = 2;
        let config = quick_config(72);
        let timing = ProtocolTiming::quick();
        let clock = ManualClock::new();
        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let mut ports: Vec<_> = (0..k).map(|i| hub.claim(i).unwrap()).collect();

        let outcome = thread::scope(|scope| {
            for (i, mut port) in ports.drain(..).enumerate() {
                scope.spawn(move || {
                    // A scripted device: answer reports, echo ring
                    // frames to close the reduce, upload on shutdown.
                    let me = i;
                    loop {
                        match port.recv_timeout(Duration::from_secs(10)) {
                            Ok(Some(Message::ReportRequest { round })) => {
                                let _ = port.send(
                                    k,
                                    &Message::VersionReport {
                                        device: me as u32,
                                        round,
                                        version: 1.0,
                                    },
                                );
                            }
                            Ok(Some(Message::RoundPlan { round, ring, .. })) => {
                                // First member starts; the other just
                                // completes the two-hop reduce.
                                if ring.first() == Some(&(me as u32)) {
                                    let other = ring[1] as usize;
                                    let _ = port.send(
                                        other,
                                        &Message::ParamAccum {
                                            round,
                                            hops: 1,
                                            params: vec![1.0, 1.0],
                                        },
                                    );
                                }
                            }
                            Ok(Some(Message::ParamAccum { round, .. })) => {
                                let other = 1 - me;
                                let _ = port.send(
                                    other,
                                    &Message::MergedParams {
                                        round,
                                        ttl: 1,
                                        params: vec![1.0, 1.0],
                                    },
                                );
                            }
                            Ok(Some(Message::Shutdown)) => {
                                let _ = port.send(
                                    k,
                                    &Message::FinalParams {
                                        device: me as u32,
                                        params: vec![1.0, 1.0],
                                    },
                                );
                                return;
                            }
                            Ok(Some(_)) => {}
                            _ => return,
                        }
                    }
                });
            }
            run_coordinator_with_clock(
                coordinator_port,
                &config,
                Duration::from_millis(50),
                2,
                &timing,
                &clock,
            )
        })
        .unwrap();
        assert_eq!(outcome.rounds.len(), 2);
        assert_eq!(outcome.final_models.len(), 2);
        assert!(outcome.dropped.is_empty());
        assert!(
            clock.now() >= Duration::from_millis(100),
            "windows must have advanced the virtual clock"
        );
    }
}
