//! Deployed executor: HADFL over a real message fabric.
//!
//! The virtual-time [`crate::driver`] is what the experiments use; this
//! module runs the same protocol with *actual concurrency*, the way the
//! paper deploys it — one participant per thread or process,
//! heterogeneity emulated with `sleep()` (exactly the paper's method),
//! parameters moving as encoded [`crate::wire::Message`] frames over a
//! [`Port`](crate::transport::Port), and the ring reduce/distribute
//! executed hop by hop between devices. The coordinator only ever sees
//! control-plane messages plus the final parameter uploads.
//!
//! The protocol loops — [`run_device`] and [`run_coordinator`] — are
//! transport-agnostic. [`run_threaded`] wires them to the in-process
//! [`ChannelTransport`]; `hadfl-net` wires the same loops to TCP
//! sockets for multi-process clusters.
//!
//! Fault tolerance follows §III-D: a ring member that goes silent is
//! probed with [`Message::Handshake`]; absent an ack, the prober
//! broadcasts [`Message::BypassWarning`] and the ring closes around the
//! dead device, the dead device's upstream re-sending its last frame to
//! its new downstream. The coordinator also drops devices that miss a
//! report deadline and excludes them from later plans.

use std::collections::{BTreeMap, BTreeSet};
use std::thread;
use std::time::{Duration, Instant};

use hadfl_nn::LrSchedule;

use crate::aggregate::blend_params;
use crate::config::HadflConfig;
use crate::coordinator::StrategyGenerator;
use crate::error::HadflError;
use crate::trace::CommSummary;
use crate::transport::{coordinator_id, ChannelTransport, Port};
use crate::wire::Message;
use crate::workload::{DeviceRuntime, Workload};
use hadfl_simnet::DeviceId;

/// Failure-detection and deadline knobs of the deployed protocol.
#[derive(Debug, Clone)]
pub struct ProtocolTiming {
    /// Ring silence before the downstream probes its upstream (§III-D).
    pub ring_wait: Duration,
    /// Wait after a [`Message::Handshake`] before declaring the peer
    /// dead.
    pub handshake_wait: Duration,
    /// Coordinator's deadline for a round's version reports; devices
    /// that miss it are dropped from future plans.
    pub report_deadline: Duration,
    /// Coordinator's deadline for final parameter uploads at shutdown.
    pub final_deadline: Duration,
    /// Hard cap on one ring synchronization before a member gives up.
    pub ring_hard_limit: Duration,
}

impl Default for ProtocolTiming {
    fn default() -> Self {
        ProtocolTiming {
            ring_wait: Duration::from_secs(10),
            handshake_wait: Duration::from_secs(2),
            report_deadline: Duration::from_secs(10),
            final_deadline: Duration::from_secs(30),
            ring_hard_limit: Duration::from_secs(120),
        }
    }
}

impl ProtocolTiming {
    /// Tight timeouts for in-process tests: failures are detected in
    /// hundreds of milliseconds instead of tens of seconds.
    pub fn quick() -> Self {
        ProtocolTiming {
            ring_wait: Duration::from_millis(400),
            handshake_wait: Duration::from_millis(250),
            report_deadline: Duration::from_secs(5),
            final_deadline: Duration::from_secs(10),
            ring_hard_limit: Duration::from_secs(30),
        }
    }
}

/// Options of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOptions {
    /// Computing-power ratios, one device thread per entry.
    pub powers: Vec<f64>,
    /// Emulated compute time per local step on a power-1 device (the
    /// paper's `sleep()`); device `i` sleeps `step_sleep / powers[i]`.
    pub step_sleep: Duration,
    /// Wall-clock synchronization window.
    pub window: Duration,
    /// Number of synchronization rounds to run.
    pub rounds: usize,
    /// Failure-detection and deadline knobs.
    pub timing: ProtocolTiming,
}

impl ThreadedOptions {
    /// CI-scale options: short sleeps, a few windows.
    pub fn quick(powers: &[f64]) -> Self {
        ThreadedOptions {
            powers: powers.to_vec(),
            step_sleep: Duration::from_millis(4),
            window: Duration::from_millis(60),
            rounds: 3,
            timing: ProtocolTiming::quick(),
        }
    }
}

/// One synchronization round of a deployed run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedRound {
    /// Round index from 1.
    pub round: usize,
    /// Cumulative local steps per device at sync time (0 for devices
    /// already dropped).
    pub versions: Vec<u64>,
    /// Devices selected for the ring.
    pub selected: Vec<usize>,
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Per-round records.
    pub rounds: Vec<ThreadedRound>,
    /// Test accuracy of the post-run consensus (average of the final
    /// models the coordinator collected).
    pub final_accuracy: f32,
    /// Total bytes moved between device threads (encoded frames).
    pub peer_bytes: u64,
    /// Full per-participant byte ledger of the run, comparable with the
    /// analytical driver's [`CommSummary`].
    pub comm: CommSummary,
    /// Devices the coordinator dropped (missed reports or bypass
    /// warnings), with the round they were dropped in.
    pub dropped: Vec<(usize, usize)>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

/// What the coordinator learned from a deployed run.
#[derive(Debug)]
pub struct CoordinatorRun {
    /// Per-round records.
    pub rounds: Vec<ThreadedRound>,
    /// Final parameters per device that uploaded before the deadline.
    pub final_models: BTreeMap<usize, Vec<f32>>,
    /// Devices dropped mid-run, with the round they were dropped in.
    pub dropped: Vec<(usize, usize)>,
}

/// How a device left the ring synchronization.
enum RingExit {
    /// Merge complete (or ring dissolved); back to local training.
    Done,
    /// A [`Message::Shutdown`] arrived mid-ring.
    Shutdown,
}

/// Per-round ring state of one member (§III-D bookkeeping).
struct RingRun {
    /// Round this ring synchronizes; ring frames carry the same tag.
    round: u32,
    /// Live members in ring order; shrinks as deaths are bypassed.
    live: Vec<usize>,
    /// Broadcaster for the round's merged model.
    broadcaster: usize,
    /// Devices to broadcast the merged model to.
    unselected: Vec<usize>,
    /// Last frame this member sent, with its recipient — re-sent when
    /// the recipient is declared dead.
    last_sent: Option<(usize, Message)>,
    /// Set once this member has installed the merged model; duplicate
    /// merges (possible after a re-send) are ignored.
    merged_done: bool,
    /// Set once this member's parameters are inside an accumulation it
    /// forwarded; a re-sent [`Message::ParamAccum`] (possible after a
    /// bypass) must not count the member twice.
    contributed: bool,
}

/// The round a ring frame belongs to; `None` for non-ring messages.
fn ring_frame_round(msg: &Message) -> Option<u32> {
    match msg {
        Message::ParamAccum { round, .. } | Message::MergedParams { round, .. } => Some(*round),
        _ => None,
    }
}

/// Holds a ring frame that belongs to a different round than the ring
/// currently running: frames for future rounds are replayed when their
/// plan arrives, frames for past rounds are re-send duplicates and are
/// dropped.
fn stash_ring_frame(backlog: &mut Vec<Message>, current: u32, msg: Message) {
    if ring_frame_round(&msg).is_some_and(|r| r > current) {
        backlog.push(msg);
    }
}

impl RingRun {
    fn pos(&self, id: usize) -> Option<usize> {
        self.live.iter().position(|&d| d == id)
    }

    fn downstream(&self, id: usize) -> usize {
        let pos = self.pos(id).expect("member of own ring");
        self.live[(pos + 1) % self.live.len()]
    }

    fn upstream(&self, id: usize) -> usize {
        let pos = self.pos(id).expect("member of own ring");
        self.live[(pos + self.live.len() - 1) % self.live.len()]
    }
}

/// Runs one device's protocol loop over `port` until the coordinator
/// sends [`Message::Shutdown`]; the device then uploads its final
/// parameters and returns.
///
/// The loop trains one heterogeneity-aware local step at a time
/// (sleeping `step_sleep` per step to emulate compute power), answers
/// [`Message::Handshake`] probes, reports versions on request, joins
/// ring synchronizations it is planned into, and blends broadcast
/// models it receives while unselected.
///
/// # Errors
///
/// Returns substrate errors from training, and
/// [`HadflError::InvalidConfig`] when the fabric is torn down or a ring
/// synchronization exceeds `timing.ring_hard_limit`.
pub fn run_device<P: Port>(
    mut port: P,
    mut rt: DeviceRuntime,
    config: &HadflConfig,
    step_sleep: Duration,
    timing: &ProtocolTiming,
) -> Result<(), HadflError> {
    let me = port.id();
    let coord = coordinator_id(port.participants() - 1);
    rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
    // Highest round whose ring this member finished, that ring's state
    // (kept: a late §III-D bypass may still need this member's last
    // frame re-sent), and ring frames that overtook their RoundPlan —
    // TCP gives no ordering between the coordinator's connection and a
    // peer's, so an accumulation can arrive before the plan it belongs
    // to.
    let mut done_round = 0u32;
    let mut last_ring: Option<RingRun> = None;
    let mut backlog: Vec<Message> = Vec::new();
    loop {
        match port.try_recv()? {
            Some(Message::Shutdown) => {
                let _ = port.send(
                    coord,
                    &Message::FinalParams {
                        device: me as u32,
                        params: rt.model.param_vector(),
                    },
                );
                return Ok(());
            }
            Some(Message::ReportRequest { round }) => {
                let _ = port.send(
                    coord,
                    &Message::VersionReport {
                        device: me as u32,
                        round,
                        version: rt.steps_done as f64,
                    },
                );
            }
            Some(Message::RoundPlan {
                round,
                ring,
                broadcaster,
                unselected,
            }) => {
                let mut run = RingRun {
                    round,
                    live: ring.iter().map(|&d| d as usize).collect(),
                    broadcaster: broadcaster as usize,
                    unselected: unselected.iter().map(|&d| d as usize).collect(),
                    last_sent: None,
                    merged_done: false,
                    contributed: false,
                };
                if run.pos(me).is_none() {
                    continue; // not addressed to us; stale broadcast
                }
                // Frames for rings before this one are dead history.
                backlog.retain(|m| ring_frame_round(m).is_some_and(|r| r >= round));
                let exit = run_ring(
                    &mut port,
                    &mut rt,
                    &mut run,
                    me,
                    coord,
                    timing,
                    &mut backlog,
                )?;
                done_round = done_round.max(round);
                last_ring = Some(run);
                match exit {
                    RingExit::Done => {}
                    RingExit::Shutdown => {
                        let _ = port.send(
                            coord,
                            &Message::FinalParams {
                                device: me as u32,
                                params: rt.model.param_vector(),
                            },
                        );
                        return Ok(());
                    }
                }
            }
            Some(Message::ParamSync { params, .. }) => {
                // Unselected device receiving the broadcast: blend
                // non-blockingly and keep training.
                let mut local = rt.model.param_vector();
                blend_params(&mut local, &params, config.blend_beta)?;
                rt.model.set_param_vector(&local)?;
            }
            Some(Message::Handshake { from }) => {
                let _ = port.send(from as usize, &Message::HandshakeAck { from: me as u32 });
            }
            Some(msg @ (Message::ParamAccum { .. } | Message::MergedParams { .. })) => {
                // A ring frame outside a ring: either it overtook its
                // RoundPlan (hold it for the plan) or it is a re-send
                // duplicate for a ring already finished (drop it).
                if ring_frame_round(&msg).is_some_and(|r| r > done_round) {
                    backlog.push(msg);
                }
            }
            Some(Message::BypassWarning { dead }) => {
                // A death in the ring this member already finished: if
                // the member's last frame was addressed to the dead
                // device, the stranded new downstream still needs it.
                if let Some(run) = last_ring.as_mut() {
                    bypass_in_finished_ring(&mut port, run, me, dead as usize);
                }
            }
            Some(_) => {} // heartbeats, stale acks
            None => {
                // No command: one heterogeneity-aware local step.
                rt.train_steps(1)?;
                thread::sleep(step_sleep);
            }
        }
    }
}

/// Applies a [`Message::BypassWarning`] to a ring this member already
/// finished. The member forwarded its last frame and left the ring
/// loop; if that frame's recipient is the one now declared dead, the
/// frame never reached the rest of the ring and must be re-sent to the
/// new downstream.
fn bypass_in_finished_ring<P: Port>(port: &mut P, run: &mut RingRun, me: usize, dead: usize) {
    if dead == me || run.pos(dead).is_none() {
        return;
    }
    run.live.retain(|&d| d != dead);
    if run.live.len() < 2 {
        return;
    }
    if let Some((to, msg)) = run.last_sent.clone() {
        if to == dead {
            let downstream = run.downstream(me);
            send_ring(port, run, downstream, msg);
        }
    }
}

/// Sends `msg` to `to`, recording it as the member's re-sendable last
/// frame. A send failure is treated as silence: the §III-D probe will
/// catch the dead peer.
fn send_ring<P: Port>(port: &mut P, run: &mut RingRun, to: usize, msg: Message) {
    let _ = port.send(to, &msg);
    run.last_sent = Some((to, msg));
}

/// Finishes the reduce half: installs the mean, starts the distribute
/// half, and broadcasts to the unselected if this member is the
/// round's broadcaster.
fn finish_reduce<P: Port>(
    port: &mut P,
    rt: &mut DeviceRuntime,
    run: &mut RingRun,
    me: usize,
    mut params: Vec<f32>,
    hops: u32,
) -> Result<(), HadflError> {
    let scale = 1.0 / hops as f32;
    for a in &mut params {
        *a *= scale;
    }
    rt.model.set_param_vector(&params)?;
    run.merged_done = true;
    if run.live.len() > 1 {
        let downstream = run.downstream(me);
        send_ring(
            port,
            run,
            downstream,
            Message::MergedParams {
                round: run.round,
                ttl: (run.live.len() - 1) as u32,
                params: params.clone(),
            },
        );
    }
    broadcast_if_mine(port, run, me, &params);
    Ok(())
}

/// Sends the merged model to every unselected device if `me` is (or has
/// replaced) the broadcaster.
fn broadcast_if_mine<P: Port>(port: &mut P, run: &RingRun, me: usize, params: &[f32]) {
    // If the planned broadcaster died, the first live member inherits
    // the role so the unselected still hear about the round.
    let effective = if run.live.contains(&run.broadcaster) {
        run.broadcaster
    } else {
        run.live[0]
    };
    if effective != me {
        return;
    }
    for &u in &run.unselected {
        let _ = port.send(
            u,
            &Message::ParamSync {
                round: run.round,
                params: params.to_vec(),
            },
        );
    }
}

/// After `dead` was removed from `run.live`: re-send the last frame if
/// it was addressed to the dead member, or initiate the reduce if the
/// origin died before anything was sent.
fn repair_after_bypass<P: Port>(
    port: &mut P,
    rt: &mut DeviceRuntime,
    run: &mut RingRun,
    me: usize,
    dead: usize,
) {
    match run.last_sent.clone() {
        Some((to, msg)) if to == dead => {
            let downstream = run.downstream(me);
            send_ring(port, run, downstream, msg);
        }
        None if run.live[0] == me && !run.merged_done => {
            // The origin died silent; its downstream (now first) starts
            // the reduce.
            run.contributed = true;
            let downstream = run.downstream(me);
            send_ring(
                port,
                run,
                downstream,
                Message::ParamAccum {
                    round: run.round,
                    hops: 1,
                    params: rt.model.param_vector(),
                },
            );
        }
        _ => {}
    }
}

/// One member's participation in one ring synchronization, with §III-D
/// death detection and bypass.
fn run_ring<P: Port>(
    port: &mut P,
    rt: &mut DeviceRuntime,
    run: &mut RingRun,
    me: usize,
    coord: usize,
    timing: &ProtocolTiming,
    backlog: &mut Vec<Message>,
) -> Result<RingExit, HadflError> {
    let started = Instant::now();
    // The first member initiates the reduce with its own parameters.
    if run.live[0] == me {
        run.contributed = true;
        let downstream = run.downstream(me);
        send_ring(
            port,
            run,
            downstream,
            Message::ParamAccum {
                round: run.round,
                hops: 1,
                params: rt.model.param_vector(),
            },
        );
    }
    // `probe`: upstream we handshaked, and the ack deadline.
    let mut probe: Option<(usize, Instant)> = None;
    while !run.merged_done {
        if started.elapsed() > timing.ring_hard_limit {
            return Err(HadflError::InvalidConfig(
                "ring synchronization stalled".into(),
            ));
        }
        // Frames for this ring that arrived before its RoundPlan (or
        // during an earlier ring) are replayed before the socket is
        // polled.
        let next = match backlog
            .iter()
            .position(|m| ring_frame_round(m) == Some(run.round))
        {
            Some(held) => Some(backlog.remove(held)),
            None => {
                let wait = match probe {
                    Some((_, deadline)) => deadline.saturating_duration_since(Instant::now()),
                    None => timing.ring_wait,
                };
                port.recv_timeout(wait.max(Duration::from_millis(1)))?
            }
        };
        match next {
            Some(Message::ParamAccum {
                round,
                hops,
                mut params,
            }) => {
                if round != run.round {
                    stash_ring_frame(
                        backlog,
                        run.round,
                        Message::ParamAccum {
                            round,
                            hops,
                            params,
                        },
                    );
                    continue;
                }
                probe = None;
                if run.contributed {
                    // Re-send duplicate after a bypass: our parameters
                    // already ride an accumulation we forwarded; adding
                    // them again would skew the merged mean.
                    continue;
                }
                run.contributed = true;
                let mine = rt.model.param_vector();
                for (a, m) in params.iter_mut().zip(&mine) {
                    *a += m;
                }
                let hops = hops + 1;
                if hops as usize >= run.live.len() {
                    finish_reduce(port, rt, run, me, params, hops)?;
                } else {
                    let downstream = run.downstream(me);
                    send_ring(
                        port,
                        run,
                        downstream,
                        Message::ParamAccum {
                            round: run.round,
                            hops,
                            params,
                        },
                    );
                }
            }
            Some(Message::MergedParams { round, ttl, params }) => {
                if round != run.round {
                    stash_ring_frame(
                        backlog,
                        run.round,
                        Message::MergedParams { round, ttl, params },
                    );
                    continue;
                }
                probe = None;
                rt.model.set_param_vector(&params)?;
                run.merged_done = true;
                if ttl > 1 {
                    let downstream = run.downstream(me);
                    send_ring(
                        port,
                        run,
                        downstream,
                        Message::MergedParams {
                            round: run.round,
                            ttl: ttl - 1,
                            params: params.clone(),
                        },
                    );
                }
                broadcast_if_mine(port, run, me, &params);
            }
            Some(Message::Handshake { from }) => {
                let _ = port.send(from as usize, &Message::HandshakeAck { from: me as u32 });
            }
            Some(Message::HandshakeAck { from }) => {
                if let Some((suspect, _)) = probe {
                    if suspect == from as usize {
                        // Upstream is alive, just slow; wait afresh.
                        probe = None;
                    }
                }
            }
            Some(Message::BypassWarning { dead }) => {
                let dead = dead as usize;
                if run.pos(dead).is_some() {
                    run.live.retain(|&d| d != dead);
                    if let Some((suspect, _)) = probe {
                        if suspect == dead {
                            probe = None;
                        }
                    }
                    if run.live.len() < 2 {
                        run.merged_done = true; // dissolved; keep local model
                    } else {
                        repair_after_bypass(port, rt, run, me, dead);
                    }
                }
            }
            Some(Message::ReportRequest { round }) => {
                let _ = port.send(
                    coord,
                    &Message::VersionReport {
                        device: me as u32,
                        round,
                        version: rt.steps_done as f64,
                    },
                );
            }
            Some(Message::Shutdown) => return Ok(RingExit::Shutdown),
            Some(_) => {} // heartbeats, broadcasts meant for the unselected
            None => {
                match probe {
                    Some((suspect, deadline)) if Instant::now() >= deadline => {
                        // §III-D: no ack — declare the upstream dead,
                        // warn everyone, bypass.
                        probe = None;
                        for &member in &run.live {
                            if member != me && member != suspect {
                                let _ = port.send(
                                    member,
                                    &Message::BypassWarning {
                                        dead: suspect as u32,
                                    },
                                );
                            }
                        }
                        let _ = port.send(
                            coord,
                            &Message::BypassWarning {
                                dead: suspect as u32,
                            },
                        );
                        run.live.retain(|&d| d != suspect);
                        if run.live.len() < 2 {
                            run.merged_done = true;
                        } else {
                            repair_after_bypass(port, rt, run, me, suspect);
                        }
                    }
                    Some(_) => {} // ack still pending
                    None => {
                        // Silence: probe the upstream we are waiting on.
                        let suspect = run.upstream(me);
                        let _ = port.send(suspect, &Message::Handshake { from: me as u32 });
                        probe = Some((suspect, Instant::now() + timing.handshake_wait));
                    }
                }
            }
        }
    }
    Ok(RingExit::Done)
}

/// Runs the coordinator's protocol loop over `port`: per round, waits
/// out the window, collects version reports (dropping devices that miss
/// the deadline or are reported dead by a ring), plans the ring via
/// [`StrategyGenerator`], and distributes the plan. After the last
/// round it shuts the cluster down and collects final parameters.
///
/// # Errors
///
/// Returns [`HadflError::ClusterDead`] when fewer than two devices
/// remain, and fabric errors from the transport.
pub fn run_coordinator<P: Port>(
    mut port: P,
    config: &HadflConfig,
    window: Duration,
    rounds: usize,
    timing: &ProtocolTiming,
) -> Result<CoordinatorRun, HadflError> {
    let k = port.participants() - 1;
    let mut alive: BTreeSet<usize> = (0..k).collect();
    let mut dropped: Vec<(usize, usize)> = Vec::new();
    let mut generator = StrategyGenerator::new(config);
    let mut rounds_log = Vec::with_capacity(rounds);

    for round in 1..=rounds {
        thread::sleep(window);
        for &d in &alive {
            let _ = port.send(
                d,
                &Message::ReportRequest {
                    round: round as u32,
                },
            );
        }
        let mut versions: BTreeMap<usize, f64> = BTreeMap::new();
        let deadline = Instant::now() + timing.report_deadline;
        while versions.len() < alive.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match port.recv_timeout(left)? {
                Some(Message::VersionReport {
                    device, version, ..
                }) => {
                    let device = device as usize;
                    if alive.contains(&device) {
                        versions.insert(device, version);
                    }
                }
                Some(Message::BypassWarning { dead }) => {
                    let dead = dead as usize;
                    if alive.remove(&dead) {
                        dropped.push((dead, round));
                        versions.remove(&dead);
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        // §III-D, coordinator side: missing the deadline means dead.
        let missing: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|d| !versions.contains_key(d))
            .collect();
        for d in missing {
            alive.remove(&d);
            dropped.push((d, round));
        }
        if alive.len() < 2 {
            // Best-effort shutdown of *every* device, dropped included:
            // a device the coordinator dropped may well still be
            // running, and without a Shutdown it would train forever
            // (and a threaded harness would never join its thread).
            for d in 0..k {
                let _ = port.send(d, &Message::Shutdown);
            }
            return Err(HadflError::ClusterDead { round });
        }

        let available: Vec<DeviceId> = alive.iter().map(|&d| DeviceId(d)).collect();
        let avail_versions: Vec<f64> = available.iter().map(|d| versions[&d.index()]).collect();
        let plan = generator.plan_round(&available, &avail_versions)?;
        let ring: Vec<u32> = plan
            .ring
            .members()
            .iter()
            .map(|d| d.index() as u32)
            .collect();
        let unselected: Vec<u32> = plan.unselected.iter().map(|d| d.index() as u32).collect();
        for &member in plan.ring.members() {
            let _ = port.send(
                member.index(),
                &Message::RoundPlan {
                    round: round as u32,
                    ring: ring.clone(),
                    broadcaster: plan.broadcaster.index() as u32,
                    unselected: unselected.clone(),
                },
            );
        }
        let mut version_row = vec![0u64; k];
        for (&d, &v) in &versions {
            version_row[d] = v as u64;
        }
        rounds_log.push(ThreadedRound {
            round,
            versions: version_row,
            selected: plan.selected.iter().map(|d| d.index()).collect(),
        });
    }

    // Shutdown goes to every device, dropped ones included — being
    // dropped from planning does not stop a device's training loop, so
    // it must still hear that the run is over. Only live devices'
    // final parameters are collected.
    for d in 0..k {
        let _ = port.send(d, &Message::Shutdown);
    }
    let mut final_models: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    let deadline = Instant::now() + timing.final_deadline;
    while final_models.len() < alive.len() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match port.recv_timeout(left)? {
            Some(Message::FinalParams { device, params }) => {
                let device = device as usize;
                if alive.contains(&device) {
                    final_models.insert(device, params);
                }
            }
            Some(Message::BypassWarning { dead }) => {
                let dead = dead as usize;
                if alive.remove(&dead) {
                    dropped.push((dead, rounds));
                }
            }
            Some(_) => {}
            None => break,
        }
    }
    Ok(CoordinatorRun {
        rounds: rounds_log,
        final_models,
        dropped,
    })
}

/// Runs HADFL over real threads and in-process channels. See the
/// module docs.
///
/// # Errors
///
/// Returns configuration/substrate errors from setup, and
/// [`HadflError::ClusterDead`] if fewer than two devices survive.
///
/// # Example
///
/// ```no_run
/// use hadfl::exec::{run_threaded, ThreadedOptions};
/// use hadfl::{HadflConfig, Workload};
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let report = run_threaded(
///     &Workload::quick("mlp", 0),
///     &HadflConfig::builder().build()?,
///     &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
/// )?;
/// println!("consensus accuracy {:.3}", report.final_accuracy);
/// # Ok(())
/// # }
/// ```
pub fn run_threaded(
    workload: &Workload,
    config: &HadflConfig,
    opts: &ThreadedOptions,
) -> Result<ThreadedReport, HadflError> {
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    if opts.rounds == 0 {
        return Err(HadflError::InvalidConfig("need at least 1 round".into()));
    }
    if opts.powers.iter().any(|&p| !(p > 0.0) || !p.is_finite()) {
        return Err(HadflError::InvalidConfig(format!(
            "bad powers {:?}",
            opts.powers
        )));
    }
    let built = workload.build(k)?;
    let start = Instant::now();

    let mut hub = ChannelTransport::hub(k + 1);
    let coordinator_port = hub.claim(coordinator_id(k))?;
    let mut device_ports = Vec::with_capacity(k);
    for i in 0..k {
        device_ports.push(hub.claim(i)?);
    }

    let outcome = thread::scope(|scope| -> Result<CoordinatorRun, HadflError> {
        let mut handles = Vec::with_capacity(k);
        for (i, (port, rt)) in device_ports.drain(..).zip(built.runtimes).enumerate() {
            let sleep = Duration::from_secs_f64(opts.step_sleep.as_secs_f64() / opts.powers[i]);
            let timing = opts.timing.clone();
            handles.push(scope.spawn(move || run_device(port, rt, config, sleep, &timing)));
        }
        let run = run_coordinator(
            coordinator_port,
            config,
            opts.window,
            opts.rounds,
            &opts.timing,
        )?;
        for handle in handles {
            handle
                .join()
                .map_err(|_| HadflError::InvalidConfig("device thread panicked".into()))??;
        }
        Ok(run)
    })?;

    // Consensus evaluation: average the collected final models.
    if outcome.final_models.is_empty() {
        return Err(HadflError::InvalidConfig(
            "no device uploaded final parameters".into(),
        ));
    }
    let refs: Vec<&[f32]> = outcome.final_models.values().map(Vec::as_slice).collect();
    let consensus = crate::aggregate::average_params(&refs)?;
    let mut built_eval = workload.build(k)?;
    let metrics = built_eval.evaluate_params(&consensus)?;

    let stats = hub.net_stats();
    Ok(ThreadedReport {
        rounds: outcome.rounds,
        final_accuracy: metrics.accuracy,
        peer_bytes: stats.total_bytes() - stats.server_bytes(),
        comm: CommSummary::from_stats(&stats, k),
        dropped: outcome.dropped,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> HadflConfig {
        HadflConfig::builder()
            .num_selected(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn threaded_run_completes_all_rounds() {
        let report = run_threaded(
            &Workload::quick("mlp", 61),
            &quick_config(61),
            &ThreadedOptions::quick(&[2.0, 1.0, 1.0]),
        )
        .unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.final_accuracy.is_finite());
        assert!(
            report.peer_bytes > 0,
            "parameters must have moved between threads"
        );
        assert!(report.wall >= Duration::from_millis(3 * 60));
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn fast_device_accumulates_more_versions() {
        let report = run_threaded(
            &Workload::quick("mlp", 62),
            &quick_config(62),
            &ThreadedOptions {
                powers: vec![4.0, 1.0],
                step_sleep: Duration::from_millis(8),
                window: Duration::from_millis(80),
                rounds: 2,
                timing: ProtocolTiming::quick(),
            },
        )
        .unwrap();
        let last = report.rounds.last().unwrap();
        assert!(
            last.versions[0] > last.versions[1],
            "power-4 device should outpace power-1: {:?}",
            last.versions
        );
    }

    #[test]
    fn every_round_selects_a_valid_ring() {
        let report = run_threaded(
            &Workload::quick("mlp", 63),
            &quick_config(63),
            &ThreadedOptions::quick(&[1.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        for r in &report.rounds {
            assert_eq!(r.selected.len(), 2);
            assert!(r.selected.iter().all(|&d| d < 4));
        }
    }

    #[test]
    fn validates_options() {
        let w = Workload::quick("mlp", 64);
        let c = quick_config(64);
        assert!(run_threaded(&w, &c, &ThreadedOptions::quick(&[1.0])).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.rounds = 0;
        assert!(run_threaded(&w, &c, &bad).is_err());
        let mut bad = ThreadedOptions::quick(&[1.0, 1.0]);
        bad.powers = vec![1.0, -1.0];
        assert!(run_threaded(&w, &c, &bad).is_err());
    }

    #[test]
    fn comm_ledger_matches_peer_bytes() {
        let report = run_threaded(
            &Workload::quick("mlp", 65),
            &quick_config(65),
            &ThreadedOptions::quick(&[1.0, 1.0, 1.0]),
        )
        .unwrap();
        let device_total: u64 = report.comm.total_bytes - report.comm.server_bytes;
        assert_eq!(report.peer_bytes, device_total);
        assert!(report.comm.messages > 0);
        // Control traffic through the coordinator must be negligible
        // next to the parameter frames (decentralization claim).
        assert!(report.comm.server_bytes < report.peer_bytes);
    }

    /// A device the coordinator drops keeps training — being excluded
    /// from planning does not stop its loop. Shutdown must reach it
    /// anyway, or the harness would block forever joining its thread.
    #[test]
    fn shutdown_reaches_dropped_devices() {
        let k = 3;
        let config = quick_config(67);
        let workload = Workload::quick("mlp", 67);
        let built = workload.build(k).unwrap();
        let mut timing = ProtocolTiming::quick();
        timing.report_deadline = Duration::from_millis(500);
        let step_sleep = Duration::from_millis(4);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let mute_id = 2usize;
        let mut mute_port = hub.claim(mute_id).unwrap();
        let mut ports: Vec<_> = (0..k)
            .filter(|&i| i != mute_id)
            .map(|i| hub.claim(i).unwrap())
            .collect();

        let outcome = thread::scope(|scope| {
            let mut runtimes: Vec<_> = built.runtimes.into_iter().enumerate().collect();
            runtimes.retain(|(i, _)| *i != mute_id);
            for ((_, rt), port) in runtimes.into_iter().zip(ports.drain(..)) {
                let timing = timing.clone();
                let config = &config;
                scope.spawn(move || run_device(port, rt, config, step_sleep, &timing));
            }
            // The mute device never reports (so it is dropped in round
            // 1) but stays alive until it hears Shutdown.
            scope.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    assert!(
                        Instant::now() < deadline,
                        "dropped device never heard Shutdown"
                    );
                    if let Ok(Some(Message::Shutdown)) =
                        mute_port.recv_timeout(Duration::from_millis(100))
                    {
                        return;
                    }
                }
            });
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(60),
                2,
                &timing,
            )
        })
        .unwrap();

        assert!(
            outcome.dropped.iter().any(|&(d, _)| d == mute_id),
            "mute device must be dropped: {:?}",
            outcome.dropped
        );
        assert_eq!(outcome.final_models.len(), 2);
    }

    /// When the cluster collapses below two devices the coordinator
    /// errors out — but it must still shut the stragglers down instead
    /// of leaving them training forever.
    #[test]
    fn cluster_dead_still_shuts_devices_down() {
        let k = 2;
        let config = quick_config(68);
        let mut timing = ProtocolTiming::quick();
        timing.report_deadline = Duration::from_millis(300);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let mut mute_ports: Vec<_> = (0..k).map(|i| hub.claim(i).unwrap()).collect();

        let err = thread::scope(|scope| {
            for mut port in mute_ports.drain(..) {
                scope.spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(30);
                    loop {
                        assert!(
                            Instant::now() < deadline,
                            "device never heard Shutdown after ClusterDead"
                        );
                        if let Ok(Some(Message::Shutdown)) =
                            port.recv_timeout(Duration::from_millis(100))
                        {
                            return;
                        }
                    }
                });
            }
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(40),
                2,
                &timing,
            )
        })
        .unwrap_err();
        assert!(
            matches!(err, HadflError::ClusterDead { round: 1 }),
            "expected ClusterDead, got {err:?}"
        );
    }

    /// TCP gives no ordering between the coordinator's connection and a
    /// peer's: a ring frame can arrive before the RoundPlan it belongs
    /// to. The member must hold it and replay it once the plan lands.
    #[test]
    fn ring_frames_overtaking_their_plan_are_replayed() {
        let k = 2;
        let config = quick_config(69);
        let workload = Workload::quick("mlp", 69);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer_port = hub.claim(1).unwrap();

        thread::scope(|scope| {
            // The accumulation overtakes the plan that explains it.
            peer_port
                .send(
                    0,
                    &Message::ParamAccum {
                        round: 1,
                        hops: 1,
                        params: vec![0.5; dim],
                    },
                )
                .unwrap();
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![1, 0],
                        broadcaster: 1,
                        unselected: vec![],
                    },
                )
                .unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            // The device closes the reduce it replayed from its backlog.
            match peer_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1,
                    ttl: 1,
                    params,
                }) => assert_eq!(params.len(), dim),
                other => panic!("expected the merged model, got {other:?}"),
            }
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, .. }) => {}
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
        });
    }

    /// After a bypass, the dead member's upstream re-sends its last
    /// accumulation — which can reach a member that already added its
    /// parameters. The duplicate must not be counted twice.
    #[test]
    fn duplicate_accum_after_bypass_is_ignored() {
        let k = 3;
        let config = quick_config(70);
        let workload = Workload::quick("mlp", 70);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut peer2 = hub.claim(2).unwrap();

        thread::scope(|scope| {
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![1, 0, 2],
                        broadcaster: 1,
                        unselected: vec![],
                    },
                )
                .unwrap();
            let accum = Message::ParamAccum {
                round: 1,
                hops: 1,
                params: vec![3.0; dim],
            };
            peer1.send(0, &accum).unwrap();
            // A bypass-repair re-send of the same accumulation.
            peer1.send(0, &accum).unwrap();
            peer1
                .send(
                    0,
                    &Message::MergedParams {
                        round: 1,
                        ttl: 1,
                        params: vec![7.0; dim],
                    },
                )
                .unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, params }) => {
                    assert!(
                        params.iter().all(|&p| p == 7.0),
                        "device must install the merged model unchanged"
                    );
                }
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
            // Exactly one accumulation reaches the downstream: the
            // duplicate was dropped, not forwarded with doubled params.
            let mut accums = 0;
            while let Some(msg) = peer2.try_recv().unwrap() {
                if let Message::ParamAccum { hops, .. } = msg {
                    assert_eq!(hops, 2);
                    accums += 1;
                }
            }
            assert_eq!(accums, 1, "the re-sent duplicate must not be forwarded");
        });
    }

    /// A member that finished its ring and went back to training may
    /// still hold the only copy of the frame its (now dead) downstream
    /// never forwarded: a late BypassWarning must trigger the re-send
    /// even outside the ring loop.
    #[test]
    fn finished_member_repairs_ring_after_downstream_death() {
        let k = 3;
        let config = quick_config(71);
        let workload = Workload::quick("mlp", 71);
        let mut runtimes = workload.build(k).unwrap().runtimes;
        let rt = runtimes.remove(0);
        let dim = rt.model.param_vector().len();
        let timing = ProtocolTiming::quick();

        let mut hub = ChannelTransport::hub(k + 1);
        let mut coord_port = hub.claim(coordinator_id(k)).unwrap();
        let device_port = hub.claim(0).unwrap();
        let mut peer1 = hub.claim(1).unwrap();
        let mut peer2 = hub.claim(2).unwrap();

        thread::scope(|scope| {
            coord_port
                .send(
                    0,
                    &Message::RoundPlan {
                        round: 1,
                        ring: vec![2, 0, 1],
                        broadcaster: 2,
                        unselected: vec![],
                    },
                )
                .unwrap();
            // Device 0 closes the reduce and forwards the merged model
            // to its downstream 1...
            peer2
                .send(
                    0,
                    &Message::ParamAccum {
                        round: 1,
                        hops: 2,
                        params: vec![1.0; dim],
                    },
                )
                .unwrap();
            // ...which dies before forwarding; the stranded member 2
            // broadcasts the bypass.
            peer2.send(0, &Message::BypassWarning { dead: 1 }).unwrap();
            coord_port.send(0, &Message::Shutdown).unwrap();
            let config = &config;
            let timing = timing.clone();
            let handle = scope.spawn(move || {
                run_device(device_port, rt, config, Duration::from_millis(1), &timing)
            });
            match peer1.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1, ttl: 2, ..
                }) => {}
                other => panic!("downstream 1 should get the merge first, got {other:?}"),
            }
            // The repair: device 0 re-sends its merged frame to the new
            // downstream even though its own ring is long finished.
            match peer2.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::MergedParams {
                    round: 1,
                    ttl: 2,
                    params,
                }) => assert_eq!(params.len(), dim),
                other => panic!("stranded member must be repaired, got {other:?}"),
            }
            match coord_port.recv_timeout(Duration::from_secs(10)).unwrap() {
                Some(Message::FinalParams { device: 0, .. }) => {}
                other => panic!("expected final params, got {other:?}"),
            }
            handle.join().unwrap().unwrap();
        });
    }

    /// A planned ring member that dies silently mid-protocol: it
    /// reports versions (so the coordinator keeps planning it) but
    /// ignores ring frames and handshakes. The live members must detect
    /// it via the §III-D probe and close the ring around it.
    #[test]
    fn ring_bypasses_a_silent_member() {
        let k = 4;
        let seed = 66;
        let workload = Workload::quick("mlp", seed);
        // Select every device so the zombie is in the ring from round 1.
        let config = HadflConfig::builder()
            .num_selected(4)
            .seed(seed)
            .build()
            .unwrap();
        let built = workload.build(k).unwrap();
        let timing = ProtocolTiming::quick();
        let step_sleep = Duration::from_millis(4);

        let mut hub = ChannelTransport::hub(k + 1);
        let coordinator_port = hub.claim(coordinator_id(k)).unwrap();
        let zombie_id = 2usize;
        let mut zombie_port = hub.claim(zombie_id).unwrap();
        let mut ports: Vec<_> = (0..k)
            .filter(|&i| i != zombie_id)
            .map(|i| hub.claim(i).unwrap())
            .collect();

        let outcome = thread::scope(|scope| {
            let mut runtimes: Vec<_> = built.runtimes.into_iter().enumerate().collect();
            runtimes.retain(|(i, _)| *i != zombie_id);
            for ((_, rt), port) in runtimes.into_iter().zip(ports.drain(..)) {
                let timing = timing.clone();
                let config = &config;
                scope.spawn(move || run_device(port, rt, config, step_sleep, &timing));
            }
            // The zombie answers the first version report and then dies
            // silently — a death *after* planning, which only the
            // in-ring handshake path can catch.
            scope.spawn(move || loop {
                match zombie_port.recv_timeout(Duration::from_secs(5)) {
                    Ok(Some(Message::ReportRequest { round })) => {
                        let _ = zombie_port.send(
                            k,
                            &Message::VersionReport {
                                device: zombie_id as u32,
                                round,
                                version: 1.0,
                            },
                        );
                        return;
                    }
                    Ok(Some(_)) => {}
                    _ => return,
                }
            });
            run_coordinator(
                coordinator_port,
                &config,
                Duration::from_millis(60),
                2,
                &timing,
            )
        })
        .unwrap();

        assert_eq!(outcome.rounds.len(), 2);
        assert!(
            outcome.dropped.iter().any(|&(d, _)| d == zombie_id),
            "zombie must be reported dead via the bypass path: {:?}",
            outcome.dropped
        );
        // The three live devices all upload final parameters.
        assert_eq!(outcome.final_models.len(), 3);
        assert!(!outcome.final_models.contains_key(&zombie_id));
    }
}
