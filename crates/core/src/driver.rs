//! The HADFL virtual-time simulation driver: wires the coordinator
//! components, the gossip ring, the fault plan, and the training
//! substrate into the paper's full workflow (§III-A steps 1–9) and emits
//! a [`Trace`].

use std::collections::BTreeMap;
use std::time::Duration;

use hadfl_nn::LrSchedule;
use hadfl_simnet::{
    ComputeModel, DeviceId, Endpoint, FaultPlan, Jitter, LinkModel, NetStats, VirtualTime,
};
use hadfl_telemetry::{EventKind, Telemetry};
use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::aggregate::blend_params;
use crate::config::HadflConfig;
use crate::coordinator::{LivenessMonitor, ModelManager, RuntimeSupervisor, StrategyGenerator};
use crate::error::HadflError;
use crate::gossip::run_partial_sync_instrumented;
use crate::strategy::Strategy;
use crate::trace::{CommSummary, RoundRecord, Trace};
use crate::workload::{BuiltWorkload, Workload};

/// Size of a control-plane message (liveness ping, version report,
/// training configuration), bytes. Tiny next to the model.
const CONTROL_MSG_BYTES: u64 = 16;

/// Simulation options shared by HADFL and the baseline drivers.
///
/// # Example
///
/// ```
/// use hadfl::driver::SimOptions;
///
/// let opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
/// assert_eq!(opts.powers.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Seconds one local step takes on a power-1 device.
    pub base_step_secs: f64,
    /// Computing-power ratios, one per device (the paper's arrays,
    /// e.g. `[3, 3, 1, 1]`).
    pub powers: Vec<f64>,
    /// The interconnect model.
    pub link: LinkModel,
    /// Scheduled disconnections.
    pub faults: FaultPlan,
    /// Compute-time jitter (exercises the runtime predictor).
    pub jitter: Jitter,
    /// Stop once this many epochs-equivalent of data have been processed.
    pub epochs_total: f64,
    /// Hard cap on synchronization rounds.
    pub max_rounds: usize,
    /// Evaluate the merged model every this many rounds.
    pub eval_every: usize,
    /// Model-manager backup period in rounds (`None` disables backup).
    pub backup_every: Option<usize>,
    /// Bytes a model transfer costs on the wire. The lite models are
    /// orders of magnitude smaller than the paper's ResNet-18/VGG-16;
    /// overriding the wire size restores the paper's
    /// communication-to-compute ratio (see DESIGN.md §2). `None` uses
    /// the actual parameter-vector size.
    pub wire_model_bytes: Option<u64>,
}

impl SimOptions {
    /// CI-scale options: a handful of epochs over the given power ratios.
    pub fn quick(powers: &[f64]) -> Self {
        SimOptions {
            base_step_secs: 0.010,
            powers: powers.to_vec(),
            link: LinkModel::pcie3_x8(),
            faults: FaultPlan::none(),
            jitter: Jitter::None,
            epochs_total: 6.0,
            max_rounds: 10_000,
            eval_every: 1,
            backup_every: None,
            wire_model_bytes: None,
        }
    }

    /// Experiment-scale options used by the table/figure harnesses.
    pub fn experiment(powers: &[f64], epochs_total: f64) -> Self {
        SimOptions {
            epochs_total,
            ..SimOptions::quick(powers)
        }
    }

    fn validate(&self) -> Result<(), HadflError> {
        if self.powers.len() < 2 {
            return Err(HadflError::InvalidConfig(format!(
                "need at least 2 devices, got {}",
                self.powers.len()
            )));
        }
        if !(self.epochs_total > 0.0) {
            return Err(HadflError::InvalidConfig(
                "epochs_total must be positive".into(),
            ));
        }
        if self.eval_every == 0 || self.max_rounds == 0 {
            return Err(HadflError::InvalidConfig(
                "eval_every and max_rounds must be positive".into(),
            ));
        }
        if self.backup_every == Some(0) {
            return Err(HadflError::InvalidConfig(
                "backup_every must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Extended trace for HADFL runs: the base [`Trace`] plus setup-phase
/// communication (initial model dispatch) and model-manager backups,
/// which are accounted separately so the steady-state decentralization
/// claim can be checked on `trace.comm` alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HadflRun {
    /// The per-round trace (training-phase communication only).
    pub trace: Trace,
    /// Setup-phase communication: initial model dispatch and warm-up
    /// timing reports.
    pub setup_comm: CommSummary,
    /// Backup-phase communication: the model manager's periodic fetches.
    pub backup_comm: CommSummary,
    /// Number of backups taken.
    pub backups_taken: usize,
    /// The derived heterogeneity-aware strategy.
    pub strategy: Strategy,
    /// Devices bypassed by the fault-tolerance mechanism, per round
    /// (round index → bypassed devices), only rounds with bypasses.
    pub bypass_log: Vec<(usize, Vec<usize>)>,
}

/// Runs the full HADFL workflow over a workload and returns the run.
///
/// Workflow (paper §III-A): initial model dispatch → mutual-negotiation
/// warm-up (small lr, timing measurement) → strategy generation
/// (hyperperiod, `E_i`) → per-round: heterogeneity-aware local training,
/// probabilistic selection, random-ring gossip with fault bypass,
/// non-blocking broadcast to the unselected, runtime version prediction →
/// periodic model backup.
///
/// # Errors
///
/// Returns configuration errors for inconsistent options, substrate
/// errors from training, and [`HadflError::ClusterDead`] if every device
/// dies.
///
/// # Example
///
/// ```no_run
/// use hadfl::driver::{run_hadfl, SimOptions};
/// use hadfl::{HadflConfig, Workload};
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let workload = Workload::quick("mlp", 0);
/// let config = HadflConfig::builder().build()?;
/// let run = run_hadfl(&workload, &config, &SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]))?;
/// println!("max accuracy {:.3}", run.trace.max_accuracy());
/// # Ok(())
/// # }
/// ```
pub fn run_hadfl(
    workload: &Workload,
    config: &HadflConfig,
    opts: &SimOptions,
) -> Result<HadflRun, HadflError> {
    run_hadfl_with_telemetry(workload, config, opts, &Telemetry::disabled())
}

/// [`run_hadfl`] with a telemetry handle: the simulator emits the same
/// schema the deployed runtime does — per-round plans with Eq. (8)
/// probabilities, Eq. (7) predicted-vs-actual versions, ring
/// enter/bypass/merge/exit, and one `FrameSent` event per entry charged
/// to the training-phase [`NetStats`] ledger, timestamped in virtual
/// time. With a disabled handle this is exactly [`run_hadfl`].
///
/// # Errors
///
/// As [`run_hadfl`].
pub fn run_hadfl_with_telemetry(
    workload: &Workload,
    config: &HadflConfig,
    opts: &SimOptions,
    tel: &Telemetry,
) -> Result<HadflRun, HadflError> {
    opts.validate()?;
    let k = opts.powers.len();
    let mut built = workload.build(k)?;
    let wire_bytes = opts.wire_model_bytes.unwrap_or(built.model_bytes);
    let compute = ComputeModel::new(opts.base_step_secs, &opts.powers)?.with_jitter(opts.jitter);
    let monitor = LivenessMonitor::new(opts.faults.clone());
    let master_rng = SeedStream::new(config.seed ^ 0xD21E_2E00);
    let mut device_rngs: Vec<SeedStream> = (0..k).map(|i| master_rng.fork(i as u64)).collect();

    let mut setup_stats = NetStats::new();
    let mut train_stats = NetStats::new();
    let mut backup_stats = NetStats::new();

    // --- Setup: initial model dispatch (coordinator → devices). ---
    for i in 0..k {
        setup_stats.record(Endpoint::Server, Endpoint::Device(DeviceId(i)), wire_bytes);
    }

    // --- Mutual negotiation: warm-up training + timing reports. ---
    let batches = built.batches_per_epoch();
    let mut warmup_end = VirtualTime::ZERO;
    for (i, rt) in built.runtimes.iter_mut().enumerate() {
        rt.set_optimizer(LrSchedule::constant(config.warmup_lr), config.momentum);
        let steps = config.warmup_epochs as usize * batches[i];
        rt.train_steps(steps)?;
        let secs = compute.steps_time(DeviceId(i), steps, Some(&mut device_rngs[i]))?;
        warmup_end = warmup_end.max(VirtualTime::ZERO.after(secs));
        setup_stats.record(
            Endpoint::Device(DeviceId(i)),
            Endpoint::Server,
            CONTROL_MSG_BYTES,
        );
    }

    // --- Strategy generation. ---
    let strategy = Strategy::derive(&compute, &batches, config.t_sync)?;
    let window = strategy.window_secs;
    // Versions are cumulative update counts; the Eq. (6) prior for round 1
    // is "warm-up steps plus one window's worth of steps".
    let priors: Vec<f64> = (0..k)
        .map(|i| built.runtimes[i].steps_done as f64 + strategy.local_steps[i] as f64)
        .collect();
    let mut supervisor = RuntimeSupervisor::new(config.smoothing_alpha, &priors)?;
    let mut generator = StrategyGenerator::new(config);
    let mut manager = opts.backup_every.map(ModelManager::new);
    for rt in &mut built.runtimes {
        rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
    }

    let mut trace = Trace::new("hadfl", k, wire_bytes);
    let mut bypass_log = Vec::new();
    let mut backups_taken = 0usize;
    let mut device_free: Vec<VirtualTime> = vec![warmup_end; k];
    let mut window_start = warmup_end;
    let mut last_merged: Vec<f32> = built.runtimes[0].model.param_vector();

    for round in 1..=opts.max_rounds {
        let window_end = window_start.after(window);

        // --- Heterogeneity-aware local training within the window. ---
        let mut round_losses = Vec::with_capacity(k);
        for i in 0..k {
            let dev = DeviceId(i);
            // A device trains only while connected (coarse model: it must
            // be up for the whole window; see DESIGN.md §6).
            let up = monitor.is_up(dev, window_start) && monitor.is_up(dev, window_end);
            if !up {
                round_losses.push(None);
                device_free[i] = device_free[i].max(window_end);
                continue;
            }
            let mut budget = window_end.elapsed_since(device_free[i]);
            let mut steps = 0usize;
            while budget > 0.0 {
                let dt = compute.step_time(dev, Some(&mut device_rngs[i]))?;
                if dt > budget {
                    break;
                }
                budget -= dt;
                steps += 1;
            }
            let loss = built.runtimes[i].train_steps(steps)?;
            round_losses.push(if steps > 0 { Some(loss) } else { None });
            device_free[i] = window_end;
        }
        let versions: Vec<f64> = built
            .runtimes
            .iter()
            .map(|rt| rt.steps_done as f64)
            .collect();

        // --- Coordinator: liveness at round start, plan, control traffic. ---
        let available = monitor.available(k, window_start);
        if available.is_empty() {
            return Err(HadflError::ClusterDead { round });
        }
        let mut sync_end = window_end;
        let mut selected_indices: Vec<usize> = Vec::new();
        if available.len() >= 2 {
            let t_end = Duration::from_secs_f64(window_end.as_secs());
            let predicted = supervisor.predicted_versions();
            let predicted_avail: Vec<f64> =
                available.iter().map(|d| predicted[d.index()]).collect();
            if tel.enabled() {
                for d in &available {
                    tel.emit(
                        t_end,
                        EventKind::Prediction {
                            round: round as u32,
                            device: d.index() as u32,
                            predicted: predicted[d.index()],
                            actual: versions[d.index()],
                        },
                    );
                }
            }
            let plan = generator.plan_round(&available, &predicted_avail)?;
            if tel.enabled() {
                tel.emit(
                    t_end,
                    EventKind::RoundPlanned {
                        round: round as u32,
                        available: available.iter().map(|d| d.index() as u32).collect(),
                        versions: predicted_avail.clone(),
                        probabilities: generator
                            .last_probabilities()
                            .map(<[f64]>::to_vec)
                            .unwrap_or_default(),
                        selected: plan.selected.iter().map(|d| d.index() as u32).collect(),
                        unselected: plan.unselected.iter().map(|d| d.index() as u32).collect(),
                        broadcaster: plan.broadcaster.index() as u32,
                    },
                );
            }
            for d in &available {
                // version report up, training configuration down
                train_stats.record(Endpoint::Device(*d), Endpoint::Server, CONTROL_MSG_BYTES);
                train_stats.record(Endpoint::Server, Endpoint::Device(*d), CONTROL_MSG_BYTES);
                if tel.enabled() {
                    tel.emit(
                        t_end,
                        EventKind::FrameSent {
                            src: d.index() as u32,
                            dst: k as u32,
                            bytes: CONTROL_MSG_BYTES,
                            kind: "version_report".to_string(),
                            lamport: 0, // analytical frame: nothing crossed a transport
                        },
                    );
                    tel.emit(
                        t_end,
                        EventKind::FrameSent {
                            src: k as u32,
                            dst: d.index() as u32,
                            bytes: CONTROL_MSG_BYTES,
                            kind: "training_config".to_string(),
                            lamport: 0, // analytical frame: nothing crossed a transport
                        },
                    );
                }
            }

            // --- Partial synchronization over the random ring. ---
            let params: BTreeMap<DeviceId, Vec<f32>> = plan
                .ring
                .members()
                .iter()
                .map(|&d| (d, built.runtimes[d.index()].model.param_vector()))
                .collect();
            let weights = if config.weight_by_samples {
                Some(
                    plan.ring
                        .members()
                        .iter()
                        .map(|&d| (d, built.runtimes[d.index()].shard_len() as f64))
                        .collect::<BTreeMap<_, _>>(),
                )
            } else {
                None
            };
            let outcome = match run_partial_sync_instrumented(
                &plan.ring,
                &params,
                weights.as_ref(),
                &opts.faults,
                window_end,
                &opts.link,
                config.handshake_timeout_secs,
                built.model_bytes,
                wire_bytes,
                &mut train_stats,
                tel,
                round as u32,
            ) {
                Ok(outcome) => outcome,
                Err(HadflError::ClusterDead { .. }) => {
                    return Err(HadflError::ClusterDead { round })
                }
                Err(e) => return Err(e),
            };
            if !outcome.bypassed.is_empty() {
                bypass_log.push((round, outcome.bypassed.iter().map(|d| d.index()).collect()));
            }
            for d in &outcome.participants {
                built.runtimes[d.index()]
                    .model
                    .set_param_vector(&outcome.merged)?;
                device_free[d.index()] = window_end.after(outcome.comm_secs);
            }
            sync_end = window_end.after(outcome.comm_secs);

            // --- Non-blocking broadcast to the unselected devices. ---
            let broadcaster = if outcome.participants.contains(&plan.broadcaster) {
                plan.broadcaster
            } else {
                outcome.participants[0]
            };
            for u in &plan.unselected {
                if !opts.faults.is_up(*u, window_end) {
                    continue;
                }
                train_stats.record(
                    Endpoint::Device(broadcaster),
                    Endpoint::Device(*u),
                    wire_bytes,
                );
                tel.emit(
                    Duration::from_secs_f64(sync_end.as_secs()),
                    EventKind::FrameSent {
                        src: broadcaster.index() as u32,
                        dst: u.index() as u32,
                        bytes: wire_bytes,
                        kind: "param_sync".to_string(),
                        lamport: 0, // analytical frame: nothing crossed a transport
                    },
                );
                let mut local = built.runtimes[u.index()].model.param_vector();
                blend_params(&mut local, &outcome.merged, config.blend_beta)?;
                built.runtimes[u.index()].model.set_param_vector(&local)?;
                // Non-blocking: the receiver keeps training; the sender
                // does not wait either.
            }
            if config.reset_momentum_on_sync {
                // Momentum accumulated against pre-merge parameters is
                // stale once weights change under the optimizer.
                for d in &available {
                    built.runtimes[d.index()]
                        .set_optimizer(LrSchedule::constant(config.lr), config.momentum);
                }
            }
            selected_indices = plan.selected.iter().map(|d| d.index()).collect();
            last_merged = outcome.merged;
        }
        tel.emit(
            Duration::from_secs_f64(sync_end.as_secs()),
            EventKind::RoundComplete {
                round: round as u32,
                duration_us: Duration::from_secs_f64(sync_end.elapsed_since(window_start))
                    .as_micros() as u64,
            },
        );

        // --- Runtime supervision: feed actual versions to the predictor. ---
        supervisor.observe_round(&versions)?;

        // --- Model backup. ---
        if let Some(mgr) = manager.as_mut() {
            if mgr.maybe_backup(round, sync_end, &last_merged) {
                backups_taken += 1;
                // A random live device uploads the latest model.
                let uploader = available[0];
                backup_stats.record(Endpoint::Device(uploader), Endpoint::Server, wire_bytes);
            }
        }

        // --- Metrics. ---
        let samples: u64 = built.runtimes.iter().map(|rt| rt.samples_seen).sum();
        let epoch_equiv = samples as f64 / built.train_size as f64;
        let done = epoch_equiv >= opts.epochs_total || round == opts.max_rounds;
        if round % opts.eval_every == 0 || done {
            let metrics = built.evaluate_params(&last_merged)?;
            let live_losses: Vec<f32> = round_losses.iter().flatten().copied().collect();
            let train_loss = if live_losses.is_empty() {
                f32::NAN
            } else {
                live_losses.iter().sum::<f32>() / live_losses.len() as f32
            };
            trace.push(RoundRecord {
                round,
                time_secs: sync_end.as_secs(),
                epoch_equiv,
                train_loss,
                test_accuracy: metrics.accuracy,
                selected: selected_indices,
                versions,
            });
        }
        if done {
            break;
        }
        window_start = window_end;
    }

    trace.set_comm(&train_stats);
    tel.flush();
    Ok(HadflRun {
        trace,
        setup_comm: CommSummary::from_stats(&setup_stats, k),
        backup_comm: CommSummary::from_stats(&backup_stats, k),
        backups_taken,
        strategy,
        bypass_log,
    })
}

/// Convenience: builds a workload once and exposes it for schemes that
/// need the raw pieces (used by the baselines crate and tests).
///
/// # Errors
///
/// Propagates workload-construction errors.
pub fn build_workload(workload: &Workload, devices: usize) -> Result<BuiltWorkload, HadflError> {
    workload.build(devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectionPolicy;
    use hadfl_simnet::Outage;

    fn quick_config(seed: u64) -> HadflConfig {
        HadflConfig::builder().seed(seed).build().unwrap()
    }

    #[test]
    fn hadfl_trains_and_improves() {
        let run = run_hadfl(
            &Workload::quick("mlp", 1),
            &quick_config(1),
            &SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]),
        )
        .unwrap();
        assert!(!run.trace.records.is_empty());
        let first = run.trace.records.first().unwrap();
        let last = run.trace.records.last().unwrap();
        assert!(last.epoch_equiv >= 6.0, "ran {} epochs", last.epoch_equiv);
        assert!(
            last.test_accuracy > first.test_accuracy.max(0.2),
            "no learning: {} -> {}",
            first.test_accuracy,
            last.test_accuracy
        );
    }

    #[test]
    fn hadfl_is_deterministic() {
        let opts = SimOptions::quick(&[2.0, 1.0]);
        let a = run_hadfl(&Workload::quick("mlp", 1), &quick_config(7), &opts).unwrap();
        let b = run_hadfl(&Workload::quick("mlp", 1), &quick_config(7), &opts).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.bypass_log, b.bypass_log);
    }

    #[test]
    fn fast_devices_accumulate_more_versions() {
        let run = run_hadfl(
            &Workload::quick("mlp", 2),
            &quick_config(2),
            &SimOptions::quick(&[4.0, 2.0, 2.0, 1.0]),
        )
        .unwrap();
        let last = run.trace.records.last().unwrap();
        assert!(
            last.versions[0] > 2.0 * last.versions[3],
            "power-4 device should far outpace power-1: {:?}",
            last.versions
        );
    }

    #[test]
    fn no_server_model_traffic_during_training() {
        let run = run_hadfl(
            &Workload::quick("mlp", 3),
            &quick_config(3),
            &SimOptions::quick(&[2.0, 1.0, 1.0]),
        )
        .unwrap();
        // Training-phase server traffic is control-plane only: far below
        // one model's size.
        assert!(
            run.trace.comm.server_bytes < run.trace.model_bytes / 2,
            "server moved {} bytes (model is {})",
            run.trace.comm.server_bytes,
            run.trace.model_bytes
        );
        // Setup dispatched exactly one model per device (plus tiny reports).
        assert!(run.setup_comm.server_bytes >= 3 * run.trace.model_bytes);
    }

    #[test]
    fn faulted_device_gets_bypassed() {
        let mut opts = SimOptions::quick(&[1.0, 1.0, 1.0]);
        // Force every sync to include all three devices so the dead one is
        // always in the ring.
        let config = HadflConfig::builder()
            .num_selected(3)
            .seed(5)
            .build()
            .unwrap();
        // Timing under Workload::quick with 3 equal devices: 128-sample
        // shards, 8 batches, 10 ms steps ⇒ 80 ms epochs, 80 ms windows,
        // warm-up ends at 0.08 s. A crash at 0.20 s lands mid-window-2:
        // the device was up when the coordinator planned the round (0.16 s)
        // but dead at sync time (0.24 s) — exactly the §III-D scenario.
        opts.faults = FaultPlan::new(vec![Outage::crash(
            DeviceId(2),
            VirtualTime::from_secs(0.20),
        )])
        .unwrap();
        opts.epochs_total = 8.0;
        let run = run_hadfl(&Workload::quick("mlp", 4), &config, &opts).unwrap();
        assert!(
            !run.bypass_log.is_empty(),
            "device 2 should have been bypassed at least once"
        );
        assert!(run.bypass_log.iter().all(|(_, devs)| devs == &vec![2]));
        // Training still completed.
        assert!(run.trace.records.last().unwrap().epoch_equiv >= 8.0);
    }

    #[test]
    fn backups_are_taken_on_schedule() {
        let mut opts = SimOptions::quick(&[2.0, 1.0]);
        opts.backup_every = Some(2);
        let run = run_hadfl(&Workload::quick("mlp", 4), &quick_config(4), &opts).unwrap();
        assert!(run.backups_taken >= 1);
        assert_eq!(
            run.backup_comm.server_bytes,
            run.backups_taken as u64 * run.trace.model_bytes
        );
    }

    #[test]
    fn worst_case_policy_runs() {
        let config = HadflConfig::builder()
            .selection(SelectionPolicy::WorstCase)
            .seed(6)
            .build()
            .unwrap();
        let mut opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
        // One round covers ~2 epoch-equivalents here; 11 epochs gives ~5
        // rounds so "late" rounds exist.
        opts.epochs_total = 11.0;
        let run = run_hadfl(&Workload::quick("mlp", 5), &config, &opts).unwrap();
        // The worst-case policy must always pick the two stragglers
        // (devices 2 and 3) once versions separate.
        let late_rounds: Vec<_> = run.trace.records.iter().filter(|r| r.round > 2).collect();
        assert!(!late_rounds.is_empty());
        for r in late_rounds {
            assert_eq!(
                r.selected,
                vec![2, 3],
                "round {}: {:?}",
                r.round,
                r.selected
            );
        }
    }

    #[test]
    fn weighted_aggregation_runs_on_noniid_shards() {
        let mut workload = Workload::quick("mlp", 7);
        workload.shard = crate::workload::ShardKind::Dirichlet { alpha: 0.3 };
        let config = HadflConfig::builder()
            .weight_by_samples(true)
            .seed(7)
            .build()
            .unwrap();
        let run = run_hadfl(
            &workload,
            &config,
            &SimOptions::quick(&[2.0, 1.0, 2.0, 1.0]),
        )
        .unwrap();
        let last = run.trace.records.last().unwrap();
        assert!(last.epoch_equiv >= 6.0);
        assert!(last.test_accuracy > 0.15, "accuracy {}", last.test_accuracy);
        // And the weighted run differs from the uniform one.
        let uniform_cfg = HadflConfig::builder().seed(7).build().unwrap();
        let uniform = run_hadfl(
            &workload,
            &uniform_cfg,
            &SimOptions::quick(&[2.0, 1.0, 2.0, 1.0]),
        )
        .unwrap();
        assert_ne!(run.trace, uniform.trace);
    }

    /// Satellite check: the instrumented simulator's `FrameSent` events
    /// reproduce the training-phase [`NetStats`] ledger exactly — one
    /// schema for simulated and deployed communication accounting.
    #[test]
    fn telemetry_frames_mirror_the_comm_ledger() {
        use hadfl_telemetry::{RingBufferSink, Telemetry};
        let k = 3;
        let sink = RingBufferSink::new(100_000);
        let tel = Telemetry::new(k as u32, vec![Box::new(sink.clone())]);
        let run = run_hadfl_with_telemetry(
            &Workload::quick("mlp", 9),
            &quick_config(9),
            &SimOptions::quick(&[2.0, 1.0, 1.0]),
            &tel,
        )
        .unwrap();
        let events = sink.snapshot();
        assert_eq!(sink.dropped(), 0, "ring buffer must not have evicted");
        assert_eq!(CommSummary::from_events(&events, k), run.trace.comm);
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RoundPlanned { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Prediction { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Merge { .. })));
    }

    /// The simulator runs on virtual time, so the same seed must yield a
    /// byte-identical JSONL event stream.
    #[test]
    fn telemetry_stream_is_deterministic() {
        use hadfl_telemetry::{JsonlSink, SharedBuffer, Telemetry};
        let jsonl = |seed: u64| {
            let buf = SharedBuffer::new();
            let tel = Telemetry::new(2, vec![Box::new(JsonlSink::new(buf.clone()))]);
            run_hadfl_with_telemetry(
                &Workload::quick("mlp", 1),
                &quick_config(seed),
                &SimOptions::quick(&[2.0, 1.0]),
                &tel,
            )
            .unwrap();
            tel.flush();
            buf.contents()
        };
        let a = jsonl(11);
        let b = jsonl(11);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same schedule must emit byte-identical JSONL");
    }

    #[test]
    fn validates_options() {
        let w = Workload::quick("mlp", 0);
        let c = quick_config(0);
        assert!(run_hadfl(&w, &c, &SimOptions::quick(&[1.0])).is_err());
        let mut bad = SimOptions::quick(&[1.0, 1.0]);
        bad.epochs_total = 0.0;
        assert!(run_hadfl(&w, &c, &bad).is_err());
        let mut bad = SimOptions::quick(&[1.0, 1.0]);
        bad.eval_every = 0;
        assert!(run_hadfl(&w, &c, &bad).is_err());
        let mut bad = SimOptions::quick(&[1.0, 1.0]);
        bad.backup_every = Some(0);
        assert!(run_hadfl(&w, &c, &bad).is_err());
    }
}
