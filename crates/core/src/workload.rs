//! Workload construction shared by HADFL and the baseline schemes: the
//! synthetic task, per-device data shards, identically initialized model
//! replicas, and the [`DeviceRuntime`] each scheme trains through.

use hadfl_nn::{
    models, Dataset, Loader, LrSchedule, Metrics, Model, Sgd, ShardSpec, SyntheticSpec,
};
use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// Declarative description of a training workload (model + data + batch
/// geometry). `build` materializes it for a `K`-device cluster.
///
/// # Example
///
/// ```
/// use hadfl::workload::Workload;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let built = Workload::quick("resnet18_lite", 0).build(4)?;
/// assert_eq!(built.runtimes.len(), 4);
/// assert!(built.model_bytes > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Zoo model name (`"mlp"`, `"resnet18_lite"`, `"vgg16_lite"`).
    pub model_name: String,
    /// The synthetic task specification.
    pub data_spec: SyntheticSpec,
    /// Training-set size (split across devices).
    pub train_size: usize,
    /// Held-out test-set size.
    pub test_size: usize,
    /// Per-device mini-batch size (the paper uses 256 global / 4 = 64).
    pub device_batch: usize,
    /// How data is split across devices.
    pub shard: ShardKind,
    /// Master seed for data generation, sharding, and model init.
    pub seed: u64,
}

/// Serializable mirror of [`ShardSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardKind {
    /// IID round-robin split.
    Iid,
    /// Dirichlet(α) label skew.
    Dirichlet {
        /// Concentration parameter.
        alpha: f32,
    },
}

impl From<ShardKind> for ShardSpec {
    fn from(kind: ShardKind) -> Self {
        match kind {
            ShardKind::Iid => ShardSpec::Iid,
            ShardKind::Dirichlet { alpha } => ShardSpec::Dirichlet { alpha },
        }
    }
}

impl Workload {
    /// A CI-scale workload: tiny images, a few hundred samples — runs in
    /// seconds, used by tests and quick benches. The sizes give each of 4
    /// devices 96 samples = 6 batches, whose per-epoch times stay nicely
    /// rational under the paper's power ratios (small hyperperiod LCMs).
    pub fn quick(model_name: &str, seed: u64) -> Self {
        Workload {
            model_name: model_name.to_string(),
            data_spec: SyntheticSpec::tiny(),
            train_size: 384,
            test_size: 192,
            device_batch: 16,
            shard: ShardKind::Iid,
            seed,
        }
    }

    /// The experiment-scale workload used by the table/figure harnesses:
    /// 16×16 synthetic CIFAR, 2048 train / 512 test, per-device batch 64
    /// (the paper's 256-global / 4-device split).
    pub fn experiment(model_name: &str, seed: u64) -> Self {
        Workload {
            model_name: model_name.to_string(),
            data_spec: SyntheticSpec::cifar_like(),
            train_size: 2048,
            test_size: 512,
            device_batch: 64,
            shard: ShardKind::Iid,
            seed,
        }
    }

    /// Materializes the workload for `k` devices.
    ///
    /// All device models start from identical parameters (the paper's
    /// Algorithm 1 line 1 synchronizes `w₀` first).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for an unknown model, a degenerate
    /// data spec, or `k` larger than the training set.
    pub fn build(&self, k: usize) -> Result<BuiltWorkload, HadflError> {
        let train = Dataset::synthetic_cifar(self.train_size, &self.data_spec, self.seed ^ 0x7124)?;
        let test =
            Dataset::synthetic_cifar(self.test_size, &self.data_spec, self.seed ^ 0x7E57_0000)?;
        let shards = train.shard(k, self.shard.into(), self.seed ^ 0x5A)?;
        let reference = models::by_name(
            &self.model_name,
            &self.data_spec.sample_dims(),
            self.data_spec.classes,
            self.seed,
        )?;
        let init = reference.param_vector();
        let model_bytes = (init.len() * std::mem::size_of::<f32>()) as u64;
        let mut runtimes = Vec::with_capacity(k);
        for (i, shard) in shards.iter().enumerate() {
            let mut model = models::by_name(
                &self.model_name,
                &self.data_spec.sample_dims(),
                self.data_spec.classes,
                self.seed,
            )?;
            model.set_param_vector(&init)?;
            runtimes.push(DeviceRuntime::new(
                model,
                shard.clone(),
                self.device_batch,
                self.seed ^ (0xD0 + i as u64),
            )?);
        }
        Ok(BuiltWorkload {
            runtimes,
            test,
            train_size: self.train_size,
            model_bytes,
            device_batch: self.device_batch,
        })
    }
}

/// A materialized workload: one [`DeviceRuntime`] per device plus the
/// shared test set.
#[derive(Debug)]
pub struct BuiltWorkload {
    /// Per-device training runtimes.
    pub runtimes: Vec<DeviceRuntime>,
    /// The held-out test set.
    pub test: Dataset,
    /// Global training-set size (for epoch-equivalent accounting).
    pub train_size: usize,
    /// Model size in bytes (`M`).
    pub model_bytes: u64,
    /// Per-device batch size.
    pub device_batch: usize,
}

impl BuiltWorkload {
    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.runtimes.len()
    }

    /// Mini-batches per epoch on each device's shard.
    pub fn batches_per_epoch(&self) -> Vec<usize> {
        self.runtimes
            .iter()
            .map(DeviceRuntime::batches_per_epoch)
            .collect()
    }

    /// Evaluates a parameter vector on the test set using device 0's
    /// model as scratch (its parameters are restored afterwards).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn evaluate_params(&mut self, params: &[f32]) -> Result<Metrics, HadflError> {
        let rt = self
            .runtimes
            .first_mut()
            .ok_or_else(|| HadflError::InvalidConfig("workload has no devices".into()))?;
        let saved = rt.model.param_vector();
        rt.model.set_param_vector(params)?;
        let metrics = rt.model.evaluate(&self.test, 64)?;
        rt.model.set_param_vector(&saved)?;
        Ok(metrics)
    }
}

/// One device's training state: model replica, optimizer, and a shard
/// loader that cycles epochs. Used by every scheme (HADFL and baselines).
#[derive(Debug)]
pub struct DeviceRuntime {
    /// The device's model replica.
    pub model: Model,
    opt: Sgd,
    loader: Loader,
    shard: Dataset,
    queue: Vec<Vec<usize>>,
    /// Cumulative local update count — the device's parameter *version*.
    pub steps_done: u64,
    /// Cumulative samples processed.
    pub samples_seen: u64,
}

impl DeviceRuntime {
    /// Creates a runtime with a constant-lr optimizer placeholder; call
    /// [`set_lr`](Self::set_lr) to configure phases.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for an empty shard.
    pub fn new(model: Model, shard: Dataset, batch: usize, seed: u64) -> Result<Self, HadflError> {
        if shard.is_empty() {
            return Err(HadflError::InvalidConfig("device shard is empty".into()));
        }
        let loader = Loader::new(shard.len(), batch.min(shard.len()).max(1), seed);
        Ok(DeviceRuntime {
            model,
            opt: Sgd::new(LrSchedule::constant(0.01), 0.9),
            loader,
            shard,
            queue: Vec::new(),
            steps_done: 0,
            samples_seen: 0,
        })
    }

    /// Replaces the optimizer's schedule and momentum (keeps step count).
    pub fn set_optimizer(&mut self, schedule: LrSchedule, momentum: f32) {
        self.opt = Sgd::new(schedule, momentum);
    }

    /// Sets a constant learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.opt.set_schedule(LrSchedule::constant(lr));
    }

    /// Mini-batches per epoch on this shard.
    pub fn batches_per_epoch(&self) -> usize {
        self.loader.batches_per_epoch()
    }

    /// Samples in this device's shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    fn next_batch(&mut self) -> Vec<usize> {
        if self.queue.is_empty() {
            let mut epoch = self.loader.epoch();
            epoch.reverse(); // pop from the back in epoch order
            self.queue = epoch;
        }
        self.queue.pop().expect("refilled above")
    }

    /// Runs `n` local SGD steps, returning the mean loss (0.0 for
    /// `n = 0`).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (including divergence).
    pub fn train_steps(&mut self, n: usize) -> Result<f32, HadflError> {
        if n == 0 {
            return Ok(0.0);
        }
        let mut total = 0.0f64;
        for _ in 0..n {
            let idxs = self.next_batch();
            let (x, y) = self.shard.batch(&idxs)?;
            let loss = self.model.train_step(&x, &y, &mut self.opt)?;
            total += f64::from(loss);
            self.steps_done += 1;
            self.samples_seen += idxs.len() as u64;
        }
        Ok((total / n as f64) as f32)
    }

    /// Computes gradients on one batch *without* updating (for the
    /// all-reduce baseline). Returns `(loss, samples)`.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn grad_step(&mut self) -> Result<(f32, usize), HadflError> {
        let idxs = self.next_batch();
        let (x, y) = self.shard.batch(&idxs)?;
        let loss = self.model.accumulate_grads(&x, &y)?;
        self.samples_seen += idxs.len() as u64;
        Ok((loss, idxs.len()))
    }

    /// Applies the optimizer to the currently stored gradients (paired
    /// with [`grad_step`](Self::grad_step)); counts one version step.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors.
    pub fn apply_step(&mut self) -> Result<(), HadflError> {
        self.model.apply_step(&mut self.opt)?;
        self.steps_done += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_creates_identical_replicas() {
        let built = Workload::quick("mlp", 3).build(4).unwrap();
        assert_eq!(built.devices(), 4);
        let p0 = built.runtimes[0].model.param_vector();
        for rt in &built.runtimes[1..] {
            assert_eq!(rt.model.param_vector(), p0, "replicas must start identical");
        }
    }

    #[test]
    fn shards_cover_the_training_set() {
        let built = Workload::quick("mlp", 3).build(4).unwrap();
        let total: usize = built.runtimes.iter().map(DeviceRuntime::shard_len).sum();
        assert_eq!(total, 384);
    }

    #[test]
    fn train_steps_counts_versions_and_samples() {
        let mut built = Workload::quick("mlp", 0).build(2).unwrap();
        let rt = &mut built.runtimes[0];
        let loss = rt.train_steps(5).unwrap();
        assert!(loss > 0.0);
        assert_eq!(rt.steps_done, 5);
        assert_eq!(rt.samples_seen, 5 * 16);
        assert_eq!(rt.train_steps(0).unwrap(), 0.0);
        assert_eq!(rt.steps_done, 5);
    }

    #[test]
    fn batches_cycle_across_epochs() {
        let mut built = Workload::quick("mlp", 0).build(4).unwrap();
        let rt = &mut built.runtimes[0];
        let per_epoch = rt.batches_per_epoch();
        // run two epochs' worth of steps
        rt.train_steps(per_epoch * 2).unwrap();
        assert_eq!(rt.samples_seen as usize, rt.shard_len() * 2);
    }

    #[test]
    fn grad_step_then_apply_updates_params() {
        let mut built = Workload::quick("mlp", 0).build(2).unwrap();
        let rt = &mut built.runtimes[0];
        let before = rt.model.param_vector();
        rt.grad_step().unwrap();
        assert_eq!(rt.model.param_vector(), before, "grad_step must not update");
        rt.apply_step().unwrap();
        assert_ne!(rt.model.param_vector(), before);
        assert_eq!(rt.steps_done, 1);
    }

    #[test]
    fn evaluate_params_restores_scratch_model() {
        let mut built = Workload::quick("mlp", 0).build(2).unwrap();
        let original = built.runtimes[0].model.param_vector();
        let zeros = vec![0.0f32; original.len()];
        let metrics = built.evaluate_params(&zeros).unwrap();
        assert!(metrics.accuracy >= 0.0);
        assert_eq!(built.runtimes[0].model.param_vector(), original);
    }

    #[test]
    fn dirichlet_workload_builds() {
        let mut w = Workload::quick("mlp", 1);
        w.shard = ShardKind::Dirichlet { alpha: 0.5 };
        let built = w.build(4).unwrap();
        let total: usize = built.runtimes.iter().map(DeviceRuntime::shard_len).sum();
        assert_eq!(total, 384);
    }

    #[test]
    fn unknown_model_is_rejected() {
        assert!(Workload::quick("transformer", 0).build(2).is_err());
    }
}
