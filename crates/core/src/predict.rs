//! Runtime parameter-version prediction (paper §III-B, Eq. 6–7).
//!
//! During the mutual-negotiation phase the coordinator estimates each
//! device's expected parameter version per sync window from its measured
//! warm-up time. At runtime, actual versions are fed back each round and
//! the next round's versions are forecast with Brown's double exponential
//! smoothing (Eq. 7) so selection keeps tracking drifting device speeds.

use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// The expected parameter version of a device per sync window, derived
/// from its warm-up measurement.
///
/// The paper's Eq. (6) prints `v̂ = T_sync · T_i / E_warm_up`, which would
/// give *slower* devices larger versions; we implement the physically
/// meaningful reading — the number of local steps device `i` fits into one
/// sync window (see DESIGN.md §6):
///
/// `v̂_i = (T_sync · H_E) / t_step_i`
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if the window or step time is not
/// positive and finite.
///
/// # Example
///
/// ```
/// use hadfl::predict::expected_version;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// // A 1 s window and 10 ms steps: 100 local updates expected.
/// assert_eq!(expected_version(1.0, 0.010)?, 100.0);
/// # Ok(())
/// # }
/// ```
pub fn expected_version(window_secs: f64, step_secs: f64) -> Result<f64, HadflError> {
    if !(window_secs > 0.0) || !window_secs.is_finite() {
        return Err(HadflError::InvalidConfig(format!(
            "sync window must be positive, got {window_secs}"
        )));
    }
    if !(step_secs > 0.0) || !step_secs.is_finite() {
        return Err(HadflError::InvalidConfig(format!(
            "step time must be positive, got {step_secs}"
        )));
    }
    Ok((window_secs / step_secs).floor())
}

/// Brown's double exponential smoothing over one device's version series
/// (Eq. 7).
///
/// Feed the actual version after each round with
/// [`observe`](VersionPredictor::observe); query the forecast `m` rounds
/// ahead with [`forecast`](VersionPredictor::forecast). Until two
/// observations arrive the predictor falls back to its warm-up prior.
///
/// # Example
///
/// ```
/// use hadfl::predict::VersionPredictor;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let mut p = VersionPredictor::new(0.5, 100.0)?;
/// for v in [100.0, 200.0, 300.0, 400.0, 500.0] {
///     p.observe(v);
/// }
/// // A linear trend of +100/round extrapolates ahead.
/// let f = p.forecast(1);
/// assert!(f > 500.0 && (f - 600.0).abs() < 80.0, "forecast {f}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionPredictor {
    alpha: f64,
    prior: f64,
    s1: Option<f64>,
    s2: Option<f64>,
    last: Option<f64>,
    observations: usize,
}

impl VersionPredictor {
    /// Creates a predictor with smoothing factor `alpha ∈ (0, 1)` and the
    /// warm-up prior (Eq. 6 value) used before observations arrive.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] if `alpha` is outside (0, 1)
    /// or the prior is not finite.
    pub fn new(alpha: f64, prior: f64) -> Result<Self, HadflError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(HadflError::InvalidConfig(format!(
                "smoothing alpha must be in (0, 1), got {alpha}"
            )));
        }
        if !prior.is_finite() {
            return Err(HadflError::InvalidConfig(format!(
                "prior must be finite, got {prior}"
            )));
        }
        Ok(VersionPredictor {
            alpha,
            prior,
            s1: None,
            s2: None,
            last: None,
            observations: 0,
        })
    }

    /// Records the actual version observed in the round just completed.
    pub fn observe(&mut self, version: f64) {
        let s1_prev = self.s1.unwrap_or(version);
        let s2_prev = self.s2.unwrap_or(version);
        let s1 = self.alpha * version + (1.0 - self.alpha) * s1_prev;
        let s2 = self.alpha * s1 + (1.0 - self.alpha) * s2_prev;
        self.s1 = Some(s1);
        self.s2 = Some(s2);
        self.last = Some(version);
        self.observations += 1;
    }

    /// Forecasts the version `m` rounds ahead of the last observation
    /// (Eq. 7: `a + b·m`). With fewer than two observations, returns the
    /// warm-up prior (or the single observation, for `m = 0` continuity).
    pub fn forecast(&self, m: u32) -> f64 {
        match (self.s1, self.s2) {
            (Some(s1), Some(s2)) if self.observations >= 2 => {
                let a = 2.0 * s1 - s2;
                let b = self.alpha / (1.0 - self.alpha) * (s1 - s2);
                a + b * f64::from(m)
            }
            _ => self.last.unwrap_or(self.prior),
        }
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The most recent observed version, if any.
    pub fn last_observed(&self) -> Option<f64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_version_floors() {
        assert_eq!(expected_version(1.0, 0.3).unwrap(), 3.0);
        assert_eq!(expected_version(0.5, 0.01).unwrap(), 50.0);
        assert!(expected_version(0.0, 0.1).is_err());
        assert!(expected_version(1.0, 0.0).is_err());
        assert!(expected_version(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn prior_used_before_observations() {
        let p = VersionPredictor::new(0.5, 42.0).unwrap();
        assert_eq!(p.forecast(1), 42.0);
        assert_eq!(p.observations(), 0);
        assert_eq!(p.last_observed(), None);
    }

    #[test]
    fn single_observation_is_echoed() {
        let mut p = VersionPredictor::new(0.5, 42.0).unwrap();
        p.observe(10.0);
        assert_eq!(p.forecast(1), 10.0);
        assert_eq!(p.last_observed(), Some(10.0));
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let mut p = VersionPredictor::new(0.4, 0.0).unwrap();
        for _ in 0..20 {
            p.observe(50.0);
        }
        for m in 0..4 {
            assert!((p.forecast(m) - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_trend_is_extrapolated() {
        let mut p = VersionPredictor::new(0.6, 0.0).unwrap();
        for j in 1..=30 {
            p.observe(10.0 * j as f64);
        }
        // After long exposure to slope 10/round the 1-ahead forecast should
        // be close to 310.
        let f = p.forecast(1);
        assert!((f - 310.0).abs() < 5.0, "forecast {f}");
        // and further horizons extend the trend
        assert!(p.forecast(3) > p.forecast(1));
    }

    #[test]
    fn speed_change_is_tracked() {
        let mut p = VersionPredictor::new(0.7, 0.0).unwrap();
        for _ in 0..10 {
            p.observe(100.0);
        }
        // Device suddenly slows to half speed.
        for _ in 0..10 {
            p.observe(50.0);
        }
        let f = p.forecast(1);
        assert!(f < 60.0, "predictor failed to adapt: {f}");
    }

    #[test]
    fn larger_alpha_tracks_faster() {
        let run = |alpha: f64| {
            let mut p = VersionPredictor::new(alpha, 0.0).unwrap();
            for _ in 0..10 {
                p.observe(100.0);
            }
            p.observe(50.0);
            // Compare the smoothed level (m = 0): the trend term at larger
            // horizons deliberately overshoots on a step change.
            p.forecast(0)
        };
        // The paper: "the larger α, the closer the predicted value to v_i".
        assert!((run(0.9) - 50.0).abs() < (run(0.1) - 50.0).abs());
    }

    /// Eq. 7 by hand, α = 0.5, series [10, 20]:
    /// s₁⁽¹⁾ = 10, s₂⁽¹⁾ = 10 (seeded with the first observation);
    /// s₁⁽²⁾ = 0.5·20 + 0.5·10 = 15, s₂⁽²⁾ = 0.5·15 + 0.5·10 = 12.5;
    /// a = 2·15 − 12.5 = 17.5, b = (0.5/0.5)·(15 − 12.5) = 2.5,
    /// so the forecast line is 17.5 + 2.5·m.
    #[test]
    fn two_observations_match_eq7_by_hand() {
        let mut p = VersionPredictor::new(0.5, 0.0).unwrap();
        p.observe(10.0);
        p.observe(20.0);
        assert_eq!(p.forecast(0), 17.5);
        assert_eq!(p.forecast(1), 20.0);
        assert_eq!(p.forecast(2), 22.5);
        assert_eq!(p.forecast(3), 25.0);
    }

    /// A constant series keeps s₁ = s₂ exactly, so the trend term
    /// b = α/(1−α)·(s₁−s₂) is exactly zero at every horizon — not
    /// merely small.
    #[test]
    fn constant_series_has_exactly_zero_trend() {
        let mut p = VersionPredictor::new(0.3, 0.0).unwrap();
        p.observe(50.0);
        p.observe(50.0);
        for m in 0..6 {
            assert_eq!(p.forecast(m), 50.0);
        }
    }

    /// Until two observations arrive there is no trend to extrapolate:
    /// every horizon falls back to the prior, then to the single
    /// observation.
    #[test]
    fn horizons_collapse_below_two_observations() {
        let mut p = VersionPredictor::new(0.3, 7.0).unwrap();
        for m in 0..4 {
            assert_eq!(p.forecast(m), 7.0);
        }
        p.observe(12.0);
        assert_eq!(p.observations(), 1);
        for m in 0..4 {
            assert_eq!(p.forecast(m), 12.0);
        }
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(VersionPredictor::new(0.0, 0.0).is_err());
        assert!(VersionPredictor::new(1.0, 0.0).is_err());
        assert!(VersionPredictor::new(-0.5, 0.0).is_err());
        assert!(VersionPredictor::new(0.5, f64::NAN).is_err());
    }
}
