//! Message fabric abstraction for deployed HADFL clusters.
//!
//! The protocol loops in [`crate::exec`] are written against the
//! [`Port`] trait: one mailbox per participant, addressed by dense
//! participant id. Devices occupy ids `0..k`; the coordinator is id `k`
//! ([`coordinator_id`]). Two fabrics implement it:
//!
//! * [`ChannelTransport`] — in-process crossbeam channels, used by
//!   [`crate::exec::run_threaded`] and the tests;
//! * `hadfl-net`'s `TcpTransport` — real sockets for multi-process
//!   clusters.
//!
//! Frames on either fabric are encoded [`Message`]s, so the byte
//! accounting ([`Port::stats`]) is identical across fabrics and
//! comparable with the analytical driver's ledger.

use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hadfl_simnet::{DeviceId, Endpoint, NetStats};
use hadfl_telemetry::{EventKind, LamportClock, Telemetry};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::error::HadflError;
use crate::wire::{self, CausalStamp, Message};

/// The coordinator's participant id in a `k`-device cluster.
pub fn coordinator_id(k: usize) -> usize {
    k
}

/// The [`NetStats`] endpoint for participant `id` of a `k`-device
/// cluster: devices map to themselves, the coordinator to the server.
pub fn endpoint_of(id: usize, k: usize) -> Endpoint {
    if id == coordinator_id(k) {
        Endpoint::Server
    } else {
        Endpoint::Device(DeviceId(id))
    }
}

/// One participant's handle on the cluster's message fabric.
///
/// A `Port` is claimed once per participant and moved into that
/// participant's thread (or owned by its process). Sends are
/// non-blocking; receives deliver whole [`Message`]s in arrival order.
pub trait Port: Send {
    /// This participant's id.
    fn id(&self) -> usize;

    /// Total number of participants (devices plus coordinator).
    fn participants(&self) -> usize;

    /// Sends `msg` to participant `to` without blocking on delivery.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when `to` is unknown or the
    /// peer is conclusively unreachable (its mailbox is gone, or every
    /// reconnect attempt was exhausted). An error is a *hint* the peer
    /// is dead; the §III-D handshake remains the authoritative check.
    fn send(&mut self, to: usize, msg: &Message) -> Result<(), HadflError>;

    /// Returns the next pending message, or `None` when the mailbox is
    /// currently empty.
    ///
    /// # Errors
    ///
    /// Returns an error when the fabric is torn down or an inbound frame
    /// fails to decode.
    fn try_recv(&mut self) -> Result<Option<Message>, HadflError>;

    /// Waits up to `timeout` for a message; `None` means the wait timed
    /// out.
    ///
    /// # Errors
    ///
    /// Returns an error when the fabric is torn down or an inbound frame
    /// fails to decode.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, HadflError>;

    /// Snapshot of the payload bytes this port has sent and received,
    /// charged per encoded frame (transport-internal chatter such as
    /// heartbeats is excluded, so channel and TCP fabrics report the
    /// same ledger for the same protocol run).
    fn stats(&self) -> NetStats;
}

/// In-process fabric: one unbounded crossbeam channel per participant.
///
/// Construct with [`ChannelTransport::hub`], then [`claim`] each
/// participant's [`Port`] and move it into its thread.
///
/// [`claim`]: ChannelTransport::claim
///
/// # Example
///
/// ```
/// use hadfl::transport::{ChannelTransport, Port};
/// use hadfl::wire::Message;
///
/// let mut hub = ChannelTransport::hub(2);
/// let mut a = hub.claim(0).unwrap();
/// let mut b = hub.claim(1).unwrap();
/// a.send(1, &Message::Handshake { from: 0 }).unwrap();
/// assert_eq!(b.try_recv().unwrap(), Some(Message::Handshake { from: 0 }));
/// ```
pub struct ChannelTransport {
    txs: Vec<Sender<bytes::Bytes>>,
    rxs: Vec<Option<Receiver<bytes::Bytes>>>,
    stats: Arc<Mutex<NetStats>>,
}

impl ChannelTransport {
    /// Creates a fabric with `participants` mailboxes (for a `k`-device
    /// cluster pass `k + 1`; the coordinator is participant `k`).
    pub fn hub(participants: usize) -> Self {
        let mut txs = Vec::with_capacity(participants);
        let mut rxs = Vec::with_capacity(participants);
        for _ in 0..participants {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        ChannelTransport {
            txs,
            rxs,
            stats: Arc::new(Mutex::new(NetStats::new())),
        }
    }

    /// Claims participant `id`'s port. Each id can be claimed once.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for an out-of-range or
    /// already-claimed id.
    pub fn claim(&mut self, id: usize) -> Result<ChannelPort, HadflError> {
        self.claim_instrumented(id, Telemetry::disabled(), None)
    }

    /// [`Self::claim`] with a [`Telemetry`] handle and a clock for
    /// timestamping: the port emits one `FrameSent` per outbound
    /// payload frame and one `FrameReceived` per inbound frame —
    /// stamped with the frame's Lamport value — mirroring the TCP
    /// fabric's instrumented ports, so a fully in-process scripted
    /// cluster produces the same causal trace shape a real deployment
    /// does.
    ///
    /// # Errors
    ///
    /// As [`Self::claim`].
    pub fn claim_instrumented(
        &mut self,
        id: usize,
        tel: Telemetry,
        clock: Option<Arc<dyn crate::clock::Clock>>,
    ) -> Result<ChannelPort, HadflError> {
        let slot = self
            .rxs
            .get_mut(id)
            .ok_or_else(|| HadflError::InvalidConfig(format!("no participant {id}")))?;
        let rx = slot.take().ok_or_else(|| {
            HadflError::InvalidConfig(format!("participant {id} already claimed"))
        })?;
        Ok(ChannelPort {
            id,
            txs: self.txs.clone(),
            rx,
            stats: Arc::clone(&self.stats),
            lamport: tel.lamport_clock(),
            tel,
            clock,
        })
    }

    /// The fabric-wide byte ledger (all ports combined).
    pub fn net_stats(&self) -> NetStats {
        self.stats.lock().clone()
    }
}

/// A participant's handle on a [`ChannelTransport`].
pub struct ChannelPort {
    id: usize,
    txs: Vec<Sender<bytes::Bytes>>,
    rx: Receiver<bytes::Bytes>,
    stats: Arc<Mutex<NetStats>>,
    /// This participant's Lamport clock: ticked per send, max-merged
    /// on every receive. Shared with the node's [`Telemetry`] handle
    /// when instrumented, so frame stamps and event `lam` fields share
    /// one scale.
    lamport: LamportClock,
    tel: Telemetry,
    clock: Option<Arc<dyn crate::clock::Clock>>,
}

impl ChannelPort {
    fn now(&self) -> Duration {
        self.clock.as_ref().map_or(Duration::ZERO, |c| c.now())
    }

    /// Opens an inbound frame: merges its stamp into the local Lamport
    /// clock and mirrors it as a `FrameReceived` event when
    /// instrumented.
    fn open_frame(&self, frame: &[u8]) -> Result<Message, HadflError> {
        let (stamp, msg) = wire::open(frame)?;
        self.lamport.observe(stamp.lamport);
        if self.tel.enabled() {
            self.tel.emit(
                self.now(),
                EventKind::FrameReceived {
                    src: stamp.origin,
                    dst: self.id as u32,
                    bytes: (frame.len() - wire::STAMP_LEN) as u64,
                    kind: msg.kind().to_string(),
                    lamport: stamp.lamport,
                },
            );
        }
        Ok(msg)
    }
}

impl Port for ChannelPort {
    fn id(&self) -> usize {
        self.id
    }

    fn participants(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, to: usize, msg: &Message) -> Result<(), HadflError> {
        let tx = self
            .txs
            .get(to)
            .ok_or_else(|| HadflError::InvalidConfig(format!("no participant {to}")))?;
        let stamp = CausalStamp {
            origin: self.id as u32,
            lamport: self.lamport.tick(),
        };
        let frame = wire::seal(stamp, msg);
        // The ledger charges the payload only — the stamp is transport
        // overhead, exactly like a socket fabric's length prefix.
        let payload = (frame.len() - wire::STAMP_LEN) as u64;
        let k = self.txs.len() - 1;
        self.stats
            .lock()
            .record(endpoint_of(self.id, k), endpoint_of(to, k), payload);
        if self.tel.enabled() {
            self.tel.emit(
                self.now(),
                EventKind::FrameSent {
                    src: self.id as u32,
                    dst: to as u32,
                    bytes: payload,
                    kind: msg.kind().to_string(),
                    lamport: stamp.lamport,
                },
            );
        }
        tx.send(frame)
            .map_err(|_| HadflError::InvalidConfig(format!("participant {to} is gone")))
    }

    fn try_recv(&mut self) -> Result<Option<Message>, HadflError> {
        match self.rx.try_recv() {
            Ok(frame) => self.open_frame(&frame).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(HadflError::InvalidConfig("fabric torn down".into()))
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, HadflError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => self.open_frame(&frame).map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(HadflError::InvalidConfig("fabric torn down".into()))
            }
        }
    }

    fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_routes_between_ports() {
        let mut hub = ChannelTransport::hub(3);
        let mut a = hub.claim(0).unwrap();
        let mut b = hub.claim(1).unwrap();
        let mut c = hub.claim(2).unwrap();
        a.send(1, &Message::Heartbeat { from: 0 }).unwrap();
        a.send(2, &Message::ReportRequest { round: 3 }).unwrap();
        b.send(2, &Message::Shutdown).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(Message::Heartbeat { from: 0 })
        );
        assert_eq!(
            c.try_recv().unwrap(),
            Some(Message::ReportRequest { round: 3 })
        );
        assert_eq!(c.try_recv().unwrap(), Some(Message::Shutdown));
        assert_eq!(c.try_recv().unwrap(), None);
    }

    #[test]
    fn claims_are_exclusive() {
        let mut hub = ChannelTransport::hub(2);
        assert!(hub.claim(0).is_ok());
        assert!(hub.claim(0).is_err());
        assert!(hub.claim(5).is_err());
    }

    #[test]
    fn stats_charge_encoded_frames() {
        let mut hub = ChannelTransport::hub(3);
        let mut dev = hub.claim(0).unwrap();
        let mut coord = hub.claim(2).unwrap();
        let msg = Message::VersionReport {
            device: 0,
            round: 1,
            version: 4.0,
        };
        dev.send(2, &msg).unwrap();
        coord.send(0, &Message::ReportRequest { round: 1 }).unwrap();
        let stats = hub.net_stats();
        // Participant 2 of a 2-device hub is the coordinator (server).
        assert_eq!(
            stats.sent_by(Endpoint::Device(DeviceId(0))),
            msg.encoded_len() as u64
        );
        assert_eq!(
            stats.server_bytes(),
            (msg.encoded_len() + Message::ReportRequest { round: 1 }.encoded_len()) as u64
        );
        assert_eq!(stats.messages(), 2);
    }

    #[test]
    fn stamps_tick_per_send_and_merge_on_receive() {
        use hadfl_telemetry::RingBufferSink;

        let mut hub = ChannelTransport::hub(3);
        let a_buf = RingBufferSink::new(16);
        let b_buf = RingBufferSink::new(16);
        let a_tel = Telemetry::new(0, vec![Box::new(a_buf.clone())]);
        let b_tel = Telemetry::new(1, vec![Box::new(b_buf.clone())]);
        let mut a = hub.claim_instrumented(0, a_tel, None).unwrap();
        let mut b = hub.claim_instrumented(1, b_tel.clone(), None).unwrap();

        a.send(1, &Message::Handshake { from: 0 }).unwrap();
        a.send(1, &Message::HandshakeAck { from: 0 }).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());

        let sent: Vec<u64> = a_buf
            .snapshot()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::FrameSent { lamport, .. } => Some(*lamport),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![1, 2], "stamps tick per send");
        let received: Vec<u64> = b_buf
            .snapshot()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::FrameReceived { lamport, .. } => Some(*lamport),
                _ => None,
            })
            .collect();
        assert_eq!(
            received,
            vec![1, 2],
            "receive events carry the sender's stamp"
        );
        // The receiver's clock merged past the highest inbound stamp,
        // so anything it emits from here on sorts after the sends.
        assert!(b_tel.lamport_clock().current() > 2);
        // And receive events themselves were stamped above the frame.
        for event in b_buf.snapshot() {
            if let EventKind::FrameReceived { lamport, .. } = &event.kind {
                assert!(event.lam > *lamport);
            }
        }
    }

    #[test]
    fn recv_timeout_times_out_cleanly() {
        let mut hub = ChannelTransport::hub(2);
        let mut a = hub.claim(0).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), None);
    }
}
