//! Hierarchical device grouping (paper §III-C, Fig. 2a).
//!
//! With many devices the coordinator splits them into groups. Intra-group
//! partial synchronization runs every round exactly as in the flat
//! framework; *inter-group* synchronization runs every
//! `inter_group_every` rounds: one representative per group forms a ring,
//! the representatives' (already group-merged) models are averaged, and
//! each representative broadcasts the result back into its group.

use std::collections::BTreeMap;

use hadfl_nn::LrSchedule;
use hadfl_simnet::{ComputeModel, DeviceId, Endpoint, NetStats, VirtualTime};
use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::aggregate::blend_params;
use crate::config::HadflConfig;
use crate::coordinator::{LivenessMonitor, RuntimeSupervisor, StrategyGenerator};
use crate::driver::SimOptions;
use crate::error::HadflError;
use crate::gossip::run_partial_sync;
use crate::strategy::Strategy;
use crate::topology::Ring;
use crate::trace::{RoundRecord, Trace};
use crate::workload::Workload;

/// A partition of `0..devices` into contiguous groups of at most
/// `group_size` members.
///
/// # Example
///
/// ```
/// use hadfl::group::partition_groups;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let groups = partition_groups(7, 3)?;
/// assert_eq!(groups.len(), 3);
/// assert_eq!(groups[0].len(), 3);
/// assert_eq!(groups[2].len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn partition_groups(
    devices: usize,
    group_size: usize,
) -> Result<Vec<Vec<DeviceId>>, HadflError> {
    if group_size == 0 {
        return Err(HadflError::InvalidConfig(
            "group size must be positive".into(),
        ));
    }
    if devices == 0 {
        return Err(HadflError::InvalidConfig("no devices to group".into()));
    }
    Ok((0..devices)
        .map(DeviceId)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(<[DeviceId]>::to_vec)
        .collect())
}

/// Result of a grouped HADFL run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedRun {
    /// The per-round trace (evaluates the inter-group consensus model,
    /// or group 0's model between inter-group syncs).
    pub trace: Trace,
    /// The group partition used.
    pub groups: Vec<Vec<usize>>,
    /// Rounds at which inter-group synchronization fired.
    pub inter_sync_rounds: Vec<usize>,
}

/// Runs HADFL with hierarchical grouping.
///
/// Devices are partitioned into groups of at most `config.group_size`
/// (which must be `Some`); each group runs the heterogeneity-aware local
/// training + intra-group probabilistic ring sync every round, and every
/// `config.inter_group_every` rounds the group representatives average
/// across groups.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] when `config.group_size` is
/// `None` or any group would have fewer than 2 devices available, plus
/// the usual substrate errors.
pub fn run_hadfl_grouped(
    workload: &Workload,
    config: &HadflConfig,
    opts: &SimOptions,
) -> Result<GroupedRun, HadflError> {
    let group_size = config.group_size.ok_or_else(|| {
        HadflError::InvalidConfig("run_hadfl_grouped requires config.group_size".into())
    })?;
    let k = opts.powers.len();
    let groups = partition_groups(k, group_size)?;
    if groups.iter().any(|g| g.len() < 2) {
        return Err(HadflError::InvalidConfig(
            "every group needs at least 2 devices (adjust group_size)".into(),
        ));
    }

    let mut built = workload.build(k)?;
    let wire_bytes = opts.wire_model_bytes.unwrap_or(built.model_bytes);
    let compute = ComputeModel::new(opts.base_step_secs, &opts.powers)?.with_jitter(opts.jitter);
    let monitor = LivenessMonitor::new(opts.faults.clone());
    let master_rng = SeedStream::new(config.seed ^ 0x6208_6208);
    let mut device_rngs: Vec<SeedStream> = (0..k).map(|i| master_rng.fork(i as u64)).collect();
    let mut ring_rng = master_rng.fork(0xF00D);
    let mut stats = NetStats::new();

    // Warm-up (same mutual negotiation as the flat driver).
    let batches = built.batches_per_epoch();
    let mut warmup_end = VirtualTime::ZERO;
    for (i, rt) in built.runtimes.iter_mut().enumerate() {
        rt.set_optimizer(LrSchedule::constant(config.warmup_lr), config.momentum);
        let steps = config.warmup_epochs as usize * batches[i];
        rt.train_steps(steps)?;
        let secs = compute.steps_time(DeviceId(i), steps, Some(&mut device_rngs[i]))?;
        warmup_end = warmup_end.max(VirtualTime::ZERO.after(secs));
    }
    let strategy = Strategy::derive(&compute, &batches, config.t_sync)?;
    let window = strategy.window_secs;
    let priors: Vec<f64> = (0..k)
        .map(|i| built.runtimes[i].steps_done as f64 + strategy.local_steps[i] as f64)
        .collect();
    let mut supervisor = RuntimeSupervisor::new(config.smoothing_alpha, &priors)?;
    // One strategy generator per group keeps selection streams independent.
    let mut generators: Vec<StrategyGenerator> = groups
        .iter()
        .enumerate()
        .map(|(gi, _)| {
            let mut cfg = config.clone();
            cfg.seed = config.seed ^ (0x6209 + gi as u64);
            StrategyGenerator::new(&cfg)
        })
        .collect();
    for rt in &mut built.runtimes {
        rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
    }

    let mut trace = Trace::new("hadfl_grouped", k, wire_bytes);
    let mut inter_sync_rounds = Vec::new();
    let mut device_free = vec![warmup_end; k];
    let mut window_start = warmup_end;
    let mut group_merged: Vec<Vec<f32>> =
        vec![built.runtimes[0].model.param_vector(); groups.len()];

    for round in 1..=opts.max_rounds {
        let window_end = window_start.after(window);

        // Local training (identical to the flat driver).
        let mut losses = Vec::new();
        for i in 0..k {
            let dev = DeviceId(i);
            if !(monitor.is_up(dev, window_start) && monitor.is_up(dev, window_end)) {
                device_free[i] = device_free[i].max(window_end);
                continue;
            }
            let mut budget = window_end.elapsed_since(device_free[i]);
            let mut steps = 0usize;
            while budget > 0.0 {
                let dt = compute.step_time(dev, Some(&mut device_rngs[i]))?;
                if dt > budget {
                    break;
                }
                budget -= dt;
                steps += 1;
            }
            let loss = built.runtimes[i].train_steps(steps)?;
            if steps > 0 {
                losses.push(loss);
            }
            device_free[i] = window_end;
        }
        let versions: Vec<f64> = built
            .runtimes
            .iter()
            .map(|rt| rt.steps_done as f64)
            .collect();
        let predicted = supervisor.predicted_versions();

        // Intra-group sync, per group.
        let mut sync_end = window_end;
        for (gi, group) in groups.iter().enumerate() {
            let available: Vec<DeviceId> = group
                .iter()
                .copied()
                .filter(|&d| monitor.is_up(d, window_start))
                .collect();
            if available.len() < 2 {
                continue;
            }
            let pred: Vec<f64> = available.iter().map(|d| predicted[d.index()]).collect();
            let plan = generators[gi].plan_round(&available, &pred)?;
            let params: BTreeMap<DeviceId, Vec<f32>> = plan
                .ring
                .members()
                .iter()
                .map(|&d| (d, built.runtimes[d.index()].model.param_vector()))
                .collect();
            let outcome = run_partial_sync(
                &plan.ring,
                &params,
                None,
                &opts.faults,
                window_end,
                &opts.link,
                config.handshake_timeout_secs,
                built.model_bytes,
                wire_bytes,
                &mut stats,
            )?;
            for d in &outcome.participants {
                built.runtimes[d.index()]
                    .model
                    .set_param_vector(&outcome.merged)?;
            }
            let broadcaster = if outcome.participants.contains(&plan.broadcaster) {
                plan.broadcaster
            } else {
                outcome.participants[0]
            };
            for u in &plan.unselected {
                stats.record(
                    Endpoint::Device(broadcaster),
                    Endpoint::Device(*u),
                    wire_bytes,
                );
                let mut local = built.runtimes[u.index()].model.param_vector();
                blend_params(&mut local, &outcome.merged, config.blend_beta)?;
                built.runtimes[u.index()].model.set_param_vector(&local)?;
            }
            group_merged[gi] = outcome.merged;
            sync_end = sync_end.max(window_end.after(outcome.comm_secs));
        }

        // Inter-group sync on the configured period.
        let mut eval_model = group_merged[0].clone();
        if round % config.inter_group_every as usize == 0 && groups.len() >= 2 {
            inter_sync_rounds.push(round);
            // One live representative per group.
            let mut reps = Vec::new();
            for group in &groups {
                if let Some(&rep) = group.iter().find(|&&d| monitor.is_up(d, window_end)) {
                    reps.push(rep);
                }
            }
            if reps.len() >= 2 {
                let ring = Ring::random(&reps, &mut ring_rng)?;
                let params: BTreeMap<DeviceId, Vec<f32>> = reps
                    .iter()
                    .enumerate()
                    .map(|(gi, &d)| (d, group_merged[gi].clone()))
                    .collect();
                let outcome = run_partial_sync(
                    &ring,
                    &params,
                    None,
                    &opts.faults,
                    window_end,
                    &opts.link,
                    config.handshake_timeout_secs,
                    built.model_bytes,
                    wire_bytes,
                    &mut stats,
                )?;
                // Representatives broadcast the consensus into their groups.
                for (gi, group) in groups.iter().enumerate() {
                    group_merged[gi] = outcome.merged.clone();
                    let rep = reps.get(gi).copied();
                    for &d in group {
                        if !monitor.is_up(d, window_end) {
                            continue;
                        }
                        if let Some(rep) = rep {
                            if rep != d {
                                stats.record(
                                    Endpoint::Device(rep),
                                    Endpoint::Device(d),
                                    wire_bytes,
                                );
                            }
                        }
                        let mut local = built.runtimes[d.index()].model.param_vector();
                        blend_params(&mut local, &outcome.merged, config.blend_beta)?;
                        built.runtimes[d.index()].model.set_param_vector(&local)?;
                    }
                }
                sync_end = sync_end.max(window_end.after(outcome.comm_secs));
                eval_model = outcome.merged;
            }
        }

        if config.reset_momentum_on_sync {
            for rt in &mut built.runtimes {
                rt.set_optimizer(LrSchedule::constant(config.lr), config.momentum);
            }
        }
        supervisor.observe_round(&versions)?;

        let samples: u64 = built.runtimes.iter().map(|rt| rt.samples_seen).sum();
        let epoch_equiv = samples as f64 / built.train_size as f64;
        let done = epoch_equiv >= opts.epochs_total || round == opts.max_rounds;
        if round % opts.eval_every == 0 || done {
            let metrics = built.evaluate_params(&eval_model)?;
            trace.push(RoundRecord {
                round,
                time_secs: sync_end.as_secs(),
                epoch_equiv,
                train_loss: if losses.is_empty() {
                    f32::NAN
                } else {
                    losses.iter().sum::<f32>() / losses.len() as f32
                },
                test_accuracy: metrics.accuracy,
                selected: Vec::new(),
                versions,
            });
        }
        if done {
            break;
        }
        window_start = window_end;
    }

    trace.set_comm(&stats);
    Ok(GroupedRun {
        trace,
        groups: groups
            .iter()
            .map(|g| g.iter().map(|d| d.index()).collect())
            .collect(),
        inter_sync_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_devices() {
        let groups = partition_groups(10, 4).unwrap();
        assert_eq!(groups.len(), 3);
        let flat: Vec<usize> = groups.iter().flatten().map(|d| d.index()).collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn partition_validates() {
        assert!(partition_groups(0, 2).is_err());
        assert!(partition_groups(4, 0).is_err());
    }

    #[test]
    fn grouped_run_trains_and_inter_syncs() {
        let config = HadflConfig::builder()
            .group_size(Some(2))
            .inter_group_every(2)
            .seed(3)
            .build()
            .unwrap();
        let opts = SimOptions::quick(&[2.0, 1.0, 2.0, 1.0]);
        let run = run_hadfl_grouped(&Workload::quick("mlp", 2), &config, &opts).unwrap();
        assert_eq!(run.groups, vec![vec![0, 1], vec![2, 3]]);
        assert!(!run.inter_sync_rounds.is_empty());
        assert!(run.inter_sync_rounds.iter().all(|r| r % 2 == 0));
        let last = run.trace.records.last().unwrap();
        assert!(last.epoch_equiv >= opts.epochs_total);
        assert!(last.test_accuracy > 0.2, "accuracy {}", last.test_accuracy);
        // Decentralized: no server model traffic at all in the grouped run.
        assert_eq!(run.trace.comm.server_bytes, 0);
    }

    #[test]
    fn grouped_requires_group_size() {
        let config = HadflConfig::builder().build().unwrap();
        let opts = SimOptions::quick(&[1.0, 1.0]);
        assert!(run_hadfl_grouped(&Workload::quick("mlp", 0), &config, &opts).is_err());
    }

    #[test]
    fn grouped_rejects_singleton_groups() {
        let config = HadflConfig::builder().group_size(Some(2)).build().unwrap();
        // 5 devices into groups of 2 leaves a singleton.
        let opts = SimOptions::quick(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(run_hadfl_grouped(&Workload::quick("mlp", 0), &config, &opts).is_err());
    }
}
