use std::error::Error;
use std::fmt;

use hadfl_nn::NnError;
use hadfl_simnet::SimError;

/// Error produced by the HADFL framework.
///
/// # Example
///
/// ```
/// use hadfl::HadflConfig;
///
/// let err = HadflConfig::builder().num_selected(0).build().unwrap_err();
/// assert!(err.to_string().contains("selected"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum HadflError {
    /// The framework configuration was inconsistent.
    InvalidConfig(String),
    /// A training-substrate operation failed.
    Nn(NnError),
    /// A simulator operation failed.
    Sim(SimError),
    /// Not enough live devices to continue (all selected devices down and
    /// no bypass possible).
    ClusterDead {
        /// Simulation round in which the cluster died.
        round: usize,
    },
}

impl fmt::Display for HadflError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HadflError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HadflError::Nn(e) => write!(f, "training substrate error: {e}"),
            HadflError::Sim(e) => write!(f, "simulator error: {e}"),
            HadflError::ClusterDead { round } => {
                write!(f, "no live devices remain at round {round}")
            }
        }
    }
}

impl Error for HadflError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HadflError::Nn(e) => Some(e),
            HadflError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for HadflError {
    fn from(e: NnError) -> Self {
        HadflError::Nn(e)
    }
}

impl From<SimError> for HadflError {
    fn from(e: SimError) -> Self {
        HadflError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors_with_source() {
        let e = HadflError::from(NnError::NonFinite("loss"));
        assert!(Error::source(&e).is_some());
        let e = HadflError::from(SimError::InvalidParameter("x".into()));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn cluster_dead_names_round() {
        assert!(HadflError::ClusterDead { round: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HadflError>();
    }
}
