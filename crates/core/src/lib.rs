//! # HADFL — Heterogeneity-aware Decentralized Federated Learning
//!
//! A from-scratch Rust reproduction of *HADFL: Heterogeneity-aware
//! Decentralized Federated Learning Framework* (Cao et al., DAC 2021).
//!
//! HADFL trains a shared model over devices with unequal computing power
//! without a central parameter server and without synchronous barriers:
//!
//! - **Heterogeneity-aware local training** — each device runs as many
//!   local SGD steps as fit in a sync window derived from the
//!   *hyperperiod* of per-epoch times ([`strategy`]).
//! - **Runtime version prediction** — the coordinator forecasts each
//!   device's parameter version with double exponential smoothing
//!   ([`predict`]).
//! - **Probability-based partial aggregation** — each round `N_p` devices
//!   are selected with probability peaked at the third version quartile
//!   ([`select`]) and exchange parameters over a random directed ring
//!   ([`topology`], [`gossip`], [`aggregate`]).
//! - **Fault tolerance** — dead ring members are detected by timeout,
//!   confirmed by handshake, and bypassed ([`gossip`]).
//! - **Grouping** — hierarchical intra-/inter-group synchronization for
//!   larger clusters ([`group`]).
//!
//! The [`driver`] module wires everything into a deterministic
//! virtual-time simulation (the paper itself emulates heterogeneity with
//! `sleep()`; see `DESIGN.md`) and emits [`trace::Trace`]s from which the
//! paper's tables and figures are regenerated.
//!
//! # Quick start
//!
//! ```no_run
//! use hadfl::driver::{run_hadfl, SimOptions};
//! use hadfl::{HadflConfig, Workload};
//!
//! # fn main() -> Result<(), hadfl::HadflError> {
//! let workload = Workload::quick("resnet18_lite", 0);
//! let config = HadflConfig::builder().num_selected(2).seed(42).build()?;
//! let opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]); // the paper's ratios
//! let run = run_hadfl(&workload, &config, &opts)?;
//! let (acc, secs) = run.trace.time_to_max_accuracy().expect("trained");
//! println!("reached {:.1}% at {:.1} virtual s", acc * 100.0, secs);
//! # Ok(())
//! # }
//! ```

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
pub mod aggregate;
pub mod clock;
mod config;
pub mod coordinator;
pub mod driver;
mod error;
pub mod exec;
pub mod gossip;
pub mod group;
pub mod predict;
pub mod schedule;
pub mod select;
pub mod strategy;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod wire;
pub mod workload;

pub use config::{HadflConfig, HadflConfigBuilder};
pub use error::HadflError;
pub use workload::Workload;
