use serde::{Deserialize, Serialize};

use crate::error::HadflError;
use crate::select::{SelectionPolicy, VersionScale};

/// Framework configuration (use [`HadflConfig::builder`]).
///
/// Field names follow the paper: `t_sync` is `T_sync` (aggregation every
/// `t_sync` hyperperiods), `num_selected` is `N_p`, `warmup_epochs` is
/// `E_warm_up`, `smoothing_alpha` is the α of Eq. (7).
///
/// # Example
///
/// ```
/// use hadfl::HadflConfig;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let cfg = HadflConfig::builder()
///     .t_sync(1)
///     .num_selected(2)
///     .warmup_epochs(1)
///     .seed(42)
///     .build()?;
/// assert_eq!(cfg.num_selected, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HadflConfig {
    /// Aggregate every `t_sync` hyperperiods (paper's `T_sync`, ≥ 1).
    pub t_sync: u32,
    /// Number of devices selected for partial synchronization (`N_p`).
    pub num_selected: usize,
    /// Mutual-negotiation warm-up length in epochs (`E_warm_up`, ≥ 1).
    pub warmup_epochs: u32,
    /// Learning rate during warm-up (the paper uses a small one).
    pub warmup_lr: f32,
    /// Learning rate after warm-up (the paper uses 0.01).
    pub lr: f32,
    /// SGD momentum (0 disables).
    pub momentum: f32,
    /// Smoothing factor α of the double-exponential version predictor
    /// (Eq. 7), in (0, 1).
    pub smoothing_alpha: f64,
    /// Unselected devices integrate the broadcast model as
    /// `w ← β·w_sync + (1−β)·w_local`; `β = 1` overwrites.
    pub blend_beta: f32,
    /// Device-selection policy for partial aggregation (Eq. 8 by default).
    pub selection: SelectionPolicy,
    /// Version normalization before the Gaussian pdf (see DESIGN.md §6).
    pub version_scale: VersionScale,
    /// How long a ring member waits for its upstream before starting the
    /// handshake/bypass procedure (§III-D), in virtual seconds.
    pub handshake_timeout_secs: f64,
    /// Split devices into groups of at most this size (`None` = one
    /// group). Intra-group sync runs every round; inter-group sync every
    /// [`inter_group_every`](Self::inter_group_every) rounds.
    pub group_size: Option<usize>,
    /// Inter-group synchronization period, in intra-group rounds (≥ 1).
    pub inter_group_every: u32,
    /// Reset SGD momentum buffers after every synchronization. Local
    /// momentum accumulated against pre-merge parameters is stale after
    /// the merge; clearing it stabilizes long heterogeneity-aware local
    /// runs (an implementation refinement the paper does not specify).
    pub reset_momentum_on_sync: bool,
    /// Weight the partial aggregation by shard sizes (`n_k / N`, Eq. 2)
    /// instead of uniformly — the paper's future-work "data
    /// distribution" optimization, useful under non-IID sharding.
    pub weight_by_samples: bool,
    /// Master seed for every random choice the framework makes.
    pub seed: u64,
}

impl HadflConfig {
    /// Starts building a configuration pre-loaded with the paper's
    /// defaults (`T_sync = 1`, `N_p = 2`, `E_warm_up = 1`, lr 0.01,
    /// α = 0.5, β = 0.5).
    pub fn builder() -> HadflConfigBuilder {
        HadflConfigBuilder::default()
    }

    fn validate(&self) -> Result<(), HadflError> {
        if self.t_sync == 0 {
            return Err(HadflError::InvalidConfig(
                "t_sync must be at least 1".into(),
            ));
        }
        if self.num_selected < 2 {
            return Err(HadflError::InvalidConfig(
                "at least 2 devices must be selected for a ring".into(),
            ));
        }
        if self.warmup_epochs == 0 {
            return Err(HadflError::InvalidConfig(
                "warmup_epochs must be at least 1".into(),
            ));
        }
        for (name, v) in [("warmup_lr", self.warmup_lr), ("lr", self.lr)] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(HadflError::InvalidConfig(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(HadflError::InvalidConfig(format!(
                "momentum must be in [0, 1), got {}",
                self.momentum
            )));
        }
        if !(self.smoothing_alpha > 0.0 && self.smoothing_alpha < 1.0) {
            return Err(HadflError::InvalidConfig(format!(
                "smoothing_alpha must be in (0, 1), got {}",
                self.smoothing_alpha
            )));
        }
        if !(0.0..=1.0).contains(&self.blend_beta) {
            return Err(HadflError::InvalidConfig(format!(
                "blend_beta must be in [0, 1], got {}",
                self.blend_beta
            )));
        }
        if !(self.handshake_timeout_secs > 0.0) || !self.handshake_timeout_secs.is_finite() {
            return Err(HadflError::InvalidConfig(format!(
                "handshake_timeout_secs must be positive, got {}",
                self.handshake_timeout_secs
            )));
        }
        if self.group_size == Some(0) {
            return Err(HadflError::InvalidConfig(
                "group_size must be at least 1".into(),
            ));
        }
        if self.inter_group_every == 0 {
            return Err(HadflError::InvalidConfig(
                "inter_group_every must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`HadflConfig`]; see that type's example.
#[derive(Debug, Clone)]
pub struct HadflConfigBuilder {
    config: HadflConfig,
}

impl Default for HadflConfigBuilder {
    fn default() -> Self {
        HadflConfigBuilder {
            config: HadflConfig {
                t_sync: 1,
                num_selected: 2,
                warmup_epochs: 1,
                warmup_lr: 0.001,
                lr: 0.01,
                momentum: 0.9,
                smoothing_alpha: 0.5,
                blend_beta: 0.5,
                selection: SelectionPolicy::VersionGaussian,
                version_scale: VersionScale::ZScore,
                handshake_timeout_secs: 0.05,
                group_size: None,
                inter_group_every: 2,
                reset_momentum_on_sync: false,
                weight_by_samples: false,
                seed: 0,
            },
        }
    }
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.config.$name = value;
            self
        }
    };
}

impl HadflConfigBuilder {
    setter!(
        /// Sets the aggregation period in hyperperiods (`T_sync`).
        t_sync: u32
    );
    setter!(
        /// Sets the partial-synchronization set size (`N_p`).
        num_selected: usize
    );
    setter!(
        /// Sets the mutual-negotiation warm-up length (`E_warm_up`).
        warmup_epochs: u32
    );
    setter!(
        /// Sets the warm-up learning rate.
        warmup_lr: f32
    );
    setter!(
        /// Sets the post-warm-up learning rate.
        lr: f32
    );
    setter!(
        /// Sets the SGD momentum.
        momentum: f32
    );
    setter!(
        /// Sets the Eq. (7) smoothing factor α.
        smoothing_alpha: f64
    );
    setter!(
        /// Sets the unselected-device blend factor β.
        blend_beta: f32
    );
    setter!(
        /// Sets the device-selection policy.
        selection: SelectionPolicy
    );
    setter!(
        /// Sets the version normalization mode.
        version_scale: VersionScale
    );
    setter!(
        /// Sets the fault-tolerance handshake timeout (seconds).
        handshake_timeout_secs: f64
    );
    setter!(
        /// Sets the maximum group size (`None` = single group).
        group_size: Option<usize>
    );
    setter!(
        /// Sets the inter-group sync period, in intra-group rounds.
        inter_group_every: u32
    );
    setter!(
        /// Sets whether momentum buffers reset after each sync.
        reset_momentum_on_sync: bool
    );
    setter!(
        /// Sets whether aggregation is weighted by shard sizes (Eq. 2).
        weight_by_samples: bool
    );
    setter!(
        /// Sets the master seed.
        seed: u64
    );

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] describing the first
    /// out-of-range field.
    pub fn build(self) -> Result<HadflConfig, HadflError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let cfg = HadflConfig::builder().build().unwrap();
        assert_eq!(cfg.t_sync, 1);
        assert_eq!(cfg.num_selected, 2);
        assert_eq!(cfg.selection, SelectionPolicy::VersionGaussian);
    }

    #[test]
    fn rejects_out_of_range_fields() {
        assert!(HadflConfig::builder().t_sync(0).build().is_err());
        assert!(HadflConfig::builder().num_selected(1).build().is_err());
        assert!(HadflConfig::builder().warmup_epochs(0).build().is_err());
        assert!(HadflConfig::builder().lr(0.0).build().is_err());
        assert!(HadflConfig::builder().warmup_lr(-0.1).build().is_err());
        assert!(HadflConfig::builder().momentum(1.0).build().is_err());
        assert!(HadflConfig::builder().smoothing_alpha(0.0).build().is_err());
        assert!(HadflConfig::builder().smoothing_alpha(1.0).build().is_err());
        assert!(HadflConfig::builder().blend_beta(1.5).build().is_err());
        assert!(HadflConfig::builder()
            .handshake_timeout_secs(0.0)
            .build()
            .is_err());
        assert!(HadflConfig::builder().group_size(Some(0)).build().is_err());
        assert!(HadflConfig::builder().inter_group_every(0).build().is_err());
    }

    #[test]
    fn setters_chain() {
        let cfg = HadflConfig::builder()
            .t_sync(3)
            .num_selected(4)
            .blend_beta(1.0)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(
            (cfg.t_sync, cfg.num_selected, cfg.blend_beta, cfg.seed),
            (3, 4, 1.0, 99)
        );
    }
}
