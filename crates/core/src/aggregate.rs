//! Partial model aggregation math and gossip communication costs
//! (paper §III-D).
//!
//! The selected devices exchange parameters in a scatter-gather ring
//! (Horovod-style): each of the `n` members splits its vector into `n`
//! chunks and, over `2(n−1)` steps, every chunk is reduced and then
//! redistributed. The merged model is the *average* of the members'
//! models (Eq. 5 over the selected set).

use hadfl_simnet::{BandwidthMatrix, DeviceId, Endpoint, LinkModel, NetStats};
use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// Averages parameter vectors elementwise (Eq. 5 restricted to the
/// selected set — see DESIGN.md §6 on the `1/N_p` normalization).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if no vectors are given or their
/// lengths disagree.
///
/// # Example
///
/// ```
/// use hadfl::aggregate::average_params;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let merged = average_params(&[&[1.0, 3.0][..], &[3.0, 5.0][..]])?;
/// assert_eq!(merged, vec![2.0, 4.0]);
/// # Ok(())
/// # }
/// ```
pub fn average_params(params: &[&[f32]]) -> Result<Vec<f32>, HadflError> {
    let first = params
        .first()
        .ok_or_else(|| HadflError::InvalidConfig("averaging zero models".into()))?;
    let len = first.len();
    if params.iter().any(|p| p.len() != len) {
        return Err(HadflError::InvalidConfig(
            "parameter vectors differ in length".into(),
        ));
    }
    let scale = 1.0 / params.len() as f32;
    let _prof = hadfl_prof::scope_bytes("average_params", 4 * (len * params.len()) as u64);
    let mut out = vec![0.0f32; len];
    // Parallel over fixed element chunks; each element still sums the
    // models in ascending order and scales last, exactly like the
    // serial loop, so the merge is bit-identical at any thread count.
    let work = (len as u64) * (params.len() as u64);
    hadfl_par::plan(work).chunks_mut(&mut out, hadfl_par::F32_CHUNK, |chunk, ochunk| {
        let base = chunk * hadfl_par::F32_CHUNK;
        for p in params {
            let pchunk = &p[base..base + ochunk.len()];
            for (o, &v) in ochunk.iter_mut().zip(pchunk) {
                *o += v;
            }
        }
        for o in ochunk {
            *o *= scale;
        }
    });
    Ok(out)
}

/// Elementwise `acc[i] += src[i]` — the running-sum step of the
/// token-pass ring reduce, parallel over fixed element chunks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accumulate_params(acc: &mut [f32], src: &[f32]) {
    assert_eq!(acc.len(), src.len(), "accumulate length mismatch");
    let _prof = hadfl_prof::scope_bytes("accumulate_params", 8 * acc.len() as u64);
    hadfl_par::par_chunks_mut(acc, hadfl_par::F32_CHUNK, |chunk, achunk| {
        let base = chunk * hadfl_par::F32_CHUNK;
        let schunk = &src[base..base + achunk.len()];
        for (a, &s) in achunk.iter_mut().zip(schunk) {
            *a += s;
        }
    });
}

/// Elementwise `params[i] *= k` — the final `1/n` normalization of the
/// ring reduce, parallel over fixed element chunks.
pub fn scale_params(params: &mut [f32], k: f32) {
    let _prof = hadfl_prof::scope_bytes("scale_params", 4 * params.len() as u64);
    hadfl_par::par_chunks_mut(params, hadfl_par::F32_CHUNK, |_, chunk| {
        for p in chunk {
            *p *= k;
        }
    });
}

/// Weighted elementwise average of parameter vectors — the Eq. (2)
/// `n_k / N` weighting for non-IID shards (the paper's future-work
/// "data distribution" optimization).
///
/// Weights need not be normalized; they are divided by their sum.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if inputs are empty, lengths
/// disagree, or weights are non-positive/non-finite.
///
/// # Example
///
/// ```
/// use hadfl::aggregate::weighted_average_params;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// // Device 0 holds 3x the data of device 1.
/// let merged = weighted_average_params(&[&[0.0][..], &[4.0][..]], &[3.0, 1.0])?;
/// assert_eq!(merged, vec![1.0]);
/// # Ok(())
/// # }
/// ```
pub fn weighted_average_params(params: &[&[f32]], weights: &[f64]) -> Result<Vec<f32>, HadflError> {
    let first = params
        .first()
        .ok_or_else(|| HadflError::InvalidConfig("averaging zero models".into()))?;
    let len = first.len();
    if params.iter().any(|p| p.len() != len) {
        return Err(HadflError::InvalidConfig(
            "parameter vectors differ in length".into(),
        ));
    }
    if weights.len() != params.len() {
        return Err(HadflError::InvalidConfig(format!(
            "{} weights for {} models",
            weights.len(),
            params.len()
        )));
    }
    if weights.iter().any(|&w| !(w > 0.0) || !w.is_finite()) {
        return Err(HadflError::InvalidConfig(format!(
            "invalid weights {weights:?}"
        )));
    }
    // lint:allow(float-reduce-order): f64 total of one weight per member (a handful of
    // values, always serial) — the chunked discipline applies to the param vectors below
    let total: f64 = weights.iter().sum();
    let scales: Vec<f32> = weights.iter().map(|&w| (w / total) as f32).collect();
    let mut out = vec![0.0f32; len];
    // Same chunking discipline as [`average_params`]: ascending model
    // order per element, fixed chunk boundaries.
    let work = (len as u64) * (params.len() as u64);
    hadfl_par::plan(work).chunks_mut(&mut out, hadfl_par::F32_CHUNK, |chunk, ochunk| {
        let base = chunk * hadfl_par::F32_CHUNK;
        for (p, &scale) in params.iter().zip(&scales) {
            let pchunk = &p[base..base + ochunk.len()];
            for (o, &v) in ochunk.iter_mut().zip(pchunk) {
                *o += scale * v;
            }
        }
    });
    Ok(out)
}

/// Blends a broadcast model into a local one:
/// `local ← β·incoming + (1−β)·local` — what unselected devices do with
/// the model they receive ("integrate the received model parameters with
/// local parameters", §III-D).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if the lengths differ or β is
/// outside `[0, 1]`.
pub fn blend_params(local: &mut [f32], incoming: &[f32], beta: f32) -> Result<(), HadflError> {
    if local.len() != incoming.len() {
        return Err(HadflError::InvalidConfig(format!(
            "blend length mismatch: {} vs {}",
            local.len(),
            incoming.len()
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(HadflError::InvalidConfig(format!(
            "blend beta {beta} outside [0, 1]"
        )));
    }
    let _prof = hadfl_prof::scope_bytes("blend_params", 8 * local.len() as u64);
    hadfl_par::par_chunks_mut(local, hadfl_par::F32_CHUNK, |chunk, lchunk| {
        let base = chunk * hadfl_par::F32_CHUNK;
        let ichunk = &incoming[base..base + lchunk.len()];
        for (l, &inc) in lchunk.iter_mut().zip(ichunk) {
            *l = beta * inc + (1.0 - beta) * *l;
        }
    });
    Ok(())
}

/// The communication cost of one ring scatter-gather over `n` members
/// with a model of `model_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipCost {
    /// Virtual seconds until every member holds the merged model.
    pub secs: f64,
    /// Bytes each member sends (equals bytes each member receives).
    pub bytes_per_member: u64,
}

/// Cost of a ring scatter-gather all-reduce: `2(n−1)` pipeline steps,
/// each moving a `model_bytes / n` chunk per member.
///
/// For `n = 1` the cost is zero (a degenerate "ring" after every peer
/// died has nothing to exchange).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if `n` is zero.
pub fn ring_allreduce_cost(
    n: usize,
    model_bytes: u64,
    link: &LinkModel,
) -> Result<GossipCost, HadflError> {
    if n == 0 {
        return Err(HadflError::InvalidConfig(
            "all-reduce over zero members".into(),
        ));
    }
    if n == 1 {
        return Ok(GossipCost {
            secs: 0.0,
            bytes_per_member: 0,
        });
    }
    let chunk = (model_bytes as f64 / n as f64).ceil() as u64;
    let steps = 2 * (n - 1);
    let secs = steps as f64 * link.transfer_time(chunk);
    Ok(GossipCost {
        secs,
        bytes_per_member: steps as u64 * chunk,
    })
}

/// Ring scatter-gather cost under a heterogeneous [`BandwidthMatrix`]:
/// the pipeline is paced by the *slowest* directed link in the ring
/// order, so the ring ordering matters (see
/// [`crate::topology::Ring::greedy_bandwidth`]).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for fewer than 2 members and
/// propagates matrix errors for out-of-range devices.
///
/// # Example
///
/// ```
/// use hadfl::aggregate::ring_allreduce_cost_hetero;
/// use hadfl_simnet::{BandwidthMatrix, DeviceId};
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let net = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6)?;
/// let crossing = [DeviceId(0), DeviceId(2)];        // slow pair
/// let local = [DeviceId(0), DeviceId(1)];           // fast pair
/// let slow = ring_allreduce_cost_hetero(&crossing, 1_000_000, &net)?;
/// let fast = ring_allreduce_cost_hetero(&local, 1_000_000, &net)?;
/// assert!(slow.secs > 100.0 * fast.secs);
/// # Ok(())
/// # }
/// ```
pub fn ring_allreduce_cost_hetero(
    order: &[DeviceId],
    model_bytes: u64,
    net: &BandwidthMatrix,
) -> Result<GossipCost, HadflError> {
    if order.len() < 2 {
        return Err(HadflError::InvalidConfig(format!(
            "heterogeneous all-reduce needs at least 2 members, got {}",
            order.len()
        )));
    }
    let n = order.len();
    let chunk = (model_bytes as f64 / n as f64).ceil() as u64;
    let bottleneck = net.ring_bottleneck(order)?;
    let steps = 2 * (n - 1);
    let per_step = net.latency_secs() + chunk as f64 / bottleneck;
    Ok(GossipCost {
        secs: steps as f64 * per_step,
        bytes_per_member: steps as u64 * chunk,
    })
}

/// Sequential token-pass ring aggregation cost under a heterogeneous
/// network: a running sum travels the ring once (reduce) and the merged
/// model travels it once more (distribute), each hop carrying the full
/// model — the scheme [`crate::exec`] implements. Unlike the pipelined
/// [`ring_allreduce_cost_hetero`], *every* link's speed contributes, so
/// ring ordering matters even when the bottleneck is unavoidable.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for fewer than 2 members and
/// propagates matrix errors for out-of-range devices.
pub fn ring_token_pass_cost(
    order: &[DeviceId],
    model_bytes: u64,
    net: &BandwidthMatrix,
) -> Result<GossipCost, HadflError> {
    if order.len() < 2 {
        return Err(HadflError::InvalidConfig(format!(
            "token-pass ring needs at least 2 members, got {}",
            order.len()
        )));
    }
    let mut secs = 0.0;
    for (i, &from) in order.iter().enumerate() {
        let to = order[(i + 1) % order.len()];
        secs += 2.0 * net.transfer_time(from, to, model_bytes)?;
    }
    Ok(GossipCost {
        secs,
        bytes_per_member: 2 * model_bytes,
    })
}

/// Records the gossip traffic of one partial synchronization in
/// `stats`: each ring member sends its chunks to its downstream
/// neighbour.
///
/// `ring_order` is the members in ring order; traffic is
/// device-to-device only — no server is involved, which is the
/// decentralization claim the communication-volume experiment checks.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if `ring_order` is empty.
pub fn record_gossip_traffic(
    ring_order: &[DeviceId],
    model_bytes: u64,
    link: &LinkModel,
    stats: &mut NetStats,
) -> Result<GossipCost, HadflError> {
    let cost = ring_allreduce_cost(ring_order.len(), model_bytes, link)?;
    if ring_order.len() >= 2 {
        for (i, &from) in ring_order.iter().enumerate() {
            let to = ring_order[(i + 1) % ring_order.len()];
            stats.record(
                Endpoint::Device(from),
                Endpoint::Device(to),
                cost.bytes_per_member,
            );
        }
    }
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_is_elementwise_mean() {
        let merged =
            average_params(&[&[0.0, 10.0][..], &[10.0, 20.0][..], &[20.0, 30.0][..]]).unwrap();
        assert_eq!(merged, vec![10.0, 20.0]);
    }

    #[test]
    fn average_of_one_is_identity() {
        assert_eq!(
            average_params(&[&[1.5, -2.0][..]]).unwrap(),
            vec![1.5, -2.0]
        );
    }

    #[test]
    fn average_validates() {
        assert!(average_params(&[]).is_err());
        assert!(average_params(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
    }

    #[test]
    fn weighted_average_reduces_to_uniform_for_equal_weights() {
        let refs: Vec<&[f32]> = vec![&[1.0, 5.0], &[3.0, 7.0]];
        let uniform = average_params(&refs).unwrap();
        let weighted = weighted_average_params(&refs, &[2.0, 2.0]).unwrap();
        assert_eq!(uniform, weighted);
    }

    #[test]
    fn weighted_average_follows_weights() {
        let merged = weighted_average_params(&[&[0.0][..], &[10.0][..]], &[9.0, 1.0]).unwrap();
        assert!((merged[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_average_validates() {
        assert!(weighted_average_params(&[], &[]).is_err());
        assert!(weighted_average_params(&[&[1.0][..]], &[1.0, 2.0]).is_err());
        assert!(weighted_average_params(&[&[1.0][..]], &[0.0]).is_err());
        assert!(weighted_average_params(&[&[1.0][..]], &[f64::NAN]).is_err());
        assert!(weighted_average_params(&[&[1.0][..], &[1.0, 2.0][..]], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn blend_interpolates() {
        let mut local = vec![0.0, 10.0];
        blend_params(&mut local, &[10.0, 0.0], 0.25).unwrap();
        assert_eq!(local, vec![2.5, 7.5]);
    }

    #[test]
    fn blend_beta_one_overwrites_and_zero_keeps() {
        let mut a = vec![1.0];
        blend_params(&mut a, &[9.0], 1.0).unwrap();
        assert_eq!(a, vec![9.0]);
        let mut b = vec![1.0];
        blend_params(&mut b, &[9.0], 0.0).unwrap();
        assert_eq!(b, vec![1.0]);
    }

    #[test]
    fn blend_validates() {
        let mut a = vec![1.0];
        assert!(blend_params(&mut a, &[1.0, 2.0], 0.5).is_err());
        assert!(blend_params(&mut a, &[1.0], 1.5).is_err());
        assert!(blend_params(&mut a, &[1.0], -0.1).is_err());
    }

    #[test]
    fn allreduce_cost_scales_with_members() {
        let link = LinkModel::new(0.0, 1000.0).unwrap();
        // n=2: 2 steps of 500-byte chunks = 2 * 0.5 s
        let c2 = ring_allreduce_cost(2, 1000, &link).unwrap();
        assert!((c2.secs - 1.0).abs() < 1e-9);
        assert_eq!(c2.bytes_per_member, 1000);
        // n=4: 6 steps of 250-byte chunks = 1.5 s
        let c4 = ring_allreduce_cost(4, 1000, &link).unwrap();
        assert!((c4.secs - 1.5).abs() < 1e-9);
        assert_eq!(c4.bytes_per_member, 1500);
    }

    #[test]
    fn allreduce_degenerate_cases() {
        let link = LinkModel::default();
        assert!(ring_allreduce_cost(0, 1000, &link).is_err());
        let c1 = ring_allreduce_cost(1, 1000, &link).unwrap();
        assert_eq!((c1.secs, c1.bytes_per_member), (0.0, 0));
    }

    #[test]
    fn hetero_allreduce_paced_by_bottleneck() {
        let net = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6).unwrap();
        let order: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let cost = ring_allreduce_cost_hetero(&order, 4_000_000, &net).unwrap();
        // 6 steps of 1 MB chunks over the 1 MB/s bottleneck = 6 s.
        assert!((cost.secs - 6.0).abs() < 1e-9, "{}", cost.secs);
        assert!(ring_allreduce_cost_hetero(&order[..1], 100, &net).is_err());
    }

    #[test]
    fn token_pass_cost_counts_every_link() {
        let net = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6).unwrap();
        let good = [DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]; // 2 crossings
        let bad = [DeviceId(0), DeviceId(2), DeviceId(1), DeviceId(3)]; // 4 crossings
        let g = ring_token_pass_cost(&good, 1_000_000, &net).unwrap();
        let b = ring_token_pass_cost(&bad, 1_000_000, &net).unwrap();
        assert!(b.secs > 1.9 * g.secs, "good {} bad {}", g.secs, b.secs);
        assert_eq!(g.bytes_per_member, 2_000_000);
        assert!(ring_token_pass_cost(&good[..1], 100, &net).is_err());
    }

    #[test]
    fn gossip_traffic_is_device_to_device_only() {
        let link = LinkModel::default();
        let mut stats = NetStats::new();
        let ring = [DeviceId(0), DeviceId(2), DeviceId(3)];
        record_gossip_traffic(&ring, 3000, &link, &mut stats).unwrap();
        assert_eq!(stats.server_bytes(), 0, "gossip must not touch the server");
        // every member sends and receives the same volume
        for d in ring {
            assert_eq!(
                stats.sent_by(Endpoint::Device(d)),
                stats.received_by(Endpoint::Device(d))
            );
            assert!(stats.device_bytes(d) > 0);
        }
    }
}
