//! The time seam of the deployed protocol.
//!
//! Every time read and every sleep in the protocol loops
//! ([`crate::exec`]) and the TCP transport goes through the [`Clock`]
//! trait instead of `std::time::Instant::now()` (a pattern gate in
//! `tools/lint.sh` enforces this). Production code runs on
//! [`WallClock`]; deterministic tests and the `hadfl-check` model
//! checker substitute [`ManualClock`] (or virtual zero-time), so that
//! timeout behaviour becomes a *scheduled event* rather than a race
//! against the host's wall clock.
//!
//! Timestamps are plain [`Duration`]s since the clock's epoch —
//! unlike `Instant`, a `Duration` can be fabricated, compared across
//! processes of a test harness, and hashed into a model-checker state
//! digest.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A monotone time source plus the ability to wait.
///
/// `now()` is the elapsed time since the clock's epoch; deadlines are
/// expressed as `now() + timeout` and compared against later `now()`
/// readings.
pub trait Clock: Send + Sync {
    /// Monotone time since this clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks (or virtually advances) for `d`.
    fn sleep(&self, d: Duration);
}

/// The production clock: epoch is construction time, `sleep` is
/// `std::thread::sleep`.
///
/// # Example
///
/// ```
/// use hadfl::clock::{Clock, WallClock};
/// use std::time::Duration;
///
/// let clock = WallClock::new();
/// let t0 = clock.now();
/// clock.sleep(Duration::from_millis(5));
/// assert!(clock.now() >= t0 + Duration::from_millis(5));
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// A shareable wall clock (`Arc<dyn Clock>`), the default for the
    /// TCP transport.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(WallClock::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A hand-advanced virtual clock for deterministic tests.
///
/// `sleep` advances the clock instead of blocking, so code written
/// against [`Clock`] runs through its timeout logic at full speed.
/// Clones share the same underlying time.
///
/// # Example
///
/// ```
/// use hadfl::clock::{Clock, ManualClock};
/// use std::time::Duration;
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now(), Duration::ZERO);
/// clock.advance(Duration::from_secs(3));
/// clock.sleep(Duration::from_secs(2));
/// assert_eq!(clock.now(), Duration::from_secs(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<Mutex<Duration>>,
}

impl ManualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let mut now = self.now.lock();
        *now += d;
    }

    /// Sets the clock to an absolute time since its epoch.
    ///
    /// # Panics
    ///
    /// Panics if `t` would move the clock backwards — the trait
    /// promises monotonicity.
    pub fn set(&self, t: Duration) {
        let mut now = self.now.lock();
        assert!(t >= *now, "ManualClock must not move backwards");
        *now = t;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Adapts any [`Clock`] onto the profiler's `TimeSource` seam, so a
/// `hadfl_prof::Profiler` reads the same timeline as the protocol it
/// instruments — under a [`ManualClock`] the profile is fully scripted
/// and byte-identical across runs.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use hadfl::clock::{profiler_time, ManualClock};
/// use hadfl_prof::Profiler;
///
/// let clock = ManualClock::new();
/// let prof = Profiler::new(0, profiler_time(Arc::new(clock)));
/// assert!(prof.enabled());
/// ```
pub fn profiler_time(clock: Arc<dyn Clock>) -> Arc<dyn hadfl_prof::TimeSource> {
    struct ClockTime(Arc<dyn Clock>);
    impl hadfl_prof::TimeSource for ClockTime {
        fn now(&self) -> Duration {
            self.0.now()
        }
    }
    Arc::new(ClockTime(clock))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        let alias = clock.clone();
        alias.sleep(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500), "clones share time");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let clock = ManualClock::new();
        clock.advance(Duration::from_secs(2));
        clock.set(Duration::from_secs(1));
    }

    #[test]
    fn clock_objects_are_shareable() {
        let clock: Arc<dyn Clock> = WallClock::shared();
        let t = std::thread::spawn({
            let clock = Arc::clone(&clock);
            move || clock.now()
        })
        .join()
        .unwrap();
        assert!(t <= clock.now());
    }
}
