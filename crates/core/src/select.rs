//! Probability-based device selection for partial aggregation
//! (paper §III-C, Eq. 8).
//!
//! Each round the strategy generator selects `N_p` of the available
//! devices to form the synchronization ring. The paper's policy weights
//! each device by a standard-normal pdf of its (predicted) parameter
//! version centered at μ = the third quartile of all versions: devices
//! with *medial-to-new* versions are favoured, stragglers are de-weighted
//! but never excluded, and the very newest devices are not favoured over
//! medial ones (balancing version spread). Alternative policies used by
//! the ablation and worst-case experiments live here too.

use hadfl_simnet::DeviceId;
use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// How device versions are scaled before the Gaussian pdf of Eq. (8).
///
/// Raw version counts can be hundreds of steps apart, which drives the
/// unit-variance pdf to zero for every device and degenerates selection;
/// `ZScore` (the default) standardizes versions first (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VersionScale {
    /// Standardize versions to zero mean, unit variance before the pdf.
    #[default]
    ZScore,
    /// Apply the pdf to raw version values (the paper's literal Eq. 8).
    Raw,
}

/// Device-selection policy for partial synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionPolicy {
    /// The paper's Eq. (8): sample `N_p` devices without replacement with
    /// probability ∝ `N(version; μ = Q3, σ = 1)`.
    #[default]
    VersionGaussian,
    /// Deterministically take the `N_p` highest-version devices
    /// (the "discard stragglers" strawman the paper argues against).
    TopVersions,
    /// Uniform random `N_p` devices (ablation control).
    UniformRandom,
    /// Deterministically take the `N_p` *lowest*-version devices — the
    /// paper's manually forced worst case for the accuracy-loss
    /// upper-bound experiment.
    WorstCase,
}

/// The third quartile (75th percentile, linear interpolation) of a
/// non-empty sample.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] on an empty slice.
///
/// # Example
///
/// ```
/// use hadfl::select::third_quartile;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// assert_eq!(third_quartile(&[1.0, 2.0, 3.0, 4.0, 5.0])?, 4.0);
/// # Ok(())
/// # }
/// ```
pub fn third_quartile(values: &[f64]) -> Result<f64, HadflError> {
    if values.is_empty() {
        return Err(HadflError::InvalidConfig(
            "third quartile of empty sample".into(),
        ));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("versions are finite"));
    let rank = 0.75 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Eq. (8) selection weights: the standard-normal pdf of each version
/// centered at the third quartile, under the chosen scaling.
///
/// Returned weights are positive and finite; they are *not* normalized
/// (the sampler normalizes internally, mirroring the denominator of
/// Eq. 8).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] on an empty slice or non-finite
/// versions.
pub fn selection_weights(versions: &[f64], scale: VersionScale) -> Result<Vec<f64>, HadflError> {
    if versions.is_empty() {
        return Err(HadflError::InvalidConfig(
            "selection over no devices".into(),
        ));
    }
    if versions.iter().any(|v| !v.is_finite()) {
        return Err(HadflError::InvalidConfig(format!(
            "non-finite version in {versions:?}"
        )));
    }
    let scaled: Vec<f64> = match scale {
        VersionScale::Raw => versions.to_vec(),
        VersionScale::ZScore => {
            let n = versions.len() as f64;
            let mean = versions.iter().sum::<f64>() / n;
            let var = versions.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt();
            if std == 0.0 {
                vec![0.0; versions.len()]
            } else {
                versions.iter().map(|v| (v - mean) / std).collect()
            }
        }
    };
    let mu = third_quartile(&scaled)?;
    let norm = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
    Ok(scaled
        .iter()
        .map(|&z| {
            let w = norm * (-(z - mu).powi(2) / 2.0).exp();
            // Floor keeps stragglers selectable, as §III-C requires.
            w.max(1e-12)
        })
        .collect())
}

/// Selects `n_p` devices from `available` for partial synchronization.
///
/// `versions[i]` is the (predicted) version of `available[i]`. The
/// returned set is sorted by device id; if `n_p ≥ available.len()` every
/// device is selected.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if `available` and `versions`
/// disagree in length, `n_p` is zero, or versions are non-finite.
pub fn select_devices(
    policy: SelectionPolicy,
    available: &[DeviceId],
    versions: &[f64],
    n_p: usize,
    scale: VersionScale,
    rng: &mut SeedStream,
) -> Result<Vec<DeviceId>, HadflError> {
    if available.len() != versions.len() {
        return Err(HadflError::InvalidConfig(format!(
            "{} devices but {} versions",
            available.len(),
            versions.len()
        )));
    }
    if n_p == 0 {
        return Err(HadflError::InvalidConfig(
            "cannot select zero devices".into(),
        ));
    }
    if available.is_empty() {
        return Err(HadflError::InvalidConfig(
            "selection over no devices".into(),
        ));
    }
    if n_p >= available.len() {
        let mut all = available.to_vec();
        all.sort_unstable();
        return Ok(all);
    }
    let mut chosen = match policy {
        SelectionPolicy::VersionGaussian => {
            let weights = selection_weights(versions, scale)?;
            weighted_sample_without_replacement(available, &weights, n_p, rng)
        }
        SelectionPolicy::TopVersions => rank_by(available, versions, n_p, false),
        SelectionPolicy::WorstCase => rank_by(available, versions, n_p, true),
        SelectionPolicy::UniformRandom => {
            let weights = vec![1.0; available.len()];
            weighted_sample_without_replacement(available, &weights, n_p, rng)
        }
    };
    chosen.sort_unstable();
    Ok(chosen)
}

fn rank_by(available: &[DeviceId], versions: &[f64], n_p: usize, ascending: bool) -> Vec<DeviceId> {
    let mut order: Vec<usize> = (0..available.len()).collect();
    order.sort_by(|&a, &b| {
        let cmp = versions[a]
            .partial_cmp(&versions[b])
            .expect("finite versions");
        // Ties break by device id for determinism.
        let cmp = if ascending { cmp } else { cmp.reverse() };
        cmp.then_with(|| available[a].cmp(&available[b]))
    });
    order.into_iter().take(n_p).map(|i| available[i]).collect()
}

fn weighted_sample_without_replacement(
    available: &[DeviceId],
    weights: &[f64],
    n_p: usize,
    rng: &mut SeedStream,
) -> Vec<DeviceId> {
    let mut pool: Vec<(DeviceId, f64)> = available
        .iter()
        .copied()
        .zip(weights.iter().copied())
        .collect();
    let mut chosen = Vec::with_capacity(n_p);
    for _ in 0..n_p {
        let total: f64 = pool.iter().map(|(_, w)| w).sum();
        let mut target = f64::from(rng.uniform(0.0, 1.0)) * total;
        let mut pick = pool.len() - 1;
        for (i, (_, w)) in pool.iter().enumerate() {
            if target < *w {
                pick = i;
                break;
            }
            target -= w;
        }
        chosen.push(pool.swap_remove(pick).0);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices(n: usize) -> Vec<DeviceId> {
        (0..n).map(DeviceId).collect()
    }

    #[test]
    fn quartile_matches_linear_interpolation() {
        assert_eq!(third_quartile(&[1.0]).unwrap(), 1.0);
        assert_eq!(third_quartile(&[1.0, 2.0]).unwrap(), 1.75);
        assert_eq!(third_quartile(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 3.25);
        assert!(third_quartile(&[]).is_err());
    }

    #[test]
    fn weights_peak_at_medial_versions() {
        // versions: one slow straggler, two medial, one very fast
        let versions = [10.0, 100.0, 110.0, 400.0];
        let w = selection_weights(&versions, VersionScale::ZScore).unwrap();
        // The medial/newer devices (indices 1, 2) outweigh the straggler…
        assert!(w[1] > w[0] && w[2] > w[0], "{w:?}");
        // …and the straggler still has nonzero probability.
        assert!(w[0] > 0.0);
    }

    #[test]
    fn raw_scale_underflows_to_floor_for_wide_spreads() {
        let versions = [0.0, 1000.0];
        let w = selection_weights(&versions, VersionScale::Raw).unwrap();
        // Q3 = 750; both pdf values vanish ⇒ clamped at the floor, showing
        // why ZScore is the default.
        assert!(w.iter().all(|&x| x == 1e-12), "{w:?}");
    }

    #[test]
    fn equal_versions_select_uniformly() {
        let versions = [5.0; 4];
        let mut rng = SeedStream::new(1);
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            let sel = select_devices(
                SelectionPolicy::VersionGaussian,
                &devices(4),
                &versions,
                2,
                VersionScale::ZScore,
                &mut rng,
            )
            .unwrap();
            for d in sel {
                counts[d.index()] += 1;
            }
        }
        // each device expected in ~1000 of 2000 two-of-four draws
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "device {i} selected {c} times");
        }
    }

    #[test]
    fn straggler_is_deprioritized_but_not_excluded() {
        // Powers [3,3,1,1]-style: versions proportional to power.
        let versions = [300.0, 300.0, 100.0, 100.0];
        let mut rng = SeedStream::new(2);
        let mut counts = [0usize; 4];
        let trials = 4000;
        for _ in 0..trials {
            let sel = select_devices(
                SelectionPolicy::VersionGaussian,
                &devices(4),
                &versions,
                2,
                VersionScale::ZScore,
                &mut rng,
            )
            .unwrap();
            for d in sel {
                counts[d.index()] += 1;
            }
        }
        // Fast devices selected more often than stragglers…
        assert!(counts[0] > counts[2], "{counts:?}");
        // …but stragglers still participate.
        assert!(counts[2] > 0 && counts[3] > 0, "{counts:?}");
    }

    #[test]
    fn top_versions_takes_the_newest() {
        let versions = [5.0, 9.0, 1.0, 7.0];
        let mut rng = SeedStream::new(0);
        let sel = select_devices(
            SelectionPolicy::TopVersions,
            &devices(4),
            &versions,
            2,
            VersionScale::ZScore,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel, vec![DeviceId(1), DeviceId(3)]);
    }

    #[test]
    fn worst_case_takes_the_stalest() {
        let versions = [5.0, 9.0, 1.0, 7.0];
        let mut rng = SeedStream::new(0);
        let sel = select_devices(
            SelectionPolicy::WorstCase,
            &devices(4),
            &versions,
            2,
            VersionScale::ZScore,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel, vec![DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn selecting_everyone_returns_everyone() {
        let mut rng = SeedStream::new(0);
        let sel = select_devices(
            SelectionPolicy::VersionGaussian,
            &devices(3),
            &[1.0, 2.0, 3.0],
            5,
            VersionScale::ZScore,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel, devices(3));
    }

    #[test]
    fn selection_validates_inputs() {
        let mut rng = SeedStream::new(0);
        assert!(select_devices(
            SelectionPolicy::VersionGaussian,
            &devices(2),
            &[1.0],
            1,
            VersionScale::ZScore,
            &mut rng
        )
        .is_err());
        assert!(select_devices(
            SelectionPolicy::VersionGaussian,
            &devices(2),
            &[1.0, 2.0],
            0,
            VersionScale::ZScore,
            &mut rng
        )
        .is_err());
        assert!(select_devices(
            SelectionPolicy::VersionGaussian,
            &[],
            &[],
            1,
            VersionScale::ZScore,
            &mut rng
        )
        .is_err());
        assert!(selection_weights(&[f64::NAN], VersionScale::ZScore).is_err());
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let mut rng = SeedStream::new(3);
        for _ in 0..100 {
            let sel = select_devices(
                SelectionPolicy::VersionGaussian,
                &devices(5),
                &[10.0, 20.0, 30.0, 40.0, 50.0],
                3,
                VersionScale::ZScore,
                &mut rng,
            )
            .unwrap();
            let mut dedup = sel.clone();
            dedup.dedup();
            assert_eq!(sel.len(), 3);
            assert_eq!(dedup.len(), 3, "duplicate device selected");
            assert!(sel.windows(2).all(|w| w[0] < w[1]), "not sorted: {sel:?}");
        }
    }
}
