//! Analytic schedule timelines for the paper's Fig. 1: how distributed
//! training, FedAvg, and HADFL occupy heterogeneous devices over one
//! hyperperiod.
//!
//! These are pure time-accounting models (no actual training) used by the
//! `fig1_schedule` harness to regenerate the comparison picture: under a
//! 4:2:1 power ratio, synchronous schemes leave the fast devices idle
//! while HADFL keeps everyone busy with heterogeneity-aware local steps.

use serde::{Deserialize, Serialize};

use crate::error::HadflError;
use crate::strategy::hyperperiod;

/// What a device is doing during one timeline segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Computing local steps.
    Compute,
    /// Blocked waiting for stragglers (the waste HADFL removes).
    Idle,
    /// Communicating (synchronization).
    Sync,
}

/// One segment of a device's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start, seconds.
    pub start: f64,
    /// Segment end, seconds.
    pub end: f64,
    /// What the device is doing.
    pub activity: Activity,
}

impl Segment {
    fn new(start: f64, end: f64, activity: Activity) -> Self {
        Segment {
            start,
            end,
            activity,
        }
    }

    /// Segment duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A per-device schedule timeline for one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Scheme name.
    pub scheme: String,
    /// `timeline[i]` is device `i`'s segments, in time order.
    pub devices: Vec<Vec<Segment>>,
}

impl Timeline {
    /// Fraction of the makespan each device spends computing.
    pub fn utilization(&self) -> Vec<f64> {
        let makespan = self.makespan();
        self.devices
            .iter()
            .map(|segs| {
                if makespan == 0.0 {
                    return 0.0;
                }
                segs.iter()
                    .filter(|s| s.activity == Activity::Compute)
                    .map(Segment::duration)
                    .sum::<f64>()
                    / makespan
            })
            .collect()
    }

    /// The end of the latest segment.
    pub fn makespan(&self) -> f64 {
        self.devices
            .iter()
            .flat_map(|segs| segs.last())
            .map(|s| s.end)
            .fold(0.0, f64::max)
    }

    /// Total local steps computed, per device, given each device's step
    /// time.
    pub fn steps_per_device(&self, step_times: &[f64]) -> Vec<usize> {
        self.devices
            .iter()
            .zip(step_times)
            .map(|(segs, &st)| {
                let compute: f64 = segs
                    .iter()
                    .filter(|s| s.activity == Activity::Compute)
                    .map(Segment::duration)
                    .sum();
                (compute / st).round() as usize
            })
            .collect()
    }
}

fn validate(powers: &[f64], base_step_secs: f64) -> Result<Vec<f64>, HadflError> {
    if powers.len() < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    if !(base_step_secs > 0.0) || !base_step_secs.is_finite() {
        return Err(HadflError::InvalidConfig(format!(
            "bad base step {base_step_secs}"
        )));
    }
    powers
        .iter()
        .map(|&p| {
            if p > 0.0 && p.is_finite() {
                Ok(base_step_secs / p)
            } else {
                Err(HadflError::InvalidConfig(format!("bad power {p}")))
            }
        })
        .collect()
}

/// Synchronous distributed training (ring all-reduce every iteration):
/// every device computes one step, waits for the slowest, synchronizes,
/// repeats for `iterations`.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for degenerate powers/steps.
pub fn distributed_timeline(
    powers: &[f64],
    base_step_secs: f64,
    sync_secs: f64,
    iterations: usize,
) -> Result<Timeline, HadflError> {
    let step_times = validate(powers, base_step_secs)?;
    let slowest = step_times.iter().copied().fold(0.0, f64::max);
    let mut devices = vec![Vec::new(); powers.len()];
    let mut t = 0.0;
    for _ in 0..iterations {
        for (i, segs) in devices.iter_mut().enumerate() {
            segs.push(Segment::new(t, t + step_times[i], Activity::Compute));
            if step_times[i] < slowest {
                segs.push(Segment::new(t + step_times[i], t + slowest, Activity::Idle));
            }
            segs.push(Segment::new(
                t + slowest,
                t + slowest + sync_secs,
                Activity::Sync,
            ));
        }
        t += slowest + sync_secs;
    }
    Ok(Timeline {
        scheme: "distributed_training".into(),
        devices,
    })
}

/// Synchronous FedAvg: every device computes `local_steps` steps, waits
/// for the slowest, aggregates, repeats for `rounds`.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for degenerate inputs.
pub fn fedavg_timeline(
    powers: &[f64],
    base_step_secs: f64,
    sync_secs: f64,
    local_steps: usize,
    rounds: usize,
) -> Result<Timeline, HadflError> {
    let step_times = validate(powers, base_step_secs)?;
    if local_steps == 0 {
        return Err(HadflError::InvalidConfig(
            "local_steps must be positive".into(),
        ));
    }
    let slowest = step_times.iter().copied().fold(0.0, f64::max) * local_steps as f64;
    let mut devices = vec![Vec::new(); powers.len()];
    let mut t = 0.0;
    for _ in 0..rounds {
        for (i, segs) in devices.iter_mut().enumerate() {
            let compute = step_times[i] * local_steps as f64;
            segs.push(Segment::new(t, t + compute, Activity::Compute));
            if compute < slowest {
                segs.push(Segment::new(t + compute, t + slowest, Activity::Idle));
            }
            segs.push(Segment::new(
                t + slowest,
                t + slowest + sync_secs,
                Activity::Sync,
            ));
        }
        t += slowest + sync_secs;
    }
    Ok(Timeline {
        scheme: "decentralized_fedavg".into(),
        devices,
    })
}

/// HADFL: every device computes continuously for the whole sync window
/// (one hyperperiod × `t_sync`), then synchronizes — no idle segments.
///
/// `steps_per_epoch[i]` is device `i`'s batches per epoch (the
/// hyperperiod is the LCM of per-epoch times).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] for degenerate inputs.
pub fn hadfl_timeline(
    powers: &[f64],
    base_step_secs: f64,
    sync_secs: f64,
    steps_per_epoch: &[usize],
    t_sync: u32,
    rounds: usize,
) -> Result<Timeline, HadflError> {
    let step_times = validate(powers, base_step_secs)?;
    if steps_per_epoch.len() != powers.len() {
        return Err(HadflError::InvalidConfig(
            "steps_per_epoch length mismatch".into(),
        ));
    }
    let epoch_times: Vec<f64> = step_times
        .iter()
        .zip(steps_per_epoch)
        .map(|(&st, &n)| st * n as f64)
        .collect();
    let window = hyperperiod(&epoch_times)? * f64::from(t_sync.max(1));
    let mut devices = vec![Vec::new(); powers.len()];
    let mut t = 0.0;
    for _ in 0..rounds {
        for segs in &mut devices {
            segs.push(Segment::new(t, t + window, Activity::Compute));
            segs.push(Segment::new(
                t + window,
                t + window + sync_secs,
                Activity::Sync,
            ));
        }
        t += window + sync_secs;
    }
    Ok(Timeline {
        scheme: "hadfl".into(),
        devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const POWERS: [f64; 3] = [4.0, 2.0, 1.0];

    #[test]
    fn distributed_fast_devices_idle_most() {
        let tl = distributed_timeline(&POWERS, 0.04, 0.001, 5).unwrap();
        let util = tl.utilization();
        // device 2 (power 1) nearly fully busy; device 0 (power 4) ~1/4
        assert!(util[2] > util[0] * 3.0, "{util:?}");
    }

    #[test]
    fn hadfl_has_no_idle_segments() {
        let tl = hadfl_timeline(&POWERS, 0.04, 0.001, &[10, 10, 10], 1, 3).unwrap();
        for segs in &tl.devices {
            assert!(segs.iter().all(|s| s.activity != Activity::Idle));
        }
        let util = tl.utilization();
        assert!(util.iter().all(|&u| u > 0.9), "{util:?}");
    }

    #[test]
    fn hadfl_steps_scale_with_power() {
        let tl = hadfl_timeline(&POWERS, 0.04, 0.0, &[10, 10, 10], 1, 1).unwrap();
        let step_times: Vec<f64> = POWERS.iter().map(|p| 0.04 / p).collect();
        let steps = tl.steps_per_device(&step_times);
        // 4:2:1 power ratio ⇒ 4:2:1 steps in the same window (Fig. 1)
        assert_eq!(steps[0], 4 * steps[2]);
        assert_eq!(steps[1], 2 * steps[2]);
    }

    #[test]
    fn fedavg_idles_less_than_distributed_per_sync() {
        // Same wall budget: FedAvg syncs once per E steps, distributed every
        // step, so distributed pays sync more often.
        let dist = distributed_timeline(&POWERS, 0.04, 0.002, 10).unwrap();
        let fed = fedavg_timeline(&POWERS, 0.04, 0.002, 10, 1).unwrap();
        let sync_time = |tl: &Timeline| -> f64 {
            tl.devices[0]
                .iter()
                .filter(|s| s.activity == Activity::Sync)
                .map(Segment::duration)
                .sum()
        };
        assert!(sync_time(&dist) > sync_time(&fed) * 5.0);
    }

    #[test]
    fn timelines_validate_inputs() {
        assert!(distributed_timeline(&[1.0], 0.01, 0.0, 1).is_err());
        assert!(distributed_timeline(&POWERS, 0.0, 0.0, 1).is_err());
        assert!(fedavg_timeline(&POWERS, 0.01, 0.0, 0, 1).is_err());
        assert!(hadfl_timeline(&POWERS, 0.01, 0.0, &[1, 1], 1, 1).is_err());
        assert!(distributed_timeline(&[1.0, -2.0], 0.01, 0.0, 1).is_err());
    }

    #[test]
    fn makespan_matches_last_segment() {
        let tl = distributed_timeline(&POWERS, 0.04, 0.001, 2).unwrap();
        assert!((tl.makespan() - 2.0 * (0.04 + 0.001)).abs() < 1e-12);
    }
}
