//! Heterogeneity-aware training-strategy generation (paper §III-C).
//!
//! From the warm-up measurements the strategy generator derives the
//! *hyperperiod* `H_E` — the least common multiple of the devices'
//! per-epoch times — and schedules partial aggregation every `T_sync`
//! hyperperiods. Within one sync window each device runs as many local
//! steps as its speed allows (`E_i`), so no device ever waits.

use hadfl_simnet::{ComputeModel, DeviceId, VirtualTime};
use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// Upper bound on the hyperperiod LCM, in millisecond ticks (≈ 17 min of
/// virtual time). Pathologically co-prime epoch times would otherwise
/// produce astronomically long windows; past the cap we fall back to the
/// slowest device's epoch time, which preserves the "every device
/// completes ≥ T_sync epochs" intent.
const MAX_HYPERPERIOD_TICKS: u64 = 1_000_000;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The hyperperiod `H_E`: least common multiple of the per-epoch times,
/// quantized to millisecond ticks (the paper assumes integer time ratios;
/// see DESIGN.md §6).
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if `epoch_times_secs` is empty or
/// contains a non-positive or sub-tick time.
///
/// # Example
///
/// ```
/// use hadfl::strategy::hyperperiod;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// // Epoch times 0.2 s and 0.3 s → hyperperiod 0.6 s.
/// let h = hyperperiod(&[0.2, 0.3])?;
/// assert!((h - 0.6).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn hyperperiod(epoch_times_secs: &[f64]) -> Result<f64, HadflError> {
    if epoch_times_secs.is_empty() {
        return Err(HadflError::InvalidConfig(
            "hyperperiod of no devices".into(),
        ));
    }
    let mut ticks = Vec::with_capacity(epoch_times_secs.len());
    for &t in epoch_times_secs {
        if !(t > 0.0) || !t.is_finite() {
            return Err(HadflError::InvalidConfig(format!("invalid epoch time {t}")));
        }
        let tk = VirtualTime::from_secs(t).to_millis_ticks();
        if tk == 0 {
            return Err(HadflError::InvalidConfig(format!(
                "epoch time {t}s is below the 1 ms hyperperiod tick"
            )));
        }
        ticks.push(tk);
    }
    let mut lcm: u64 = 1;
    for &tk in &ticks {
        let g = gcd(lcm, tk);
        match (lcm / g).checked_mul(tk) {
            Some(next) if next <= MAX_HYPERPERIOD_TICKS => lcm = next,
            _ => {
                // Cap exceeded: fall back to the slowest epoch time.
                lcm = ticks.iter().copied().max().expect("non-empty");
                break;
            }
        }
    }
    Ok(lcm as f64 / 1e3)
}

/// The per-round plan the strategy generator hands to the devices: the
/// sync window and each device's heterogeneity-aware local step budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// The hyperperiod `H_E`, seconds.
    pub hyperperiod_secs: f64,
    /// The sync window `T_sync · H_E`, seconds.
    pub window_secs: f64,
    /// `E_i`: nominal local steps each device fits into one window.
    pub local_steps: Vec<usize>,
}

impl Strategy {
    /// Derives the strategy from warm-up measurements.
    ///
    /// `batches_per_epoch[i]` is the number of mini-batches device `i`'s
    /// shard holds; with the compute model it yields per-epoch times, the
    /// hyperperiod, and the nominal per-window step budgets.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] if the device count
    /// disagrees with the compute model, any shard is empty, or `t_sync`
    /// is zero; and propagates hyperperiod errors.
    pub fn derive(
        compute: &ComputeModel,
        batches_per_epoch: &[usize],
        t_sync: u32,
    ) -> Result<Self, HadflError> {
        if batches_per_epoch.len() != compute.devices() {
            return Err(HadflError::InvalidConfig(format!(
                "{} shard sizes for {} devices",
                batches_per_epoch.len(),
                compute.devices()
            )));
        }
        if t_sync == 0 {
            return Err(HadflError::InvalidConfig(
                "t_sync must be at least 1".into(),
            ));
        }
        let mut epoch_times = Vec::with_capacity(compute.devices());
        for (i, &batches) in batches_per_epoch.iter().enumerate() {
            if batches == 0 {
                return Err(HadflError::InvalidConfig(format!(
                    "device {i} has an empty shard"
                )));
            }
            let step = compute.nominal_step_time(DeviceId(i))?;
            epoch_times.push(step * batches as f64);
        }
        let h = hyperperiod(&epoch_times)?;
        let window = h * f64::from(t_sync);
        let local_steps = (0..compute.devices())
            .map(|i| {
                let step = compute
                    .nominal_step_time(DeviceId(i))
                    .expect("checked above");
                (window / step).floor().max(1.0) as usize
            })
            .collect();
        Ok(Strategy {
            hyperperiod_secs: h,
            window_secs: window,
            local_steps,
        })
    }

    /// Number of devices planned for.
    pub fn devices(&self) -> usize {
        self.local_steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn hyperperiod_of_identical_times_is_that_time() {
        let h = hyperperiod(&[0.5, 0.5, 0.5]).unwrap();
        assert!((h - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hyperperiod_of_ratio_four_two_one() {
        // Fig. 1's 4:2:1 power ratio → epoch times 1:2:4 → LCM = slowest.
        let h = hyperperiod(&[0.1, 0.2, 0.4]).unwrap();
        assert!((h - 0.4).abs() < 1e-9);
    }

    #[test]
    fn hyperperiod_of_coprime_times() {
        let h = hyperperiod(&[0.003, 0.007]).unwrap();
        assert!((h - 0.021).abs() < 1e-9);
    }

    #[test]
    fn hyperperiod_caps_pathological_lcm() {
        // 9999 ms and 10000 ms are nearly co-prime: LCM would be ~10^8 ms.
        let h = hyperperiod(&[9.999, 10.0]).unwrap();
        assert!(
            (h - 10.0).abs() < 1e-9,
            "fell back to slowest epoch time, got {h}"
        );
    }

    #[test]
    fn hyperperiod_validates() {
        assert!(hyperperiod(&[]).is_err());
        assert!(hyperperiod(&[0.0]).is_err());
        assert!(hyperperiod(&[-1.0]).is_err());
        assert!(hyperperiod(&[0.0001]).is_err()); // below 1 ms tick
    }

    #[test]
    fn strategy_scales_steps_with_power() {
        // Powers [3,3,1,1], equal shards of 10 batches, 10 ms base step.
        let compute = ComputeModel::new(0.010, &[3.0, 3.0, 1.0, 1.0]).unwrap();
        let s = Strategy::derive(&compute, &[10, 10, 10, 10], 1).unwrap();
        // Slowest epoch: 10 steps * 10 ms = 100 ms; fastest: 33.3 ms.
        // H_E = LCM(34, 34, 100, 100) ms… exact value depends on rounding,
        // but step budgets must scale 3:1.
        assert_eq!(s.devices(), 4);
        let ratio = s.local_steps[0] as f64 / s.local_steps[2] as f64;
        assert!((ratio - 3.0).abs() < 0.15, "steps {:?}", s.local_steps);
        assert!(s.window_secs >= 0.1);
    }

    #[test]
    fn t_sync_multiplies_window() {
        let compute = ComputeModel::new(0.010, &[1.0, 1.0]).unwrap();
        let s1 = Strategy::derive(&compute, &[5, 5], 1).unwrap();
        let s3 = Strategy::derive(&compute, &[5, 5], 3).unwrap();
        assert!((s3.window_secs - 3.0 * s1.window_secs).abs() < 1e-9);
        assert_eq!(s3.local_steps[0], 3 * s1.local_steps[0]);
    }

    #[test]
    fn strategy_validates_inputs() {
        let compute = ComputeModel::new(0.010, &[1.0, 1.0]).unwrap();
        assert!(Strategy::derive(&compute, &[5], 1).is_err());
        assert!(Strategy::derive(&compute, &[5, 0], 1).is_err());
        assert!(Strategy::derive(&compute, &[5, 5], 0).is_err());
    }

    #[test]
    fn every_device_gets_at_least_one_step() {
        // Even a 10x straggler gets a step budget of ≥ 1 (the window is
        // the LCM of epoch times, so this holds by construction; the
        // max(1) clamp guards rounding).
        let compute = ComputeModel::new(0.010, &[10.0, 1.0]).unwrap();
        let s = Strategy::derive(&compute, &[1, 1], 1).unwrap();
        assert_eq!(s.local_steps, vec![10, 1]);
    }
}
