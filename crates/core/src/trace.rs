//! Experiment traces: the per-round records every training scheme emits,
//! from which all of the paper's tables and figures are regenerated.

use hadfl_simnet::{DeviceId, NetStats};
use hadfl_telemetry::{Event, EventKind};
use serde::{Deserialize, Serialize};

/// One synchronization round's (or epoch's) worth of measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round (HADFL/FedAvg) or epoch (distributed training) index, from 1.
    pub round: usize,
    /// Virtual time at the end of the round, seconds.
    pub time_secs: f64,
    /// Epochs-equivalent of data processed so far across all devices
    /// (total samples / training-set size).
    pub epoch_equiv: f64,
    /// Mean training loss across devices during this round.
    pub train_loss: f32,
    /// Test accuracy of the round's reference model, in `[0, 1]`.
    pub test_accuracy: f32,
    /// Devices selected for aggregation this round (empty when the scheme
    /// synchronizes everyone).
    pub selected: Vec<usize>,
    /// Per-device cumulative parameter versions (local update counts).
    pub versions: Vec<f64>,
}

/// Serializable summary of a run's communication accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CommSummary {
    /// Bytes through the central server/coordinator (both directions).
    pub server_bytes: u64,
    /// Bytes sent+received per device, indexed by device.
    pub device_bytes: Vec<u64>,
    /// Total bytes over all links.
    pub total_bytes: u64,
    /// Total message count.
    pub messages: u64,
}

impl CommSummary {
    /// Summarizes raw [`NetStats`] for a `devices`-device run.
    pub fn from_stats(stats: &NetStats, devices: usize) -> Self {
        CommSummary {
            server_bytes: stats.server_bytes(),
            device_bytes: (0..devices)
                .map(|i| stats.device_bytes(DeviceId(i)))
                .collect(),
            total_bytes: stats.total_bytes(),
            messages: stats.messages(),
        }
    }

    /// Bytes sent or received by the busiest device.
    pub fn max_device_bytes(&self) -> u64 {
        self.device_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Summarizes a telemetry event stream for a `devices`-device run:
    /// every [`EventKind::FrameSent`] counts once, endpoints `0..devices`
    /// are devices and `devices` itself is the coordinator/server — the
    /// same convention [`crate::transport::coordinator_id`] uses. With
    /// the simulator's instrumented driver this reproduces
    /// [`CommSummary::from_stats`] over the training-phase ledger
    /// exactly (one schema for simulated and deployed runs).
    pub fn from_events(events: &[Event], devices: usize) -> Self {
        let mut summary = CommSummary {
            device_bytes: vec![0; devices],
            ..CommSummary::default()
        };
        let server = devices as u32;
        for event in events {
            let EventKind::FrameSent {
                src, dst, bytes, ..
            } = &event.kind
            else {
                continue;
            };
            summary.total_bytes += bytes;
            summary.messages += 1;
            for &end in &[*src, *dst] {
                if end == server {
                    summary.server_bytes += bytes;
                } else if let Some(slot) = summary.device_bytes.get_mut(end as usize) {
                    *slot += bytes;
                }
            }
        }
        summary
    }
}

/// A complete training run: scheme name, per-round records, and
/// communication accounting — the unit the bench harness serializes.
///
/// # Example
///
/// ```
/// use hadfl::trace::{RoundRecord, Trace};
///
/// let mut trace = Trace::new("hadfl", 4, 1000);
/// trace.push(RoundRecord {
///     round: 1,
///     time_secs: 2.0,
///     epoch_equiv: 1.0,
///     train_loss: 2.3,
///     test_accuracy: 0.4,
///     selected: vec![0, 2],
///     versions: vec![10.0, 5.0, 5.0, 2.0],
/// });
/// assert_eq!(trace.max_accuracy(), 0.4);
/// assert_eq!(trace.time_to_accuracy(0.4), Some(2.0));
/// assert_eq!(trace.time_to_accuracy(0.9), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Scheme name (`"hadfl"`, `"decentralized_fedavg"`,
    /// `"distributed_training"`, …).
    pub scheme: String,
    /// Number of devices in the run.
    pub devices: usize,
    /// Model size in bytes (`M` in the paper's volume formulas).
    pub model_bytes: u64,
    /// Per-round records, in round order.
    pub records: Vec<RoundRecord>,
    /// Communication accounting for the whole run.
    pub comm: CommSummary,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(scheme: &str, devices: usize, model_bytes: u64) -> Self {
        Trace {
            scheme: scheme.to_string(),
            devices,
            model_bytes,
            records: Vec::new(),
            comm: CommSummary::default(),
        }
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// Stores the run's final communication summary.
    pub fn set_comm(&mut self, stats: &NetStats) {
        self.comm = CommSummary::from_stats(stats, self.devices);
    }

    /// The maximum test accuracy reached (0 for an empty trace).
    pub fn max_accuracy(&self) -> f32 {
        self.records
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f32::max)
    }

    /// The first virtual time at which `target` accuracy was reached.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.time_secs)
    }

    /// Table I's metric: the maximum accuracy and the first time it was
    /// reached. `None` for an empty trace.
    pub fn time_to_max_accuracy(&self) -> Option<(f32, f64)> {
        let max = self.max_accuracy();
        if self.records.is_empty() {
            return None;
        }
        self.time_to_accuracy(max).map(|t| (max, t))
    }

    /// The final record, if any.
    pub fn last(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// `(epoch_equiv, train_loss)` series — Fig. 3 (a)(b).
    pub fn loss_vs_epoch(&self) -> Vec<(f64, f32)> {
        self.records
            .iter()
            .map(|r| (r.epoch_equiv, r.train_loss))
            .collect()
    }

    /// `(epoch_equiv, test_accuracy)` series — Fig. 3 (d)(e).
    pub fn accuracy_vs_epoch(&self) -> Vec<(f64, f32)> {
        self.records
            .iter()
            .map(|r| (r.epoch_equiv, r.test_accuracy))
            .collect()
    }

    /// `(time, test_accuracy)` series — Fig. 3 (c)(f).
    pub fn accuracy_vs_time(&self) -> Vec<(f64, f32)> {
        self.records
            .iter()
            .map(|r| (r.time_secs, r.test_accuracy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_simnet::Endpoint;

    fn record(round: usize, time: f64, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            time_secs: time,
            epoch_equiv: round as f64,
            train_loss: 1.0 / round as f32,
            test_accuracy: acc,
            selected: vec![],
            versions: vec![],
        }
    }

    #[test]
    fn empty_trace_has_no_milestones() {
        let t = Trace::new("x", 4, 100);
        assert_eq!(t.max_accuracy(), 0.0);
        assert_eq!(t.time_to_accuracy(0.1), None);
        assert_eq!(t.time_to_max_accuracy(), None);
        assert!(t.last().is_none());
    }

    #[test]
    fn time_to_max_accuracy_finds_first_hit() {
        let mut t = Trace::new("x", 4, 100);
        t.push(record(1, 1.0, 0.5));
        t.push(record(2, 2.0, 0.9));
        t.push(record(3, 3.0, 0.7));
        t.push(record(4, 4.0, 0.9));
        assert_eq!(t.time_to_max_accuracy(), Some((0.9, 2.0)));
    }

    #[test]
    fn series_extract_expected_axes() {
        let mut t = Trace::new("x", 2, 100);
        t.push(record(1, 1.5, 0.3));
        t.push(record(2, 3.0, 0.6));
        assert_eq!(t.accuracy_vs_time(), vec![(1.5, 0.3), (3.0, 0.6)]);
        assert_eq!(t.accuracy_vs_epoch(), vec![(1.0, 0.3), (2.0, 0.6)]);
        assert_eq!(t.loss_vs_epoch().len(), 2);
    }

    #[test]
    fn comm_summary_reads_stats() {
        let mut stats = NetStats::new();
        stats.record(Endpoint::Device(DeviceId(0)), Endpoint::Server, 10);
        stats.record(
            Endpoint::Device(DeviceId(1)),
            Endpoint::Device(DeviceId(0)),
            6,
        );
        let s = CommSummary::from_stats(&stats, 2);
        assert_eq!(s.server_bytes, 10);
        assert_eq!(s.device_bytes, vec![16, 6]);
        assert_eq!(s.max_device_bytes(), 16);
        assert_eq!(s.messages, 2);
    }

    #[test]
    fn trace_serializes_roundtrip() {
        let mut t = Trace::new("hadfl", 1, 10);
        t.push(record(1, 1.0, 0.2));
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
