//! The cloud coordinator and its four components (paper §III-A, Fig. 2a):
//! *liveness monitor*, *runtime supervisor*, *strategy generator*, and
//! *model manager*.
//!
//! The coordinator is control-plane only: it receives tiny runtime
//! reports (versions, liveness) and sends tiny configuration messages.
//! Model parameters never flow through it during training — the
//! decentralization property the communication-volume experiment
//! verifies — except for the model manager's periodic *backup* fetches,
//! which the paper describes and which are accounted separately.

use hadfl_simnet::{DeviceId, FaultPlan, VirtualTime};
use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::config::HadflConfig;
use crate::error::HadflError;
use crate::predict::VersionPredictor;
use crate::select::{select_devices, selection_weights, SelectionPolicy, VersionScale};
use crate::topology::Ring;

/// The *liveness monitor*: tracks which devices are reachable.
///
/// In this reproduction, ground-truth availability comes from the
/// simulator's [`FaultPlan`]; a production implementation would probe
/// heartbeats.
#[derive(Debug, Clone, Default)]
pub struct LivenessMonitor {
    plan: FaultPlan,
}

impl LivenessMonitor {
    /// Creates a monitor over a fault schedule.
    pub fn new(plan: FaultPlan) -> Self {
        LivenessMonitor { plan }
    }

    /// Devices of `0..n` reachable at `t`.
    pub fn available(&self, n: usize, t: VirtualTime) -> Vec<DeviceId> {
        self.plan.available(n, t)
    }

    /// Is one device reachable at `t`?
    pub fn is_up(&self, device: DeviceId, t: VirtualTime) -> bool {
        self.plan.is_up(device, t)
    }
}

/// The *runtime supervisor*: collects per-round parameter versions and
/// forecasts the next round with the Eq. (7) predictor.
#[derive(Debug, Clone)]
pub struct RuntimeSupervisor {
    predictors: Vec<VersionPredictor>,
}

impl RuntimeSupervisor {
    /// Creates one predictor per device with the Eq. (6) warm-up priors.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for an out-of-range α or
    /// non-finite prior.
    pub fn new(alpha: f64, priors: &[f64]) -> Result<Self, HadflError> {
        let predictors = priors
            .iter()
            .map(|&p| VersionPredictor::new(alpha, p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RuntimeSupervisor { predictors })
    }

    /// Number of tracked devices.
    pub fn devices(&self) -> usize {
        self.predictors.len()
    }

    /// Records the actual versions observed in the round just completed.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] if the count differs from
    /// the device count.
    pub fn observe_round(&mut self, versions: &[f64]) -> Result<(), HadflError> {
        if versions.len() != self.predictors.len() {
            return Err(HadflError::InvalidConfig(format!(
                "{} versions for {} devices",
                versions.len(),
                self.predictors.len()
            )));
        }
        for (p, &v) in self.predictors.iter_mut().zip(versions) {
            p.observe(v);
        }
        Ok(())
    }

    /// Forecast versions one round ahead for every device.
    pub fn predicted_versions(&self) -> Vec<f64> {
        self.predictors.iter().map(|p| p.forecast(1)).collect()
    }

    /// The per-device predictors (diagnostics / tests).
    pub fn predictors(&self) -> &[VersionPredictor] {
        &self.predictors
    }
}

/// One round's synchronization plan from the *strategy generator*: who
/// aggregates, in what ring order, and who receives the broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundPlan {
    /// Devices selected for partial synchronization, sorted by id.
    pub selected: Vec<DeviceId>,
    /// The random directed ring over `selected`.
    pub ring: Ring,
    /// Available devices *not* selected; they receive the merged model
    /// non-blockingly.
    pub unselected: Vec<DeviceId>,
    /// The selected device that broadcasts to the unselected set.
    pub broadcaster: DeviceId,
}

/// The *strategy generator*: turns predicted versions into a
/// [`RoundPlan`] using the Eq. (8) probability-based selection and a
/// random ring.
#[derive(Debug)]
pub struct StrategyGenerator {
    policy: SelectionPolicy,
    scale: VersionScale,
    n_p: usize,
    rng: SeedStream,
    last_probabilities: Option<Vec<f64>>,
}

impl StrategyGenerator {
    /// Creates a generator from the framework configuration.
    pub fn new(config: &HadflConfig) -> Self {
        StrategyGenerator {
            policy: config.selection,
            scale: config.version_scale,
            n_p: config.num_selected,
            rng: SeedStream::new(config.seed ^ 0x57A7_E6E0),
            last_probabilities: None,
        }
    }

    /// The normalized Eq. (8) first-draw probabilities of the most
    /// recent [`plan_round`](Self::plan_round) call, parallel to its
    /// `available` argument. These are the pdf weights regardless of
    /// the configured policy (the worst-case policy draws
    /// deterministically but the weights still describe Eq. 8's
    /// expectation), so telemetry can log selection skew against them.
    pub fn last_probabilities(&self) -> Option<&[f64]> {
        self.last_probabilities.as_deref()
    }

    /// Plans one synchronization round over the available devices.
    ///
    /// `versions[i]` is the predicted version of `available[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] if fewer than two devices
    /// are available (no ring is possible) or inputs disagree in length.
    pub fn plan_round(
        &mut self,
        available: &[DeviceId],
        versions: &[f64],
    ) -> Result<RoundPlan, HadflError> {
        if available.len() < 2 {
            return Err(HadflError::InvalidConfig(format!(
                "need at least 2 available devices to synchronize, have {}",
                available.len()
            )));
        }
        let weights = selection_weights(versions, self.scale)?;
        let total: f64 = weights.iter().sum();
        self.last_probabilities = Some(if total > 0.0 {
            weights.iter().map(|w| w / total).collect()
        } else {
            vec![1.0 / versions.len() as f64; versions.len()]
        });
        let selected = select_devices(
            self.policy,
            available,
            versions,
            self.n_p,
            self.scale,
            &mut self.rng,
        )?;
        let ring = Ring::random(&selected, &mut self.rng)?;
        let unselected: Vec<DeviceId> = available
            .iter()
            .copied()
            .filter(|d| !selected.contains(d))
            .collect();
        let broadcaster = selected[self.rng.index(selected.len())];
        Ok(RoundPlan {
            selected,
            ring,
            unselected,
            broadcaster,
        })
    }
}

/// One stored model backup.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBackup {
    /// Synchronization round at which the backup was taken.
    pub round: usize,
    /// Virtual time of the backup.
    pub time: VirtualTime,
    /// The backed-up parameter vector.
    pub params: Vec<f32>,
}

/// The *model manager*: periodically fetches the latest merged model into
/// the coordinator's database (paper workflow step 9).
#[derive(Debug, Clone)]
pub struct ModelManager {
    every_rounds: usize,
    backups: Vec<ModelBackup>,
}

impl ModelManager {
    /// Creates a manager that backs up every `every_rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every_rounds` is zero.
    pub fn new(every_rounds: usize) -> Self {
        assert!(every_rounds > 0, "backup period must be positive");
        ModelManager {
            every_rounds,
            backups: Vec::new(),
        }
    }

    /// Offers the round's merged model; stores it when the period elapses.
    /// Returns `true` if a backup was taken (the driver then accounts the
    /// device→server transfer).
    pub fn maybe_backup(&mut self, round: usize, time: VirtualTime, params: &[f32]) -> bool {
        if round.is_multiple_of(self.every_rounds) {
            self.backups.push(ModelBackup {
                round,
                time,
                params: to_owned(params),
            });
            true
        } else {
            false
        }
    }

    /// The most recent backup, if any.
    pub fn latest(&self) -> Option<&ModelBackup> {
        self.backups.last()
    }

    /// All backups, oldest first.
    pub fn backups(&self) -> &[ModelBackup] {
        &self.backups
    }
}

fn to_owned(params: &[f32]) -> Vec<f32> {
    params.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_simnet::Outage;

    fn t(s: f64) -> VirtualTime {
        VirtualTime::from_secs(s)
    }

    #[test]
    fn liveness_monitor_reflects_fault_plan() {
        let plan = FaultPlan::new(vec![Outage::window(DeviceId(1), t(1.0), t(2.0))]).unwrap();
        let monitor = LivenessMonitor::new(plan);
        assert_eq!(monitor.available(3, t(1.5)), vec![DeviceId(0), DeviceId(2)]);
        assert!(monitor.is_up(DeviceId(1), t(2.5)));
    }

    #[test]
    fn supervisor_tracks_and_predicts() {
        let mut sup = RuntimeSupervisor::new(0.5, &[100.0, 50.0]).unwrap();
        assert_eq!(sup.devices(), 2);
        // Before observations: warm-up priors.
        assert_eq!(sup.predicted_versions(), vec![100.0, 50.0]);
        sup.observe_round(&[110.0, 40.0]).unwrap();
        assert_eq!(sup.predicted_versions(), vec![110.0, 40.0]);
        assert!(sup.observe_round(&[1.0]).is_err());
    }

    #[test]
    fn round_plan_partitions_devices() {
        let cfg = HadflConfig::builder()
            .num_selected(2)
            .seed(5)
            .build()
            .unwrap();
        let mut gen = StrategyGenerator::new(&cfg);
        let available: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let plan = gen
            .plan_round(&available, &[10.0, 20.0, 30.0, 40.0])
            .unwrap();
        assert_eq!(plan.selected.len(), 2);
        assert_eq!(plan.unselected.len(), 2);
        assert!(plan.selected.contains(&plan.broadcaster));
        for d in &plan.unselected {
            assert!(!plan.selected.contains(d));
        }
        assert_eq!(plan.ring.len(), 2);
    }

    #[test]
    fn round_plans_vary_across_rounds() {
        let cfg = HadflConfig::builder()
            .num_selected(2)
            .seed(5)
            .build()
            .unwrap();
        let mut gen = StrategyGenerator::new(&cfg);
        let available: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let versions = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0];
        let plans: Vec<_> = (0..12)
            .map(|_| gen.plan_round(&available, &versions).unwrap())
            .collect();
        let distinct: std::collections::HashSet<Vec<DeviceId>> =
            plans.iter().map(|p| p.selected.clone()).collect();
        assert!(distinct.len() > 1, "selection never varied");
    }

    #[test]
    fn plan_round_needs_two_devices() {
        let cfg = HadflConfig::builder().build().unwrap();
        let mut gen = StrategyGenerator::new(&cfg);
        assert!(gen.plan_round(&[DeviceId(0)], &[1.0]).is_err());
    }

    #[test]
    fn model_manager_backs_up_on_period() {
        let mut mgr = ModelManager::new(3);
        assert!(mgr.maybe_backup(0, t(0.0), &[1.0]));
        assert!(!mgr.maybe_backup(1, t(1.0), &[2.0]));
        assert!(!mgr.maybe_backup(2, t(2.0), &[3.0]));
        assert!(mgr.maybe_backup(3, t(3.0), &[4.0]));
        assert_eq!(mgr.backups().len(), 2);
        assert_eq!(mgr.latest().map(|b| b.round), Some(3));
    }

    #[test]
    #[should_panic(expected = "backup period")]
    fn model_manager_rejects_zero_period() {
        let _ = ModelManager::new(0);
    }
}
