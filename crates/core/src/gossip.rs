//! Fault-tolerant execution of one partial synchronization over a ring
//! (paper §III-D and Fig. 2b).
//!
//! The selected devices exchange parameters scatter-gather style. If a
//! member disconnected since planning, its downstream neighbour times
//! out, handshakes to confirm the death, warns the upstream neighbour,
//! and the ring bypasses the dead device ([`crate::topology::Ring::bypass`]).

use std::collections::BTreeMap;
use std::time::Duration;

use hadfl_simnet::{DeviceId, FaultPlan, LinkModel, NetStats, VirtualTime};
use hadfl_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use crate::aggregate::{
    average_params, record_gossip_traffic, ring_allreduce_cost, weighted_average_params,
};
use crate::error::HadflError;
use crate::topology::Ring;

/// The result of one partial synchronization attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// The merged (averaged) parameter vector every survivor now holds.
    pub merged: Vec<f32>,
    /// Ring members that survived and contributed, sorted by id.
    pub participants: Vec<DeviceId>,
    /// Members found dead and bypassed.
    pub bypassed: Vec<DeviceId>,
    /// Virtual seconds the synchronization took, including timeout and
    /// handshake penalties for each bypass.
    pub comm_secs: f64,
    /// `true` when fewer than two members survived, so no exchange
    /// actually happened (the "merged" model is the lone survivor's).
    pub dissolved: bool,
}

/// Executes one partial synchronization over `ring` at time `at`.
///
/// `model_bytes` sets the transfer time of the synchronization while
/// `wire_bytes` sets the volume charged to `stats`; they are equal
/// unless an experiment overrides the reported wire size
/// (`SimOptions::wire_model_bytes`), which must not alter timing.
///
/// `params` maps each ring member to its current parameter vector;
/// liveness is checked against `faults` at `at`. Per dead member the
/// surviving downstream pays `handshake_timeout_secs` of waiting plus two
/// link latencies (handshake to the dead device, warning to the
/// upstream), after which the ring is bypassed.
///
/// When `weights` is supplied (shard sizes, the Eq. (2) `n_k/N`
/// weighting for non-IID data), the merge is a weighted average over the
/// survivors; otherwise it is uniform.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] if a ring member has no entry in
/// `params` or parameter lengths disagree, and
/// [`HadflError::ClusterDead`] (round 0 placeholder, re-tagged by the
/// driver) if *no* member survives.
#[allow(clippy::too_many_arguments)]
pub fn run_partial_sync(
    ring: &Ring,
    params: &BTreeMap<DeviceId, Vec<f32>>,
    weights: Option<&BTreeMap<DeviceId, f64>>,
    faults: &FaultPlan,
    at: VirtualTime,
    link: &LinkModel,
    handshake_timeout_secs: f64,
    model_bytes: u64,
    wire_bytes: u64,
    stats: &mut NetStats,
) -> Result<SyncOutcome, HadflError> {
    run_partial_sync_instrumented(
        ring,
        params,
        weights,
        faults,
        at,
        link,
        handshake_timeout_secs,
        model_bytes,
        wire_bytes,
        stats,
        &Telemetry::disabled(),
        0,
    )
}

/// [`run_partial_sync`] with a telemetry handle: emits ring
/// enter/exit, per-bypass declarations and repairs, the merge, and one
/// `FrameSent` event per ledger entry `record_gossip_traffic` charges
/// to `stats` — so the event stream and the [`NetStats`] ledger agree
/// byte for byte. `round` tags the emitted events; a disabled handle
/// makes this identical to [`run_partial_sync`].
///
/// # Errors
///
/// As [`run_partial_sync`].
#[allow(clippy::too_many_arguments)]
pub fn run_partial_sync_instrumented(
    ring: &Ring,
    params: &BTreeMap<DeviceId, Vec<f32>>,
    weights: Option<&BTreeMap<DeviceId, f64>>,
    faults: &FaultPlan,
    at: VirtualTime,
    link: &LinkModel,
    handshake_timeout_secs: f64,
    model_bytes: u64,
    wire_bytes: u64,
    stats: &mut NetStats,
    tel: &Telemetry,
    round: u32,
) -> Result<SyncOutcome, HadflError> {
    let t0 = Duration::from_secs_f64(at.as_secs());
    tel.emit(
        t0,
        EventKind::RingEnter {
            round,
            ring: ring.members().iter().map(|d| d.index() as u32).collect(),
        },
    );
    for member in ring.members() {
        if !params.contains_key(member) {
            return Err(HadflError::InvalidConfig(format!(
                "no parameters for ring member {member}"
            )));
        }
    }

    let mut live = ring.clone();
    let mut bypassed = Vec::new();
    let mut penalty_secs = 0.0;
    // Walk members in ring order so each bypass reflects the paper's
    // downstream-detects-upstream procedure.
    for &member in ring.members() {
        if faults.is_up(member, at) {
            continue;
        }
        bypassed.push(member);
        // Downstream waits, handshakes the dead device, then warns the
        // dead device's upstream: timeout + 2 one-way latencies.
        penalty_secs += handshake_timeout_secs + 2.0 * link.latency_secs();
        let t_bypass = t0 + Duration::from_secs_f64(penalty_secs);
        tel.emit(
            t_bypass,
            EventKind::BypassDeclared {
                round,
                dead: member.index() as u32,
            },
        );
        live = match live.bypass(member) {
            Some(next) => next,
            None => {
                // Fewer than 2 members remain: aggregation dissolves.
                let survivor = ring
                    .members()
                    .iter()
                    .copied()
                    .find(|&d| faults.is_up(d, at));
                let Some(survivor) = survivor else {
                    return Err(HadflError::ClusterDead { round: 0 });
                };
                tel.emit(
                    t_bypass,
                    EventKind::RingExit {
                        round,
                        dissolved: true,
                    },
                );
                return Ok(SyncOutcome {
                    merged: params[&survivor].clone(),
                    participants: vec![survivor],
                    bypassed,
                    comm_secs: penalty_secs,
                    dissolved: true,
                });
            }
        };
        tel.emit(
            t_bypass,
            EventKind::RingRepair {
                round,
                dead: member.index() as u32,
            },
        );
    }

    // Time is driven by the bytes actually moved (`model_bytes`); the
    // ledger is driven by `wire_bytes`, which experiments may override to
    // paper-scale model sizes without perturbing the learning dynamics.
    let secs = ring_allreduce_cost(live.members().len(), model_bytes, link)?.secs;
    let wire_cost = record_gossip_traffic(live.members(), wire_bytes, link, stats)?;
    let t_done = t0 + Duration::from_secs_f64(penalty_secs + secs);
    if tel.enabled() {
        // Mirror exactly what `record_gossip_traffic` charged to the
        // ledger: one frame per directed ring hop.
        for (i, &from) in live.members().iter().enumerate() {
            let to = live.members()[(i + 1) % live.members().len()];
            tel.emit(
                t_done,
                EventKind::FrameSent {
                    src: from.index() as u32,
                    dst: to.index() as u32,
                    bytes: wire_cost.bytes_per_member,
                    kind: "ring_gossip".to_string(),
                    lamport: 0, // analytical frame: nothing crossed a transport
                },
            );
        }
        tel.emit(
            t_done,
            EventKind::Merge {
                round,
                participants: live.members().len() as u32,
            },
        );
        tel.emit(
            t_done,
            EventKind::RingExit {
                round,
                dissolved: false,
            },
        );
    }
    let vectors: Vec<&[f32]> = live
        .members()
        .iter()
        .map(|d| params[d].as_slice())
        .collect();
    let merged = match weights {
        Some(w) => {
            let member_weights: Vec<f64> = live
                .members()
                .iter()
                .map(|d| w.get(d).copied().unwrap_or(1.0))
                .collect();
            weighted_average_params(&vectors, &member_weights)?
        }
        None => average_params(&vectors)?,
    };
    let mut participants = live.members().to_vec();
    participants.sort_unstable();
    Ok(SyncOutcome {
        merged,
        participants,
        bypassed,
        comm_secs: penalty_secs + secs,
        dissolved: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_simnet::Outage;

    fn t(s: f64) -> VirtualTime {
        VirtualTime::from_secs(s)
    }

    fn params_for(ids: &[usize], value: f32) -> BTreeMap<DeviceId, Vec<f32>> {
        ids.iter()
            .map(|&i| (DeviceId(i), vec![value * (i as f32 + 1.0); 4]))
            .collect()
    }

    fn ring_of(ids: &[usize]) -> Ring {
        Ring::from_order(ids.iter().copied().map(DeviceId).collect()).unwrap()
    }

    #[test]
    fn healthy_ring_averages_everyone() {
        let ring = ring_of(&[0, 1]);
        let mut params = BTreeMap::new();
        params.insert(DeviceId(0), vec![0.0; 3]);
        params.insert(DeviceId(1), vec![2.0; 3]);
        let mut stats = NetStats::new();
        let out = run_partial_sync(
            &ring,
            &params,
            None,
            &FaultPlan::none(),
            t(1.0),
            &LinkModel::default(),
            0.05,
            12,
            12,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.merged, vec![1.0; 3]);
        assert_eq!(out.participants, vec![DeviceId(0), DeviceId(1)]);
        assert!(out.bypassed.is_empty());
        assert!(!out.dissolved);
        assert!(out.comm_secs > 0.0);
        assert_eq!(stats.server_bytes(), 0);
    }

    #[test]
    fn weighted_merge_follows_shard_sizes() {
        let ring = ring_of(&[0, 1]);
        let mut params = BTreeMap::new();
        params.insert(DeviceId(0), vec![0.0; 2]);
        params.insert(DeviceId(1), vec![4.0; 2]);
        let mut weights = BTreeMap::new();
        weights.insert(DeviceId(0), 3.0);
        weights.insert(DeviceId(1), 1.0);
        let mut stats = NetStats::new();
        let out = run_partial_sync(
            &ring,
            &params,
            Some(&weights),
            &FaultPlan::none(),
            t(0.0),
            &LinkModel::default(),
            0.05,
            8,
            8,
            &mut stats,
        )
        .unwrap();
        // 0.75·0 + 0.25·4 = 1
        assert_eq!(out.merged, vec![1.0; 2]);
    }

    #[test]
    fn dead_member_is_bypassed_with_penalty() {
        // The paper's Fig. 2b walkthrough: device 2 dies, 1→2→3 becomes 1→3.
        let ring = ring_of(&[1, 2, 3]);
        let params = params_for(&[1, 2, 3], 1.0);
        let faults = FaultPlan::new(vec![Outage::crash(DeviceId(2), t(0.5))]).unwrap();
        let link = LinkModel::new(0.001, 1e9).unwrap();
        let mut stats = NetStats::new();
        let out = run_partial_sync(
            &ring,
            &params,
            None,
            &faults,
            t(1.0),
            &link,
            0.05,
            100,
            100,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.bypassed, vec![DeviceId(2)]);
        assert_eq!(out.participants, vec![DeviceId(1), DeviceId(3)]);
        // merged = avg of devices 1 and 3 params = avg(2.0, 4.0) = 3.0
        assert_eq!(out.merged, vec![3.0; 4]);
        // penalty: timeout + 2 latency = 0.052, plus the 2-ring gossip
        assert!(out.comm_secs > 0.052, "penalty missing: {}", out.comm_secs);
        // the dead device moved no bytes
        assert_eq!(stats.device_bytes(DeviceId(2)), 0);
    }

    #[test]
    fn two_ring_with_one_death_dissolves() {
        let ring = ring_of(&[0, 1]);
        let params = params_for(&[0, 1], 1.0);
        let faults = FaultPlan::new(vec![Outage::crash(DeviceId(1), t(0.0))]).unwrap();
        let mut stats = NetStats::new();
        let out = run_partial_sync(
            &ring,
            &params,
            None,
            &faults,
            t(1.0),
            &LinkModel::default(),
            0.05,
            100,
            100,
            &mut stats,
        )
        .unwrap();
        assert!(out.dissolved);
        assert_eq!(out.participants, vec![DeviceId(0)]);
        assert_eq!(out.merged, params[&DeviceId(0)]);
        assert_eq!(stats.total_bytes(), 0, "no exchange when dissolved");
    }

    #[test]
    fn all_dead_is_cluster_death() {
        let ring = ring_of(&[0, 1]);
        let params = params_for(&[0, 1], 1.0);
        let faults = FaultPlan::new(vec![
            Outage::crash(DeviceId(0), t(0.0)),
            Outage::crash(DeviceId(1), t(0.0)),
        ])
        .unwrap();
        let mut stats = NetStats::new();
        let err = run_partial_sync(
            &ring,
            &params,
            None,
            &faults,
            t(1.0),
            &LinkModel::default(),
            0.05,
            100,
            100,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, HadflError::ClusterDead { .. }));
    }

    #[test]
    fn missing_params_are_rejected() {
        let ring = ring_of(&[0, 1]);
        let params = params_for(&[0], 1.0);
        let mut stats = NetStats::new();
        assert!(run_partial_sync(
            &ring,
            &params,
            None,
            &FaultPlan::none(),
            t(0.0),
            &LinkModel::default(),
            0.05,
            100,
            100,
            &mut stats,
        )
        .is_err());
    }

    #[test]
    fn multiple_deaths_accumulate_penalties() {
        let ring = ring_of(&[0, 1, 2, 3]);
        let params = params_for(&[0, 1, 2, 3], 1.0);
        let faults = FaultPlan::new(vec![
            Outage::crash(DeviceId(1), t(0.0)),
            Outage::crash(DeviceId(3), t(0.0)),
        ])
        .unwrap();
        let link = LinkModel::new(0.001, 1e9).unwrap();
        let mut stats = NetStats::new();
        let out = run_partial_sync(
            &ring,
            &params,
            None,
            &faults,
            t(1.0),
            &link,
            0.05,
            100,
            100,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.bypassed.len(), 2);
        assert_eq!(out.participants, vec![DeviceId(0), DeviceId(2)]);
        assert!(out.comm_secs > 2.0 * 0.052);
    }
}
