//! Wire encoding of the messages HADFL peers exchange.
//!
//! The virtual-time driver accounts message *sizes* analytically; the
//! threaded executor ([`crate::exec`]) actually moves these encoded
//! frames between device threads, and a networked deployment would put
//! them on sockets unchanged. Encoding is a fixed little-endian layout:
//! one tag byte, then the variant's fields.
//!
//! Every frame that actually crosses a transport is wrapped in the
//! causal envelope: a [`CausalStamp`] header (origin node + Lamport
//! clock) sealed in front of the message encoding by [`seal`] and
//! parsed back by [`open`]. Transports are the *only* code that builds
//! or parses frames, and they must go through `seal`/`open` — a lint
//! gate (`tools/lint.sh`, gate 4) rejects raw `encode`/`decode` calls
//! in the transport and actor sources. The stamp is transport
//! overhead, like the length prefix: the payload ledger
//! (`NetStats`) keeps charging exactly [`Message::encoded_len`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::HadflError;

/// Byte length of the causal envelope header [`seal`] prepends.
pub const STAMP_LEN: usize = 12;

/// The causal stamp sealed in front of every transported frame:
/// which node sent it, and the sender's Lamport clock at send time
/// (already bumped for the send). Receivers max-merge `lamport` into
/// their own clock, making the cross-node event order reconstructible
/// without trusting wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalStamp {
    /// The sending participant (device id, or `k` for the coordinator).
    pub origin: u32,
    /// The sender's Lamport clock, ticked for this send. Strictly
    /// increasing per sender, so `(origin, lamport)` names the frame
    /// uniquely across a run.
    pub lamport: u64,
}

/// Seals `msg` into a transport frame: a [`STAMP_LEN`]-byte stamp
/// header (origin u32 LE, lamport u64 LE) followed by the message
/// encoding. The inverse is [`open`].
pub fn seal(stamp: CausalStamp, msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(STAMP_LEN + msg.encoded_len());
    buf.put_u32_le(stamp.origin);
    buf.put_u64_le(stamp.lamport);
    msg.encode_into(&mut buf);
    buf.freeze()
}

/// Opens a frame produced by [`seal`], returning the stamp and the
/// message.
///
/// # Errors
///
/// Returns [`HadflError::InvalidConfig`] when the frame is shorter
/// than the stamp header or the payload does not decode.
pub fn open(frame: &[u8]) -> Result<(CausalStamp, Message), HadflError> {
    if frame.len() < STAMP_LEN {
        return Err(HadflError::InvalidConfig(format!(
            "frame too short for causal stamp: {} bytes",
            frame.len()
        )));
    }
    let mut head = &frame[..STAMP_LEN];
    let stamp = CausalStamp {
        origin: head.get_u32_le(),
        lamport: head.get_u64_le(),
    };
    let msg = Message::decode(&frame[STAMP_LEN..])?;
    Ok((stamp, msg))
}

/// A message between HADFL participants (devices and the coordinator).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A full parameter vector (gossip exchange, broadcast, or backup).
    ParamSync {
        /// Synchronization round the parameters belong to.
        round: u32,
        /// The flat parameter vector.
        params: Vec<f32>,
    },
    /// A device's per-round runtime report to the coordinator.
    VersionReport {
        /// Reporting device.
        device: u32,
        /// Round being reported.
        round: u32,
        /// Cumulative parameter version (local update count).
        version: f64,
    },
    /// Liveness probe sent to a suspected-dead upstream (§III-D).
    Handshake {
        /// Probing device.
        from: u32,
    },
    /// Reply to a [`Message::Handshake`].
    HandshakeAck {
        /// Replying device.
        from: u32,
    },
    /// Warning to a dead device's upstream: bypass it (§III-D).
    BypassWarning {
        /// The device found dead.
        dead: u32,
    },
    /// Training configuration from the strategy generator.
    TrainingConfig {
        /// Learning rate for the coming phase.
        lr: f32,
        /// Heterogeneity-aware local step budget `E_i`.
        local_steps: u32,
        /// Sync window in milliseconds.
        window_ms: u32,
    },
    /// A running parameter sum travelling around the gossip ring (the
    /// reduce half of the ring aggregation).
    ParamAccum {
        /// Synchronization round the accumulation belongs to. Ring
        /// frames can overtake their [`Message::RoundPlan`] (TCP gives
        /// no ordering across connections), so they carry their round.
        round: u32,
        /// How many members' parameters the sum already contains.
        hops: u32,
        /// The running elementwise sum.
        params: Vec<f32>,
    },
    /// The merged model travelling back around the ring (the
    /// distribute half), forwarded while `ttl > 0`.
    MergedParams {
        /// Synchronization round the merge belongs to (same rationale
        /// as the [`Message::ParamAccum`] round tag).
        round: u32,
        /// Remaining forwards.
        ttl: u32,
        /// The merged parameter vector.
        params: Vec<f32>,
    },
    /// Coordinator → ring members: execute this round's aggregation.
    RoundPlan {
        /// Round the plan belongs to.
        round: u32,
        /// Selected devices in ring order.
        ring: Vec<u32>,
        /// Ring member that broadcasts the merged model to `unselected`.
        broadcaster: u32,
        /// Devices outside the ring that receive the broadcast.
        unselected: Vec<u32>,
    },
    /// Coordinator → device: report your version for `round`.
    ReportRequest {
        /// Round being collected.
        round: u32,
    },
    /// Coordinator → device: training is over; reply with your final
    /// parameters ([`Message::ParamSync`]) and exit.
    Shutdown,
    /// Periodic transport-level liveness beacon.
    Heartbeat {
        /// Sending participant.
        from: u32,
    },
    /// First frame on a freshly dialed connection, identifying the
    /// dialing participant to the accepting side.
    Hello {
        /// Dialing participant.
        from: u32,
    },
    /// A device's final parameters, uploaded to the coordinator in
    /// response to [`Message::Shutdown`] for consensus evaluation.
    FinalParams {
        /// Uploading device.
        device: u32,
        /// The device's final parameter vector.
        params: Vec<f32>,
    },
    /// A batch of telemetry events shipped out-of-band to a collector.
    /// The payload is opaque to the protocol (JSONL-encoded events);
    /// it rides the same sealed-frame envelope as every other message
    /// so Lamport stamps stay on one scale, but its bytes are ledgered
    /// by the shipper's own counter, never by `NetStats` — telemetry
    /// traffic must not pollute the paper's 2·K·M accounting.
    TelemetryBatch {
        /// The shipping participant.
        node: u32,
        /// Droppable-class events thinned under backpressure since the
        /// previous batch (never silent: the collector surfaces this).
        dropped: u32,
        /// JSONL-encoded telemetry event lines, UTF-8.
        payload: Vec<u8>,
    },
}

const TAG_PARAM_SYNC: u8 = 1;
const TAG_VERSION_REPORT: u8 = 2;
const TAG_HANDSHAKE: u8 = 3;
const TAG_HANDSHAKE_ACK: u8 = 4;
const TAG_BYPASS_WARNING: u8 = 5;
const TAG_TRAINING_CONFIG: u8 = 6;
const TAG_PARAM_ACCUM: u8 = 7;
const TAG_MERGED_PARAMS: u8 = 8;
const TAG_ROUND_PLAN: u8 = 9;
const TAG_REPORT_REQUEST: u8 = 10;
const TAG_SHUTDOWN: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_HELLO: u8 = 13;
const TAG_FINAL_PARAMS: u8 = 14;
const TAG_TELEMETRY_BATCH: u8 = 15;

fn put_params(buf: &mut BytesMut, params: &[f32]) {
    buf.put_u32_le(params.len() as u32);
    put_f32s(buf, params);
}

/// Appends the raw little-endian `f32` payload in one bulk copy. On
/// little-endian targets the in-memory float slice already *is* the
/// wire representation, so encode is a `reserve` plus a single memcpy;
/// elsewhere it falls back to per-float conversion. The byte layout is
/// identical either way — and identical to the per-float loop this
/// replaced, which the wire proptests pin down.
fn put_f32s(buf: &mut BytesMut, params: &[f32]) {
    buf.reserve(4 * params.len());
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `params` is an initialized `&[f32]`; every f32 bit
        // pattern is a valid group of 4 bytes, so viewing the slice as
        // `4 * len` bytes is sound. On a little-endian target those
        // bytes are exactly the wire encoding.
        let raw =
            unsafe { std::slice::from_raw_parts(params.as_ptr().cast::<u8>(), 4 * params.len()) };
        buf.extend_from_slice(raw);
    }
    #[cfg(not(target_endian = "little"))]
    for &p in params {
        buf.put_f32_le(p);
    }
}

/// Consumes `4 * len` bytes from `frame` and decodes them as
/// little-endian `f32`s in one bulk copy (the caller has already
/// bounds-checked). Inverse of [`put_f32s`].
fn get_f32s(frame: &mut &[u8], len: usize) -> Vec<f32> {
    let raw = frame.take_bytes(4 * len);
    let mut params: Vec<f32> = Vec::with_capacity(len);
    #[cfg(target_endian = "little")]
    // SAFETY: `params` owns capacity for `len` f32s; `raw` holds
    // `4 * len` initialized bytes whose little-endian layout matches
    // the native f32 representation, and any bit pattern is a valid
    // f32. The byte-wise copy has no alignment requirement on either
    // side.
    unsafe {
        std::ptr::copy_nonoverlapping(raw.as_ptr(), params.as_mut_ptr().cast::<u8>(), 4 * len);
        params.set_len(len);
    }
    #[cfg(not(target_endian = "little"))]
    for c in raw.chunks_exact(4) {
        params.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    }
    params
}

fn put_ids(buf: &mut BytesMut, ids: &[u32]) {
    buf.put_u32_le(ids.len() as u32);
    for &d in ids {
        buf.put_u32_le(d);
    }
}

impl Message {
    /// Encodes the message into a frame.
    ///
    /// # Example
    ///
    /// ```
    /// use hadfl::wire::Message;
    ///
    /// # fn main() -> Result<(), hadfl::HadflError> {
    /// let msg = Message::Handshake { from: 3 };
    /// let frame = msg.encode();
    /// assert_eq!(Message::decode(&frame)?, msg);
    /// # Ok(())
    /// # }
    /// ```
    pub fn encode(&self) -> Bytes {
        let len = self.encoded_len();
        let _prof = hadfl_prof::scope_bytes("wire_encode", len as u64);
        let mut buf = BytesMut::with_capacity(len);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the message encoding to `buf` (the body [`seal`] writes
    /// after the stamp header).
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Message::ParamSync { round, params } => {
                buf.put_u8(TAG_PARAM_SYNC);
                buf.put_u32_le(*round);
                put_params(buf, params);
            }
            Message::VersionReport {
                device,
                round,
                version,
            } => {
                buf.put_u8(TAG_VERSION_REPORT);
                buf.put_u32_le(*device);
                buf.put_u32_le(*round);
                buf.put_f64_le(*version);
            }
            Message::Handshake { from } => {
                buf.put_u8(TAG_HANDSHAKE);
                buf.put_u32_le(*from);
            }
            Message::HandshakeAck { from } => {
                buf.put_u8(TAG_HANDSHAKE_ACK);
                buf.put_u32_le(*from);
            }
            Message::BypassWarning { dead } => {
                buf.put_u8(TAG_BYPASS_WARNING);
                buf.put_u32_le(*dead);
            }
            Message::TrainingConfig {
                lr,
                local_steps,
                window_ms,
            } => {
                buf.put_u8(TAG_TRAINING_CONFIG);
                buf.put_f32_le(*lr);
                buf.put_u32_le(*local_steps);
                buf.put_u32_le(*window_ms);
            }
            Message::ParamAccum {
                round,
                hops,
                params,
            } => {
                buf.put_u8(TAG_PARAM_ACCUM);
                buf.put_u32_le(*round);
                buf.put_u32_le(*hops);
                put_params(buf, params);
            }
            Message::MergedParams { round, ttl, params } => {
                buf.put_u8(TAG_MERGED_PARAMS);
                buf.put_u32_le(*round);
                buf.put_u32_le(*ttl);
                put_params(buf, params);
            }
            Message::RoundPlan {
                round,
                ring,
                broadcaster,
                unselected,
            } => {
                buf.put_u8(TAG_ROUND_PLAN);
                buf.put_u32_le(*round);
                put_ids(buf, ring);
                buf.put_u32_le(*broadcaster);
                put_ids(buf, unselected);
            }
            Message::ReportRequest { round } => {
                buf.put_u8(TAG_REPORT_REQUEST);
                buf.put_u32_le(*round);
            }
            Message::Shutdown => {
                buf.put_u8(TAG_SHUTDOWN);
            }
            Message::Heartbeat { from } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u32_le(*from);
            }
            Message::Hello { from } => {
                buf.put_u8(TAG_HELLO);
                buf.put_u32_le(*from);
            }
            Message::FinalParams { device, params } => {
                buf.put_u8(TAG_FINAL_PARAMS);
                buf.put_u32_le(*device);
                put_params(buf, params);
            }
            Message::TelemetryBatch {
                node,
                dropped,
                payload,
            } => {
                buf.put_u8(TAG_TELEMETRY_BATCH);
                buf.put_u32_le(*node);
                buf.put_u32_le(*dropped);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
        }
    }

    /// Short stable label for the message kind, used as the telemetry
    /// `FrameSent`/`FrameReceived` tag and in metric label values.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::ParamSync { .. } => "param_sync",
            Message::VersionReport { .. } => "version_report",
            Message::Handshake { .. } => "handshake",
            Message::HandshakeAck { .. } => "handshake_ack",
            Message::BypassWarning { .. } => "bypass_warning",
            Message::TrainingConfig { .. } => "training_config",
            Message::ParamAccum { .. } => "param_accum",
            Message::MergedParams { .. } => "merged_params",
            Message::RoundPlan { .. } => "round_plan",
            Message::ReportRequest { .. } => "report_request",
            Message::Shutdown => "shutdown",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Hello { .. } => "hello",
            Message::FinalParams { .. } => "final_params",
            Message::TelemetryBatch { .. } => "telemetry_batch",
        }
    }

    /// The exact frame size [`encode`](Self::encode) produces, in bytes —
    /// what the simulator's communication accounting charges.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::ParamSync { params, .. } | Message::FinalParams { params, .. } => {
                1 + 4 + 4 + 4 * params.len()
            }
            Message::ParamAccum { params, .. } | Message::MergedParams { params, .. } => {
                1 + 4 + 4 + 4 + 4 * params.len()
            }
            Message::VersionReport { .. } => 1 + 4 + 4 + 8,
            Message::Handshake { .. } | Message::HandshakeAck { .. } => 1 + 4,
            Message::BypassWarning { .. } => 1 + 4,
            Message::TrainingConfig { .. } => 1 + 4 + 4 + 4,
            Message::RoundPlan {
                ring, unselected, ..
            } => 1 + 4 + (4 + 4 * ring.len()) + 4 + (4 + 4 * unselected.len()),
            Message::ReportRequest { .. } => 1 + 4,
            Message::Shutdown => 1,
            Message::Heartbeat { .. } | Message::Hello { .. } => 1 + 4,
            Message::TelemetryBatch { payload, .. } => 1 + 4 + 4 + 4 + payload.len(),
        }
    }

    /// Decodes a frame produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for an unknown tag or a
    /// truncated frame.
    pub fn decode(mut frame: &[u8]) -> Result<Message, HadflError> {
        // The profiler scope lives inside the param-bearing arms, not
        // here: a guard held across the whole match costs ~60ns of
        // spill on the small control messages (round-plan decode is a
        // 230ns op), while the bulk param payloads it exists to
        // attribute dwarf it.
        fn need(frame: &[u8], n: usize) -> Result<(), HadflError> {
            if frame.remaining() < n {
                return Err(HadflError::InvalidConfig(format!(
                    "truncated frame: need {n} more bytes, have {}",
                    frame.remaining()
                )));
            }
            Ok(())
        }
        need(frame, 1)?;
        let tag = frame.get_u8();
        let msg = match tag {
            TAG_PARAM_SYNC => {
                need(frame, 8)?;
                let round = frame.get_u32_le();
                let len = frame.get_u32_le() as usize;
                need(frame, 4 * len)?;
                let _prof = hadfl_prof::scope_bytes("wire_decode", (4 * len) as u64);
                let params = get_f32s(&mut frame, len);
                Message::ParamSync { round, params }
            }
            TAG_VERSION_REPORT => {
                need(frame, 16)?;
                Message::VersionReport {
                    device: frame.get_u32_le(),
                    round: frame.get_u32_le(),
                    version: frame.get_f64_le(),
                }
            }
            TAG_HANDSHAKE => {
                need(frame, 4)?;
                Message::Handshake {
                    from: frame.get_u32_le(),
                }
            }
            TAG_HANDSHAKE_ACK => {
                need(frame, 4)?;
                Message::HandshakeAck {
                    from: frame.get_u32_le(),
                }
            }
            TAG_BYPASS_WARNING => {
                need(frame, 4)?;
                Message::BypassWarning {
                    dead: frame.get_u32_le(),
                }
            }
            TAG_TRAINING_CONFIG => {
                need(frame, 12)?;
                Message::TrainingConfig {
                    lr: frame.get_f32_le(),
                    local_steps: frame.get_u32_le(),
                    window_ms: frame.get_u32_le(),
                }
            }
            TAG_PARAM_ACCUM | TAG_MERGED_PARAMS => {
                need(frame, 12)?;
                let round = frame.get_u32_le();
                let head = frame.get_u32_le();
                let len = frame.get_u32_le() as usize;
                need(frame, 4 * len)?;
                let _prof = hadfl_prof::scope_bytes("wire_decode", (4 * len) as u64);
                let params = get_f32s(&mut frame, len);
                if tag == TAG_PARAM_ACCUM {
                    Message::ParamAccum {
                        round,
                        hops: head,
                        params,
                    }
                } else {
                    Message::MergedParams {
                        round,
                        ttl: head,
                        params,
                    }
                }
            }
            TAG_ROUND_PLAN => {
                fn get_ids(frame: &mut &[u8]) -> Result<Vec<u32>, HadflError> {
                    need(frame, 4)?;
                    let len = frame.get_u32_le() as usize;
                    need(frame, 4 * len)?;
                    Ok((0..len).map(|_| frame.get_u32_le()).collect())
                }
                need(frame, 4)?;
                let round = frame.get_u32_le();
                let ring = get_ids(&mut frame)?;
                need(frame, 4)?;
                let broadcaster = frame.get_u32_le();
                let unselected = get_ids(&mut frame)?;
                Message::RoundPlan {
                    round,
                    ring,
                    broadcaster,
                    unselected,
                }
            }
            TAG_REPORT_REQUEST => {
                need(frame, 4)?;
                Message::ReportRequest {
                    round: frame.get_u32_le(),
                }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_HEARTBEAT => {
                need(frame, 4)?;
                Message::Heartbeat {
                    from: frame.get_u32_le(),
                }
            }
            TAG_HELLO => {
                need(frame, 4)?;
                Message::Hello {
                    from: frame.get_u32_le(),
                }
            }
            TAG_FINAL_PARAMS => {
                need(frame, 8)?;
                let device = frame.get_u32_le();
                let len = frame.get_u32_le() as usize;
                need(frame, 4 * len)?;
                let _prof = hadfl_prof::scope_bytes("wire_decode", (4 * len) as u64);
                let params = get_f32s(&mut frame, len);
                Message::FinalParams { device, params }
            }
            TAG_TELEMETRY_BATCH => {
                need(frame, 12)?;
                let node = frame.get_u32_le();
                let dropped = frame.get_u32_le();
                let len = frame.get_u32_le() as usize;
                need(frame, len)?;
                let payload = frame.take_bytes(len).to_vec();
                Message::TelemetryBatch {
                    node,
                    dropped,
                    payload,
                }
            }
            other => {
                return Err(HadflError::InvalidConfig(format!(
                    "unknown message tag {other}"
                )))
            }
        };
        if frame.has_remaining() {
            return Err(HadflError::InvalidConfig(format!(
                "{} trailing bytes after message",
                frame.remaining()
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.encode();
        assert_eq!(
            frame.len(),
            msg.encoded_len(),
            "length accounting for {msg:?}"
        );
        assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::ParamSync {
            round: 7,
            params: vec![1.5, -2.25, 0.0],
        });
        roundtrip(Message::ParamSync {
            round: 0,
            params: vec![],
        });
        roundtrip(Message::VersionReport {
            device: 3,
            round: 12,
            version: 456.75,
        });
        roundtrip(Message::Handshake { from: 9 });
        roundtrip(Message::HandshakeAck { from: 2 });
        roundtrip(Message::BypassWarning { dead: 1 });
        roundtrip(Message::TrainingConfig {
            lr: 0.01,
            local_steps: 18,
            window_ms: 450,
        });
        roundtrip(Message::ParamAccum {
            round: 5,
            hops: 2,
            params: vec![0.5, 0.25],
        });
        roundtrip(Message::MergedParams {
            round: 5,
            ttl: 3,
            params: vec![-1.0],
        });
        roundtrip(Message::RoundPlan {
            round: 4,
            ring: vec![2, 0, 3],
            broadcaster: 0,
            unselected: vec![1],
        });
        roundtrip(Message::RoundPlan {
            round: 1,
            ring: vec![],
            broadcaster: 7,
            unselected: vec![],
        });
        roundtrip(Message::ReportRequest { round: 9 });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Heartbeat { from: 4 });
        roundtrip(Message::Hello { from: 0 });
        roundtrip(Message::FinalParams {
            device: 2,
            params: vec![0.5, -0.5],
        });
        roundtrip(Message::TelemetryBatch {
            node: 4,
            dropped: 17,
            payload: b"{\"v\":1}\n{\"v\":1}\n".to_vec(),
        });
        roundtrip(Message::TelemetryBatch {
            node: 0,
            dropped: 0,
            payload: vec![],
        });
    }

    #[test]
    fn telemetry_batch_payload_is_opaque_bytes() {
        // Arbitrary (even non-UTF-8) payload bytes survive untouched:
        // the wire layer must not interpret the batch contents.
        let payload: Vec<u8> = (0u16..400).map(|i| (i % 251) as u8).collect();
        let msg = Message::TelemetryBatch {
            node: 9,
            dropped: 3,
            payload: payload.clone(),
        };
        let frame = msg.encode();
        assert_eq!(frame.len(), 1 + 4 + 4 + 4 + payload.len());
        let Message::TelemetryBatch {
            payload: back,
            dropped,
            node,
        } = Message::decode(&frame).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((node, dropped), (9, 3));
        assert_eq!(back, payload);
        // Truncated payloads are rejected, not silently shortened.
        assert!(Message::decode(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn seal_open_roundtrips_with_exact_overhead() {
        let msg = Message::ParamAccum {
            round: 3,
            hops: 2,
            params: vec![1.0, -0.5],
        };
        let stamp = CausalStamp {
            origin: 4,
            lamport: 77,
        };
        let frame = seal(stamp, &msg);
        assert_eq!(
            frame.len(),
            STAMP_LEN + msg.encoded_len(),
            "the stamp is exactly {STAMP_LEN} bytes of transport overhead"
        );
        let (back_stamp, back_msg) = open(&frame).unwrap();
        assert_eq!(back_stamp, stamp);
        assert_eq!(back_msg, msg);
    }

    #[test]
    fn open_rejects_short_and_corrupt_frames() {
        assert!(open(&[]).is_err());
        assert!(open(&[0u8; STAMP_LEN - 1]).is_err());
        // A stamp header followed by garbage payload.
        let mut frame = seal(
            CausalStamp {
                origin: 0,
                lamport: 1,
            },
            &Message::Shutdown,
        )
        .to_vec();
        frame.push(0xFF);
        assert!(open(&frame).is_err());
    }

    #[test]
    fn param_sync_preserves_float_bits() {
        let params = vec![f32::MIN_POSITIVE, -0.0, 1e30, std::f32::consts::PI];
        let msg = Message::ParamSync {
            round: 1,
            params: params.clone(),
        };
        let Message::ParamSync { params: back, .. } = Message::decode(&msg.encode()).unwrap()
        else {
            panic!("wrong variant");
        };
        for (a, b) in params.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[99]).is_err());
        assert!(Message::decode(&[TAG_HANDSHAKE]).is_err()); // truncated
                                                             // trailing bytes
        let mut frame = Message::Handshake { from: 1 }.encode().to_vec();
        frame.push(0);
        assert!(Message::decode(&frame).is_err());
    }

    #[test]
    fn decode_rejects_truncated_params() {
        let msg = Message::ParamSync {
            round: 1,
            params: vec![1.0, 2.0],
        };
        let frame = msg.encode();
        assert!(Message::decode(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn control_messages_are_tiny() {
        // The decentralization claim depends on control-plane traffic
        // being negligible next to a model.
        assert!(
            Message::VersionReport {
                device: 0,
                round: 0,
                version: 0.0
            }
            .encoded_len()
                <= 32
        );
        assert!(
            Message::TrainingConfig {
                lr: 0.0,
                local_steps: 0,
                window_ms: 0
            }
            .encoded_len()
                <= 32
        );
    }
}
