//! Partial-synchronization topology: a random directed ring over the
//! selected devices (paper §III-C), with the §III-D bypass operation for
//! fault tolerance.

use hadfl_simnet::{BandwidthMatrix, DeviceId};
use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::error::HadflError;

/// A directed ring over the devices selected for partial synchronization.
///
/// Device order is random (the strategy generator "randomly determines a
/// directed ring"); each member sends to its downstream neighbour during
/// the gossip scatter-gather.
///
/// # Example
///
/// ```
/// use hadfl::topology::Ring;
/// use hadfl_simnet::DeviceId;
/// use hadfl_tensor::SeedStream;
///
/// # fn main() -> Result<(), hadfl::HadflError> {
/// let members = vec![DeviceId(0), DeviceId(2), DeviceId(3)];
/// let ring = Ring::random(&members, &mut SeedStream::new(7))?;
/// assert_eq!(ring.len(), 3);
/// let down = ring.downstream_of(DeviceId(2)).expect("member");
/// assert_ne!(down, DeviceId(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    order: Vec<DeviceId>,
}

impl Ring {
    /// Builds a ring in the given (already randomized) order.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for fewer than 2 members or
    /// duplicate members.
    pub fn from_order(order: Vec<DeviceId>) -> Result<Self, HadflError> {
        if order.len() < 2 {
            return Err(HadflError::InvalidConfig(format!(
                "a ring needs at least 2 members, got {}",
                order.len()
            )));
        }
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != order.len() {
            return Err(HadflError::InvalidConfig(format!(
                "duplicate members in ring {order:?}"
            )));
        }
        Ok(Ring { order })
    }

    /// Builds a uniformly random directed ring over `members`.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for fewer than 2 members or
    /// duplicates.
    pub fn random(members: &[DeviceId], rng: &mut SeedStream) -> Result<Self, HadflError> {
        let mut order = members.to_vec();
        rng.shuffle(&mut order);
        Ring::from_order(order)
    }

    /// Builds a bandwidth-aware ring over `members` under a
    /// heterogeneous network (the paper's future-work optimization):
    /// a greedy nearest-neighbour order, always hopping to the unvisited
    /// member with the highest outgoing bandwidth. On clustered networks
    /// this keeps the ring inside fast domains and crosses slow uplinks
    /// only the unavoidable minimum number of times.
    ///
    /// The start member is randomized so repeated rounds still vary.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for fewer than 2 members or
    /// duplicates, and [`HadflError::Sim`] for members outside the
    /// matrix.
    pub fn greedy_bandwidth(
        members: &[DeviceId],
        net: &BandwidthMatrix,
        rng: &mut SeedStream,
    ) -> Result<Self, HadflError> {
        if members.len() < 2 {
            return Err(HadflError::InvalidConfig(format!(
                "a ring needs at least 2 members, got {}",
                members.len()
            )));
        }
        let mut remaining = members.to_vec();
        let start = remaining.swap_remove(rng.index(remaining.len()));
        let mut order = vec![start];
        while !remaining.is_empty() {
            let current = *order.last().expect("order starts non-empty");
            let mut best = 0;
            let mut best_bw = -1.0f64;
            for (i, &candidate) in remaining.iter().enumerate() {
                let bw = net.bandwidth(current, candidate)?;
                // Ties break toward the lower device id for determinism.
                if bw > best_bw || (bw == best_bw && candidate < remaining[best]) {
                    best = i;
                    best_bw = bw;
                }
            }
            order.push(remaining.swap_remove(best));
        }
        Ring::from_order(order)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when the ring has no members (never true for a
    /// constructed ring; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The members in ring order.
    pub fn members(&self) -> &[DeviceId] {
        &self.order
    }

    /// Is `device` part of the ring?
    pub fn contains(&self, device: DeviceId) -> bool {
        self.order.contains(&device)
    }

    /// The device `device` sends to.
    pub fn downstream_of(&self, device: DeviceId) -> Option<DeviceId> {
        let i = self.order.iter().position(|&d| d == device)?;
        Some(self.order[(i + 1) % self.order.len()])
    }

    /// The device `device` receives from.
    pub fn upstream_of(&self, device: DeviceId) -> Option<DeviceId> {
        let i = self.order.iter().position(|&d| d == device)?;
        Some(self.order[(i + self.order.len() - 1) % self.order.len()])
    }

    /// Removes a dead member, reconnecting its upstream directly to its
    /// downstream — the paper's §III-D bypass. Returns the shrunken ring,
    /// or `None` if fewer than 2 members would remain (the ring dissolves
    /// and aggregation this round degenerates to the survivor's model).
    pub fn bypass(&self, dead: DeviceId) -> Option<Ring> {
        if !self.contains(dead) {
            return Some(self.clone());
        }
        if self.order.len() <= 2 {
            return None;
        }
        let order: Vec<DeviceId> = self.order.iter().copied().filter(|&d| d != dead).collect();
        Some(Ring { order })
    }
}

impl std::fmt::Display for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "→{}", self.order[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> Vec<DeviceId> {
        xs.iter().copied().map(DeviceId).collect()
    }

    #[test]
    fn neighbours_wrap_around() {
        let ring = Ring::from_order(ids(&[3, 1, 4])).unwrap();
        assert_eq!(ring.downstream_of(DeviceId(3)), Some(DeviceId(1)));
        assert_eq!(ring.downstream_of(DeviceId(4)), Some(DeviceId(3)));
        assert_eq!(ring.upstream_of(DeviceId(3)), Some(DeviceId(4)));
        assert_eq!(ring.upstream_of(DeviceId(9)), None);
    }

    #[test]
    fn random_ring_is_a_permutation_of_members() {
        let members = ids(&[0, 1, 2, 3, 4]);
        let ring = Ring::random(&members, &mut SeedStream::new(1)).unwrap();
        let mut sorted = ring.members().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, members);
    }

    #[test]
    fn random_rings_differ_across_seeds() {
        let members = ids(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let a = Ring::random(&members, &mut SeedStream::new(1)).unwrap();
        let b = Ring::random(&members, &mut SeedStream::new(2)).unwrap();
        assert_ne!(a, b, "8! orderings; a collision is astronomically unlikely");
        let a2 = Ring::random(&members, &mut SeedStream::new(1)).unwrap();
        assert_eq!(a, a2, "same seed must reproduce the ring");
    }

    #[test]
    fn bypass_removes_and_reconnects() {
        // 1→2→3→1; device 2 dies; 1 must now send to 3 (the paper's Fig. 2b).
        let ring = Ring::from_order(ids(&[1, 2, 3])).unwrap();
        let fixed = ring.bypass(DeviceId(2)).expect("3-ring survives one death");
        assert_eq!(fixed.members(), ids(&[1, 3]).as_slice());
        assert_eq!(fixed.downstream_of(DeviceId(1)), Some(DeviceId(3)));
    }

    #[test]
    fn bypass_of_nonmember_is_identity() {
        let ring = Ring::from_order(ids(&[1, 2])).unwrap();
        assert_eq!(ring.bypass(DeviceId(9)), Some(ring.clone()));
    }

    #[test]
    fn two_ring_dissolves_on_death() {
        let ring = Ring::from_order(ids(&[1, 2])).unwrap();
        assert_eq!(ring.bypass(DeviceId(1)), None);
    }

    #[test]
    fn rejects_degenerate_rings() {
        assert!(Ring::from_order(ids(&[1])).is_err());
        assert!(Ring::from_order(ids(&[])).is_err());
        assert!(Ring::from_order(ids(&[1, 1, 2])).is_err());
    }

    #[test]
    fn greedy_ring_minimizes_slow_crossings() {
        // Two 2-device clusters: fast inside, slow across. Any ring over
        // all four must cross the boundary exactly twice; the naive
        // alternating order crosses four times.
        let net = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6).unwrap();
        let members = ids(&[0, 1, 2, 3]);
        let slow_links = |ring: &Ring| {
            ring.members()
                .iter()
                .enumerate()
                .filter(|&(i, &from)| {
                    let to = ring.members()[(i + 1) % ring.len()];
                    net.bandwidth(from, to).unwrap() < 1e9
                })
                .count()
        };
        let alternating = Ring::from_order(ids(&[0, 2, 1, 3])).unwrap();
        assert_eq!(slow_links(&alternating), 4);
        for seed in 0..8 {
            let greedy =
                Ring::greedy_bandwidth(&members, &net, &mut SeedStream::new(seed)).unwrap();
            assert_eq!(slow_links(&greedy), 2, "seed {seed}: {greedy}");
        }
    }

    #[test]
    fn greedy_ring_is_a_permutation() {
        let net = BandwidthMatrix::uniform(5, 0.0, 1e9).unwrap();
        let members = ids(&[0, 1, 2, 3, 4]);
        let ring = Ring::greedy_bandwidth(&members, &net, &mut SeedStream::new(3)).unwrap();
        let mut sorted = ring.members().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, members);
    }

    #[test]
    fn greedy_ring_validates() {
        let net = BandwidthMatrix::uniform(2, 0.0, 1e9).unwrap();
        assert!(Ring::greedy_bandwidth(&ids(&[0]), &net, &mut SeedStream::new(0)).is_err());
        // member outside the matrix
        assert!(Ring::greedy_bandwidth(&ids(&[0, 5]), &net, &mut SeedStream::new(0)).is_err());
    }

    #[test]
    fn display_shows_cycle() {
        let ring = Ring::from_order(ids(&[0, 2])).unwrap();
        assert_eq!(ring.to_string(), "dev0→dev2→dev0");
    }
}
