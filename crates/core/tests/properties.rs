//! Property-based tests of the HADFL algorithm invariants.

use std::collections::BTreeMap;

use hadfl::aggregate::{average_params, blend_params, ring_allreduce_cost};
use hadfl::predict::VersionPredictor;
use hadfl::select::{
    select_devices, selection_weights, third_quartile, SelectionPolicy, VersionScale,
};
use hadfl::strategy::hyperperiod;
use hadfl::topology::Ring;
use hadfl::wire::Message;
use hadfl_simnet::{DeviceId, FaultPlan, LinkModel, NetStats, VirtualTime};
use hadfl_tensor::SeedStream;
use proptest::prelude::*;

fn device_ids(n: usize) -> Vec<DeviceId> {
    (0..n).map(DeviceId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quartile_is_within_range(mut xs in proptest::collection::vec(0.0f64..1000.0, 1..40)) {
        let q = third_quartile(&xs).unwrap();
        xs.sort_by(f64::total_cmp);
        prop_assert!(q >= xs[0] && q <= *xs.last().unwrap());
    }

    #[test]
    fn selection_weights_are_positive_and_finite(
        xs in proptest::collection::vec(0.0f64..10_000.0, 1..32),
        raw in proptest::bool::ANY,
    ) {
        let scale = if raw { VersionScale::Raw } else { VersionScale::ZScore };
        let w = selection_weights(&xs, scale).unwrap();
        prop_assert_eq!(w.len(), xs.len());
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
    }

    #[test]
    fn selection_returns_sorted_unique_subset(
        versions in proptest::collection::vec(0.0f64..500.0, 2..16),
        n_p in 1usize..8,
        seed in 0u64..100,
    ) {
        let devices = device_ids(versions.len());
        let mut rng = SeedStream::new(seed);
        let sel = select_devices(
            SelectionPolicy::VersionGaussian,
            &devices,
            &versions,
            n_p,
            VersionScale::ZScore,
            &mut rng,
        )
        .unwrap();
        prop_assert_eq!(sel.len(), n_p.min(versions.len()));
        prop_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(sel.iter().all(|d| d.index() < versions.len()));
    }

    #[test]
    fn ring_bypass_preserves_survivor_order(
        n in 3usize..10,
        dead_idx in 0usize..10,
        seed in 0u64..100,
    ) {
        let members = device_ids(n);
        let mut rng = SeedStream::new(seed);
        let ring = Ring::random(&members, &mut rng).unwrap();
        let dead = ring.members()[dead_idx % n];
        let fixed = ring.bypass(dead).unwrap();
        prop_assert_eq!(fixed.len(), n - 1);
        // Survivors keep their relative cyclic order.
        let survivors: Vec<DeviceId> =
            ring.members().iter().copied().filter(|&d| d != dead).collect();
        prop_assert_eq!(fixed.members(), survivors.as_slice());
    }

    #[test]
    fn average_params_is_bounded_by_extremes(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 6), 1..6),
    ) {
        let refs: Vec<&[f32]> = vecs.iter().map(Vec::as_slice).collect();
        let avg = average_params(&refs).unwrap();
        for i in 0..6 {
            let lo = refs.iter().map(|v| v[i]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|v| v[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= lo - 1e-4 && avg[i] <= hi + 1e-4);
        }
    }

    #[test]
    fn blend_interpolates_monotonically(
        local in proptest::collection::vec(-5.0f32..5.0, 4),
        incoming in proptest::collection::vec(-5.0f32..5.0, 4),
        beta in 0.0f32..=1.0,
    ) {
        let mut blended = local.clone();
        blend_params(&mut blended, &incoming, beta).unwrap();
        for i in 0..4 {
            let lo = local[i].min(incoming[i]);
            let hi = local[i].max(incoming[i]);
            prop_assert!(blended[i] >= lo - 1e-5 && blended[i] <= hi + 1e-5);
        }
    }

    #[test]
    fn hyperperiod_is_multiple_of_each_epoch_time(
        ticks in proptest::collection::vec(1u64..200, 1..6),
    ) {
        let secs: Vec<f64> = ticks.iter().map(|&t| t as f64 / 1e3).collect();
        let h = hyperperiod(&secs).unwrap();
        let h_ticks = (h * 1e3).round() as u64;
        // Either an exact LCM (multiple of everything) or the capped
        // fallback (the max tick).
        let all_divide = ticks.iter().all(|&t| h_ticks.is_multiple_of(t));
        let is_max = h_ticks == *ticks.iter().max().unwrap();
        prop_assert!(all_divide || is_max, "h={h_ticks} ticks={ticks:?}");
        prop_assert!(h_ticks >= *ticks.iter().max().unwrap());
    }

    #[test]
    fn allreduce_cost_monotone_in_model_size(
        n in 2usize..12,
        bytes_a in 1u64..1_000_000,
        bytes_b in 1u64..1_000_000,
    ) {
        let link = LinkModel::pcie3_x8();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let c_lo = ring_allreduce_cost(n, lo, &link).unwrap();
        let c_hi = ring_allreduce_cost(n, hi, &link).unwrap();
        prop_assert!(c_lo.secs <= c_hi.secs + 1e-12);
        prop_assert!(c_lo.bytes_per_member <= c_hi.bytes_per_member);
    }

    #[test]
    fn predictor_is_exact_on_linear_series(
        start in 0.0f64..100.0,
        slope in 1.0f64..50.0,
        alpha in 0.2f64..0.9,
    ) {
        // Double exponential smoothing reproduces a perfect linear trend
        // asymptotically; after enough rounds the 1-ahead error is small
        // relative to the slope.
        let mut p = VersionPredictor::new(alpha, start).unwrap();
        let mut v = start;
        for _ in 0..60 {
            v += slope;
            p.observe(v);
        }
        let forecast = p.forecast(1);
        prop_assert!((forecast - (v + slope)).abs() < 0.35 * slope,
            "forecast {forecast} vs {v} + {slope}");
    }

    #[test]
    fn partial_sync_merged_is_average_of_participants(
        n in 2usize..6,
        seed in 0u64..50,
    ) {
        let members = device_ids(n);
        let mut rng = SeedStream::new(seed);
        let ring = Ring::random(&members, &mut rng).unwrap();
        let params: BTreeMap<DeviceId, Vec<f32>> = members
            .iter()
            .map(|&d| (d, vec![d.index() as f32; 3]))
            .collect();
        let mut stats = NetStats::new();
        let out = hadfl::gossip::run_partial_sync(
            &ring,
            &params,
            None,
            &FaultPlan::none(),
            VirtualTime::ZERO,
            &LinkModel::default(),
            0.05,
            100,
            100,
            &mut stats,
        )
        .unwrap();
        let expected = (0..n).map(|i| i as f32).sum::<f32>() / n as f32;
        prop_assert!(out.merged.iter().all(|&v| (v - expected).abs() < 1e-5));
        prop_assert_eq!(out.participants.len(), n);
        prop_assert!(!out.dissolved);
    }
}

/// Builds one of the fourteen wire variants from a drawn value pool, so
/// the round-trip properties below cover the whole protocol surface.
fn arb_message(variant: usize, a: u32, b: u32, v: f64, params: Vec<f32>, ids: Vec<u32>) -> Message {
    match variant % 14 {
        0 => Message::ParamSync { round: a, params },
        1 => Message::VersionReport {
            device: a,
            round: b,
            version: v,
        },
        2 => Message::Handshake { from: a },
        3 => Message::HandshakeAck { from: a },
        4 => Message::BypassWarning { dead: a },
        5 => Message::TrainingConfig {
            lr: v as f32,
            local_steps: a,
            window_ms: b,
        },
        6 => Message::ParamAccum {
            round: b,
            hops: a,
            params,
        },
        7 => Message::MergedParams {
            round: b,
            ttl: a,
            params,
        },
        8 => Message::RoundPlan {
            round: a,
            ring: ids.clone(),
            broadcaster: b,
            unselected: ids,
        },
        9 => Message::ReportRequest { round: a },
        10 => Message::Shutdown,
        11 => Message::Heartbeat { from: a },
        12 => Message::Hello { from: a },
        _ => Message::FinalParams { device: a, params },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_roundtrip_is_lossless(
        variant in 0usize..14,
        a in 0u32..100_000,
        b in 0u32..100_000,
        v in -1.0e6f64..1.0e6,
        params in proptest::collection::vec(-100.0f32..100.0, 0..48),
        ids in proptest::collection::vec(0u32..64, 0..12),
    ) {
        let msg = arb_message(variant, a, b, v, params, ids);
        let frame = msg.encode();
        prop_assert_eq!(frame.len(), msg.encoded_len());
        prop_assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn wire_rejects_every_truncation(
        variant in 0usize..14,
        a in 0u32..100_000,
        b in 0u32..100_000,
        v in -1.0e6f64..1.0e6,
        params in proptest::collection::vec(-100.0f32..100.0, 0..16),
        ids in proptest::collection::vec(0u32..64, 0..6),
        cut in 0usize..4096,
    ) {
        let frame = arb_message(variant, a, b, v, params, ids).encode();
        let cut = cut % frame.len(); // strict prefix, possibly empty
        prop_assert!(Message::decode(&frame[..cut]).is_err());
    }

    #[test]
    fn wire_rejects_trailing_garbage(
        variant in 0usize..14,
        a in 0u32..100_000,
        b in 0u32..100_000,
        v in -1.0e6f64..1.0e6,
        params in proptest::collection::vec(-100.0f32..100.0, 0..16),
        ids in proptest::collection::vec(0u32..64, 0..6),
        extra in proptest::collection::vec(0u8..=255, 1..16),
    ) {
        let mut frame = arb_message(variant, a, b, v, params, ids).encode().to_vec();
        frame.extend_from_slice(&extra);
        prop_assert!(Message::decode(&frame).is_err());
    }

    #[test]
    fn wire_rejects_unknown_tags(
        tag in 15u8..=255,
        body in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut frame = vec![tag];
        frame.extend_from_slice(&body);
        prop_assert!(Message::decode(&frame).is_err());
        prop_assert!(Message::decode(&[0u8]).is_err(), "tag zero is reserved");
        prop_assert!(Message::decode(&[]).is_err(), "the empty frame has no tag");
    }
}
