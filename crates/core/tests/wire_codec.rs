//! Pins the bulk param codec to the historical per-float wire layout,
//! and the parallel aggregation helpers to their serial references.
//!
//! The zero-copy encode/decode in `wire.rs` must be **byte-for-byte**
//! identical to the per-float `put_f32_le` loop it replaced — the
//! payload ledger, telemetry byte counts, and cross-version
//! interoperability all assume the layout never moved.

use bytes::{BufMut, BytesMut};
use hadfl::aggregate::{
    accumulate_params, average_params, blend_params, scale_params, weighted_average_params,
};
use hadfl::wire::{open, seal, CausalStamp, Message, STAMP_LEN};
use hadfl_par::with_threads;
use proptest::prelude::*;

/// The pre-bulk-codec reference encoding: one tag byte, the fixed
/// header fields, then `len` + each f32 written individually.
fn reference_encode(msg: &Message) -> Vec<u8> {
    let mut buf = BytesMut::new();
    fn put_params_ref(buf: &mut BytesMut, params: &[f32]) {
        buf.put_u32_le(params.len() as u32);
        for &p in params {
            buf.put_f32_le(p);
        }
    }
    match msg {
        Message::ParamSync { round, params } => {
            buf.put_u8(1);
            buf.put_u32_le(*round);
            put_params_ref(&mut buf, params);
        }
        Message::ParamAccum {
            round,
            hops,
            params,
        } => {
            buf.put_u8(7);
            buf.put_u32_le(*round);
            buf.put_u32_le(*hops);
            put_params_ref(&mut buf, params);
        }
        Message::MergedParams { round, ttl, params } => {
            buf.put_u8(8);
            buf.put_u32_le(*round);
            buf.put_u32_le(*ttl);
            put_params_ref(&mut buf, params);
        }
        Message::FinalParams { device, params } => {
            buf.put_u8(14);
            buf.put_u32_le(*device);
            put_params_ref(&mut buf, params);
        }
        other => panic!("reference encoder only covers param-carrying variants, got {other:?}"),
    }
    buf.freeze().to_vec()
}

fn param_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1e6f32..1e6, 0..300)
}

/// Overwrites a sample of entries with adversarial bit patterns —
/// zeros of both signs, subnormals, infinities, NaN — so the codec is
/// pinned on exactly the values a naive float round-trip would mangle.
fn with_specials(mut v: Vec<f32>) -> Vec<f32> {
    const SPECIALS: [f32; 6] = [
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
    ];
    for (i, x) in v.iter_mut().enumerate() {
        if i % 3 == 0 {
            *x = SPECIALS[(i / 3) % SPECIALS.len()];
        }
    }
    v
}

fn assert_param_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_codec_matches_per_float_reference(
        round in 0u32..1000, head in 0u32..64, params in param_strategy(),
    ) {
        let params = with_specials(params);
        let msgs = [
            Message::ParamSync { round, params: params.clone() },
            Message::ParamAccum { round, hops: head, params: params.clone() },
            Message::MergedParams { round, ttl: head, params: params.clone() },
            Message::FinalParams { device: head, params: params.clone() },
        ];
        for msg in msgs {
            let frame = msg.encode();
            prop_assert_eq!(
                &frame[..],
                &reference_encode(&msg)[..],
                "bulk encode diverged from the per-float layout"
            );
            prop_assert_eq!(frame.len(), msg.encoded_len());
            let back = Message::decode(&frame).unwrap();
            let (a, b) = match (&msg, &back) {
                (Message::ParamSync { params: a, .. }, Message::ParamSync { params: b, .. })
                | (Message::ParamAccum { params: a, .. }, Message::ParamAccum { params: b, .. })
                | (Message::MergedParams { params: a, .. }, Message::MergedParams { params: b, .. })
                | (Message::FinalParams { params: a, .. }, Message::FinalParams { params: b, .. }) => (a, b),
                other => panic!("variant changed in round-trip: {other:?}"),
            };
            assert_param_bits_eq(a, b);
        }
    }

    #[test]
    fn sealed_frames_keep_the_causal_envelope(
        origin in 0u32..64, lamport in 0u64..1 << 40, params in param_strategy(),
    ) {
        let msg = Message::ParamSync { round: 3, params };
        let stamp = CausalStamp { origin, lamport };
        let frame = seal(stamp, &msg);
        prop_assert_eq!(frame.len(), STAMP_LEN + msg.encoded_len());
        prop_assert_eq!(&frame[STAMP_LEN..], &reference_encode(&msg)[..]);
        let (back_stamp, back_msg) = open(&frame).unwrap();
        prop_assert_eq!(back_stamp, stamp);
        prop_assert_eq!(back_msg, msg);
    }

    #[test]
    fn aggregation_bit_identical_across_threads(
        seed in 0u64..1 << 16, models in 1usize..5, len in 0usize..400, beta in 0.0f32..1.0,
    ) {
        let mut rng = hadfl_tensor::SeedStream::new(seed);
        let params: Vec<Vec<f32>> = (0..models)
            .map(|_| (0..len).map(|_| rng.normal()).collect())
            .collect();
        let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
        let weights: Vec<f64> = (1..=models).map(|w| w as f64).collect();

        let want_avg = with_threads(1, || average_params(&refs).unwrap());
        let want_weighted = with_threads(1, || weighted_average_params(&refs, &weights).unwrap());
        let want_blend = with_threads(1, || {
            let mut local = params[0].clone();
            blend_params(&mut local, &want_avg, beta).unwrap();
            local
        });
        let want_ring = with_threads(1, || {
            let mut acc = params[0].clone();
            for p in &params[1..] {
                accumulate_params(&mut acc, p);
            }
            scale_params(&mut acc, 1.0 / models as f32);
            acc
        });
        for t in [2usize, 4] {
            let avg = with_threads(t, || average_params(&refs).unwrap());
            assert_param_bits_eq(&avg, &want_avg);
            let weighted = with_threads(t, || weighted_average_params(&refs, &weights).unwrap());
            assert_param_bits_eq(&weighted, &want_weighted);
            let blend = with_threads(t, || {
                let mut local = params[0].clone();
                blend_params(&mut local, &want_avg, beta).unwrap();
                local
            });
            assert_param_bits_eq(&blend, &want_blend);
            let ring = with_threads(t, || {
                let mut acc = params[0].clone();
                for p in &params[1..] {
                    accumulate_params(&mut acc, p);
                }
                scale_params(&mut acc, 1.0 / models as f32);
                acc
            });
            assert_param_bits_eq(&ring, &want_ring);
        }
    }
}

/// The ring-reduce helpers must also equal the pre-parallel inline
/// loops (`*a += m` then `*a *= scale`) bit-for-bit — the executor's
/// merge results may not move.
#[test]
fn ring_helpers_match_inline_loops() {
    let n = 100_001; // ragged: crosses an F32_CHUNK boundary
    let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin()).collect();
    let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).cos()).collect();

    let mut want = a.clone();
    for (x, y) in want.iter_mut().zip(&b) {
        *x += y;
    }
    let scale = 1.0 / 3.0f32;
    for x in &mut want {
        *x *= scale;
    }

    for t in [1usize, 2, 4] {
        let got = with_threads(t, || {
            let mut acc = a.clone();
            accumulate_params(&mut acc, &b);
            scale_params(&mut acc, scale);
            acc
        });
        assert_param_bits_eq(&got, &want);
    }
}
