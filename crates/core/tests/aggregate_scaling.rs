//! Regression guard for the `average_params_4x100k` parallel cliff:
//! before the persistent pool + measured cutoffs, dispatching this op
//! at `HADFL_THREADS=4` paid per-dispatch thread spawns that cost ~2×
//! the whole serial op. With a parked pool and autotuned thresholds,
//! more threads must never make aggregation slower — either the
//! parallel path wins or the cutoff keeps the op serial.
//!
//! The timing assertion only runs on hosts with ≥ 4 cores (on fewer,
//! "t4" shares cores with itself and measures the scheduler, not the
//! pool). Bit-identity across thread counts runs everywhere.

use std::time::Instant;

use hadfl::aggregate::average_params;
use hadfl_par::with_threads;

const MODELS: usize = 4;
const PARAMS: usize = 100_000;

fn models() -> Vec<Vec<f32>> {
    (0..MODELS)
        .map(|m| {
            (0..PARAMS)
                .map(|i| ((m * PARAMS + i) as f32 * 0.173).sin())
                .collect()
        })
        .collect()
}

/// Minimum wall time of `reps` runs — the least-disturbed pass, same
/// estimator as DESIGN.md §13 bench methodology.
fn min_wall_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

#[test]
fn average_params_4x100k_does_not_regress_under_threads() {
    let models = models();
    let views: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping timing assertion: only {cores} core(s) available");
        return;
    }

    // Warm both paths: first t4 dispatch spawns the pool's workers and
    // runs the one-shot calibration probes; neither belongs in the
    // measurement.
    with_threads(1, || average_params(&views).unwrap());
    with_threads(4, || average_params(&views).unwrap());

    let reps = 9;
    let t1 = min_wall_ns(reps, || {
        with_threads(1, || std::hint::black_box(average_params(&views).unwrap()));
    });
    let t4 = min_wall_ns(reps, || {
        with_threads(4, || std::hint::black_box(average_params(&views).unwrap()));
    });

    // t4 must be no worse than t1 beyond noise: the pool either scales
    // the op or its cutoff declines to parallelize it.
    assert!(
        (t4 as f64) <= (t1 as f64) * 1.05,
        "average_params_4x100k regressed under threads: t1 = {t1} ns, t4 = {t4} ns \
         ({:.2}x)",
        t4 as f64 / t1 as f64
    );
}

#[test]
fn average_params_bits_do_not_depend_on_thread_count() {
    let models = models();
    let views: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
    let want: Vec<u32> = with_threads(1, || average_params(&views).unwrap())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for t in [2, 4, 8] {
        let got: Vec<u32> = with_threads(t, || average_params(&views).unwrap())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, want, "average_params bits moved at {t} threads");
    }
}
