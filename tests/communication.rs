//! Communication-accounting integration tests: the §II-B / §III-D
//! volume claims checked end to end across schemes.

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{
    run_centralized_fedavg, run_decentralized_fedavg, run_distributed, BaselineConfig,
};

fn opts(epochs: f64) -> SimOptions {
    let mut o = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
    o.epochs_total = epochs;
    o
}

#[test]
fn centralized_server_carries_2mk_per_round() {
    let trace = run_centralized_fedavg(
        &Workload::quick("mlp", 51),
        &BaselineConfig::default(),
        &opts(6.0),
    )
    .unwrap();
    let rounds = trace.records.len() as u64;
    assert_eq!(trace.comm.server_bytes, 2 * trace.model_bytes * 4 * rounds);
}

#[test]
fn decentralized_schemes_have_zero_server_model_traffic() {
    let fedavg = run_decentralized_fedavg(
        &Workload::quick("mlp", 52),
        &BaselineConfig::default(),
        &opts(6.0),
    )
    .unwrap();
    assert_eq!(fedavg.comm.server_bytes, 0);

    let dist = run_distributed(
        &Workload::quick("mlp", 52),
        &BaselineConfig::default(),
        &opts(6.0),
    )
    .unwrap();
    assert_eq!(dist.comm.server_bytes, 0);

    let config = HadflConfig::builder().seed(52).build().unwrap();
    let hadfl = run_hadfl(&Workload::quick("mlp", 52), &config, &opts(6.0)).unwrap();
    // HADFL's training-phase server traffic is control-plane only.
    assert!(hadfl.trace.comm.server_bytes < hadfl.trace.model_bytes);
}

#[test]
fn hadfl_device_volume_is_comparable_to_fedavg() {
    // §III-D: "The total communication volume of devices is 2·K·M, which
    // is the same as FL." Check the per-round per-device model transfers
    // are within a small factor of FedAvg's.
    let o = opts(10.0);
    let w = Workload::quick("mlp", 53);
    let config = HadflConfig::builder().seed(53).build().unwrap();
    let hadfl = run_hadfl(&w, &config, &o).unwrap();
    let fedavg = run_decentralized_fedavg(&w, &BaselineConfig::default(), &o).unwrap();

    let per_round = |total: u64, rounds: usize| total as f64 / rounds as f64;
    let h = per_round(hadfl.trace.comm.total_bytes, hadfl.trace.records.len());
    let f = per_round(fedavg.comm.total_bytes, fedavg.records.len());
    assert!(
        h < 1.5 * f,
        "hadfl per-round volume {h:.0} should not exceed fedavg's {f:.0} by much"
    );
}

#[test]
fn setup_dispatch_is_one_model_per_device() {
    let config = HadflConfig::builder().seed(54).build().unwrap();
    let run = run_hadfl(&Workload::quick("mlp", 54), &config, &opts(4.0)).unwrap();
    // K models out plus K tiny timing reports in.
    assert!(run.setup_comm.server_bytes >= 4 * run.trace.model_bytes);
    assert!(run.setup_comm.server_bytes < 4 * run.trace.model_bytes + 1024);
}

#[test]
fn backups_cost_one_model_each() {
    let config = HadflConfig::builder().seed(55).build().unwrap();
    let mut o = opts(8.0);
    o.backup_every = Some(2);
    let run = run_hadfl(&Workload::quick("mlp", 55), &config, &o).unwrap();
    assert!(run.backups_taken > 0);
    assert_eq!(
        run.backup_comm.server_bytes,
        run.backups_taken as u64 * run.trace.model_bytes
    );
}

#[test]
fn wire_override_scales_comm_not_math() {
    let config = HadflConfig::builder().seed(56).build().unwrap();
    let mut small = opts(4.0);
    small.wire_model_bytes = None;
    let mut big = opts(4.0);
    big.wire_model_bytes = Some(44_600_000);
    let w = Workload::quick("mlp", 56);
    let a = run_hadfl(&w, &config, &small).unwrap();
    let b = run_hadfl(&w, &config, &big).unwrap();
    // Same learning dynamics (accuracy identical), different wire volume.
    let accs = |t: &hadfl::trace::Trace| {
        t.records
            .iter()
            .map(|r| r.test_accuracy)
            .collect::<Vec<_>>()
    };
    assert_eq!(accs(&a.trace), accs(&b.trace));
    assert!(b.trace.comm.total_bytes > 100 * a.trace.comm.total_bytes);
}
