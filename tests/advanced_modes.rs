//! Integration tests of the advanced execution modes: hierarchical
//! grouping, the threaded executor, non-IID weighted aggregation, and
//! the heterogeneous-bandwidth ring.

use std::time::Duration;

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::exec::{run_threaded, ThreadedOptions};
use hadfl::group::run_hadfl_grouped;
use hadfl::topology::Ring;
use hadfl::workload::ShardKind;
use hadfl::{HadflConfig, Workload};
use hadfl_simnet::{BandwidthMatrix, DeviceId};
use hadfl_tensor::SeedStream;

#[test]
fn grouped_and_flat_reach_similar_accuracy() {
    let mut workload = Workload::quick("mlp", 71);
    workload.train_size = 768;
    workload.test_size = 192;
    let mut opts = SimOptions::quick(&[2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    opts.epochs_total = 10.0;

    let flat_cfg = HadflConfig::builder()
        .num_selected(4)
        .seed(71)
        .build()
        .unwrap();
    let flat = run_hadfl(&workload, &flat_cfg, &opts).unwrap();

    let grouped_cfg = HadflConfig::builder()
        .group_size(Some(4))
        .inter_group_every(2)
        .num_selected(2)
        .seed(71)
        .build()
        .unwrap();
    let grouped = run_hadfl_grouped(&workload, &grouped_cfg, &opts).unwrap();

    let fa = flat.trace.max_accuracy();
    let ga = grouped.trace.max_accuracy();
    assert!(fa > 0.5 && ga > 0.5, "flat {fa} grouped {ga}");
    assert!(
        (f64::from(fa) - f64::from(ga)).abs() < 0.25,
        "flat {fa} vs grouped {ga}"
    );
}

#[test]
fn grouped_run_is_deterministic() {
    let workload = Workload::quick("mlp", 72);
    let config = HadflConfig::builder()
        .group_size(Some(2))
        .inter_group_every(2)
        .seed(72)
        .build()
        .unwrap();
    let opts = SimOptions::quick(&[2.0, 1.0, 2.0, 1.0]);
    let a = run_hadfl_grouped(&workload, &config, &opts).unwrap();
    let b = run_hadfl_grouped(&workload, &config, &opts).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.inter_sync_rounds, b.inter_sync_rounds);
}

#[test]
fn threaded_executor_matches_virtual_time_protocol() {
    // Same workload through both executors: both must select 2-device
    // rings, accumulate versions, and produce a finite consensus.
    let workload = Workload::quick("mlp", 73);
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(73)
        .build()
        .unwrap();

    let virtual_run = run_hadfl(&workload, &config, &SimOptions::quick(&[2.0, 1.0, 1.0])).unwrap();
    let threaded = run_threaded(
        &workload,
        &config,
        &ThreadedOptions {
            powers: vec![2.0, 1.0, 1.0],
            step_sleep: Duration::from_millis(4),
            window: Duration::from_millis(50),
            rounds: 3,
            timing: hadfl::exec::ProtocolTiming::quick(),
        },
    )
    .unwrap();

    for r in &virtual_run.trace.records {
        assert_eq!(r.selected.len(), 2);
    }
    for r in &threaded.rounds {
        assert_eq!(r.selected.len(), 2);
    }
    assert!(threaded.final_accuracy.is_finite());
    assert!(threaded.peer_bytes > 0);
}

#[test]
fn noniid_weighted_aggregation_end_to_end() {
    let mut workload = Workload::quick("mlp", 74);
    workload.shard = ShardKind::Dirichlet { alpha: 0.5 };
    let mut opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
    opts.epochs_total = 10.0;
    let config = HadflConfig::builder()
        .weight_by_samples(true)
        .seed(74)
        .build()
        .unwrap();
    let run = run_hadfl(&workload, &config, &opts).unwrap();
    assert!(
        run.trace.max_accuracy() > 0.3,
        "accuracy {}",
        run.trace.max_accuracy()
    );
}

#[test]
fn bandwidth_aware_ring_avoids_slow_links_when_possible() {
    let net = BandwidthMatrix::two_clusters(6, 3, 0.0, 1e9, 1e5).unwrap();
    let members: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    let mut rng = SeedStream::new(75);
    for _ in 0..5 {
        let ring = Ring::greedy_bandwidth(&members, &net, &mut rng).unwrap();
        let crossings = ring
            .members()
            .iter()
            .enumerate()
            .filter(|&(i, &from)| {
                let to = ring.members()[(i + 1) % ring.len()];
                net.bandwidth(from, to).unwrap() < 1e9
            })
            .count();
        assert_eq!(crossings, 2, "minimum crossings for two clusters: {ring}");
    }
}
