//! End-to-end integration tests of the full HADFL workflow across the
//! workspace crates.

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};

fn quick_opts(powers: &[f64], epochs: f64) -> SimOptions {
    let mut opts = SimOptions::quick(powers);
    opts.epochs_total = epochs;
    opts
}

#[test]
fn hadfl_learns_the_synthetic_task() {
    let config = HadflConfig::builder().seed(21).build().unwrap();
    let run = run_hadfl(
        &Workload::quick("mlp", 21),
        &config,
        &quick_opts(&[3.0, 3.0, 1.0, 1.0], 10.0),
    )
    .unwrap();
    let last = run.trace.records.last().unwrap();
    assert!(last.test_accuracy > 0.5, "accuracy {}", last.test_accuracy);
    assert!(last.epoch_equiv >= 10.0);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let config = HadflConfig::builder().seed(22).build().unwrap();
    let opts = quick_opts(&[4.0, 2.0, 2.0, 1.0], 6.0);
    let a = run_hadfl(&Workload::quick("mlp", 22), &config, &opts).unwrap();
    let b = run_hadfl(&Workload::quick("mlp", 22), &config, &opts).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.setup_comm, b.setup_comm);
    assert_eq!(a.strategy, b.strategy);
}

#[test]
fn different_seeds_give_different_runs() {
    // 4 devices, N_p = 2: the framework seed drives which pair gossips,
    // so two seeds must diverge. (With K = N_p the seed has no visible
    // effect — everyone is always selected.)
    let opts = quick_opts(&[2.0, 1.0, 2.0, 1.0], 8.0);
    let a = run_hadfl(
        &Workload::quick("mlp", 23),
        &HadflConfig::builder().seed(1).build().unwrap(),
        &opts,
    )
    .unwrap();
    let b = run_hadfl(
        &Workload::quick("mlp", 23),
        &HadflConfig::builder().seed(2).build().unwrap(),
        &opts,
    )
    .unwrap();
    // Same workload, different framework seeds: selection and rings
    // differ, so the traces should not be identical.
    assert_ne!(a.trace, b.trace);
}

#[test]
fn strategy_matches_power_ratio() {
    let config = HadflConfig::builder().seed(24).build().unwrap();
    let run = run_hadfl(
        &Workload::quick("mlp", 24),
        &config,
        &quick_opts(&[3.0, 3.0, 1.0, 1.0], 4.0),
    )
    .unwrap();
    let steps = &run.strategy.local_steps;
    // Fast devices get ~3x the local step budget of the stragglers.
    let ratio = steps[0] as f64 / steps[3] as f64;
    assert!((2.5..=3.5).contains(&ratio), "steps {steps:?}");
}

#[test]
fn versions_track_cumulative_updates() {
    let config = HadflConfig::builder().seed(25).build().unwrap();
    let run = run_hadfl(
        &Workload::quick("mlp", 25),
        &config,
        &quick_opts(&[2.0, 1.0], 6.0),
    )
    .unwrap();
    // Versions are cumulative, so they must be non-decreasing round over
    // round for every device.
    for pair in run.trace.records.windows(2) {
        for (prev, next) in pair[0].versions.iter().zip(&pair[1].versions) {
            assert!(next >= prev, "version went backwards: {prev} -> {next}");
        }
    }
}

#[test]
fn selected_sets_vary_over_rounds() {
    let config = HadflConfig::builder().seed(26).build().unwrap();
    let run = run_hadfl(
        &Workload::quick("mlp", 26),
        &config,
        &quick_opts(&[1.0, 1.0, 1.0, 1.0], 16.0),
    )
    .unwrap();
    let distinct: std::collections::HashSet<&Vec<usize>> =
        run.trace.records.iter().map(|r| &r.selected).collect();
    assert!(
        distinct.len() > 1,
        "probabilistic selection should vary: {:?}",
        run.trace
            .records
            .iter()
            .map(|r| &r.selected)
            .collect::<Vec<_>>()
    );
}

#[test]
fn umbrella_crate_reexports_compile() {
    // hadfl_suite re-exports every workspace crate; touch each path.
    let _spec = hadfl_suite::nn::SyntheticSpec::tiny();
    let _t = hadfl_suite::tensor::Tensor::zeros(&[2, 2]);
    let _d = hadfl_suite::simnet::DeviceId(0);
    let _c = hadfl_suite::hadfl::HadflConfig::builder().build().unwrap();
    let _b = hadfl_suite::baselines::BaselineConfig::default();
}
