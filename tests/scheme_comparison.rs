//! Cross-scheme integration tests: the paper's qualitative claims must
//! hold at CI scale — HADFL beats the synchronous schemes on
//! heterogeneous clusters, and its advantage shrinks as the cluster
//! becomes homogeneous.

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{run_decentralized_fedavg, run_distributed, BaselineConfig};

fn opts(powers: &[f64], epochs: f64) -> SimOptions {
    let mut o = SimOptions::quick(powers);
    o.epochs_total = epochs;
    // Fix the fastest device at native speed (the paper's convention).
    o.base_step_secs = 0.010 * powers.iter().copied().fold(1.0, f64::max);
    o
}

/// Virtual seconds per epoch-equivalent for a finished trace.
fn secs_per_epoch(records_time: f64, epochs: f64) -> f64 {
    records_time / epochs
}

#[test]
fn hadfl_is_faster_per_epoch_on_heterogeneous_clusters() {
    let powers = [3.0, 3.0, 1.0, 1.0];
    let o = opts(&powers, 8.0);
    let w = Workload::quick("mlp", 31);
    let config = HadflConfig::builder().seed(31).build().unwrap();

    let hadfl = run_hadfl(&w, &config, &o).unwrap();
    let fedavg = run_decentralized_fedavg(&w, &BaselineConfig::default(), &o).unwrap();
    let dist = run_distributed(&w, &BaselineConfig::default(), &o).unwrap();

    let h = hadfl.trace.records.last().unwrap();
    let f = fedavg.records.last().unwrap();
    let d = dist.records.last().unwrap();
    let h_rate = secs_per_epoch(h.time_secs, h.epoch_equiv);
    let f_rate = secs_per_epoch(f.time_secs, f.epoch_equiv);
    let d_rate = secs_per_epoch(d.time_secs, d.epoch_equiv);

    // HADFL processes data faster than both synchronous schemes…
    assert!(
        h_rate < f_rate,
        "hadfl {h_rate:.4} vs fedavg {f_rate:.4} s/epoch"
    );
    assert!(
        h_rate < d_rate,
        "hadfl {h_rate:.4} vs distributed {d_rate:.4} s/epoch"
    );
    // …by an amount in the ballpark of the mean/min power ratio (2.0
    // here), eroded only by the warm-up phase.
    let speedup = f_rate / h_rate;
    assert!(
        (1.2..=2.4).contains(&speedup),
        "speedup {speedup:.2} outside the plausible band"
    );
}

#[test]
fn hadfl_advantage_shrinks_on_homogeneous_clusters() {
    let w = Workload::quick("mlp", 32);
    let config = HadflConfig::builder().seed(32).build().unwrap();

    let rate = |powers: &[f64]| {
        let o = opts(powers, 8.0);
        let hadfl = run_hadfl(&w, &config, &o).unwrap();
        let fedavg = run_decentralized_fedavg(&w, &BaselineConfig::default(), &o).unwrap();
        let h = hadfl.trace.records.last().unwrap();
        let f = fedavg.records.last().unwrap();
        (f.time_secs / f.epoch_equiv) / (h.time_secs / h.epoch_equiv)
    };

    let hetero_speedup = rate(&[4.0, 2.0, 2.0, 1.0]);
    let homo_speedup = rate(&[1.0, 1.0, 1.0, 1.0]);
    assert!(
        hetero_speedup > homo_speedup,
        "heterogeneity should be where HADFL wins: hetero {hetero_speedup:.2} vs homo {homo_speedup:.2}"
    );
    // On a homogeneous cluster there is no straggler waste to reclaim.
    assert!(
        homo_speedup < 1.35,
        "homogeneous speedup {homo_speedup:.2} suspiciously high"
    );
}

#[test]
fn deeper_heterogeneity_costs_synchronous_schemes_more() {
    let w = Workload::quick("mlp", 33);
    let total_time = |powers: &[f64]| {
        let o = opts(powers, 6.0);
        let fedavg = run_decentralized_fedavg(&w, &BaselineConfig::default(), &o).unwrap();
        fedavg.records.last().unwrap().time_secs
    };
    // [4,2,2,1] has a 4x straggler gap vs 3x: synchronous rounds stretch.
    assert!(total_time(&[4.0, 2.0, 2.0, 1.0]) > total_time(&[3.0, 3.0, 1.0, 1.0]));
}

#[test]
fn all_schemes_reach_comparable_accuracy_given_enough_epochs() {
    let powers = [2.0, 2.0, 1.0, 1.0];
    let o = opts(&powers, 14.0);
    let w = Workload::quick("mlp", 34);
    let config = HadflConfig::builder().seed(34).build().unwrap();

    let hadfl = run_hadfl(&w, &config, &o).unwrap().trace.max_accuracy();
    let fedavg = run_decentralized_fedavg(&w, &BaselineConfig::default(), &o)
        .unwrap()
        .max_accuracy();
    let dist = run_distributed(&w, &BaselineConfig::default(), &o)
        .unwrap()
        .max_accuracy();

    assert!(
        fedavg > 0.6 && dist > 0.6 && hadfl > 0.6,
        "{hadfl} {fedavg} {dist}"
    );
    // The paper: "almost no loss of convergence accuracy" — allow a
    // modest partial-aggregation gap at this tiny scale.
    assert!(
        (f64::from(fedavg) - f64::from(hadfl)).abs() < 0.25,
        "hadfl {hadfl} vs fedavg {fedavg}"
    );
}
