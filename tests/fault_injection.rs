//! Fault-injection integration tests: the §III-D tolerance machinery
//! must keep training alive through crashes and transient outages.

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, HadflError, Workload};
use hadfl_simnet::{DeviceId, FaultPlan, Outage, VirtualTime};

fn opts(powers: &[f64], epochs: f64, faults: FaultPlan) -> SimOptions {
    let mut o = SimOptions::quick(powers);
    o.epochs_total = epochs;
    o.faults = faults;
    o
}

/// Workload::quick with 3 equal devices: 128-sample shards, 8 batches,
/// 10 ms steps ⇒ 80 ms windows starting at 0.08 s (after warm-up).
fn three_device_workload() -> Workload {
    Workload::quick("mlp", 41)
}

#[test]
fn permanent_crash_is_survived_and_bypassed() {
    let faults = FaultPlan::new(vec![Outage::crash(
        DeviceId(2),
        VirtualTime::from_secs(0.20),
    )])
    .unwrap();
    let config = HadflConfig::builder()
        .num_selected(3)
        .seed(41)
        .build()
        .unwrap();
    let run = run_hadfl(
        &three_device_workload(),
        &config,
        &opts(&[1.0, 1.0, 1.0], 8.0, faults),
    )
    .unwrap();
    assert!(
        !run.bypass_log.is_empty(),
        "the crash must trigger a bypass"
    );
    let last = run.trace.records.last().unwrap();
    assert!(last.epoch_equiv >= 8.0, "training must finish");
    assert!(last.test_accuracy > 0.4, "accuracy {}", last.test_accuracy);
    // The dead device's version counter freezes.
    let final_versions = &last.versions;
    assert!(final_versions[2] < final_versions[0]);
}

#[test]
fn transient_outage_lets_device_rejoin() {
    // Down for two windows, then back.
    let faults = FaultPlan::new(vec![Outage::window(
        DeviceId(1),
        VirtualTime::from_secs(0.16),
        VirtualTime::from_secs(0.32),
    )])
    .unwrap();
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(42)
        .build()
        .unwrap();
    let run = run_hadfl(
        &three_device_workload(),
        &config,
        &opts(&[1.0, 1.0, 1.0], 10.0, faults),
    )
    .unwrap();
    let last = run.trace.records.last().unwrap();
    // Device 1 lost some windows but kept training after recovery: its
    // version is behind the healthy devices' but well above zero.
    assert!(
        last.versions[1] > 20.0,
        "device 1 never rejoined: {:?}",
        last.versions
    );
    assert!(last.versions[1] < last.versions[0], "{:?}", last.versions);
}

#[test]
fn everyone_dead_is_a_clean_error() {
    let faults = FaultPlan::new(vec![
        Outage::crash(DeviceId(0), VirtualTime::from_secs(0.1)),
        Outage::crash(DeviceId(1), VirtualTime::from_secs(0.1)),
    ])
    .unwrap();
    let config = HadflConfig::builder().seed(43).build().unwrap();
    let err = run_hadfl(
        &Workload::quick("mlp", 43),
        &config,
        &opts(&[1.0, 1.0], 8.0, faults),
    )
    .unwrap_err();
    assert!(matches!(err, HadflError::ClusterDead { .. }), "{err}");
}

#[test]
fn training_continues_with_one_survivor_pair() {
    // 4 devices, 2 crash: the remaining pair must still synchronize.
    let faults = FaultPlan::new(vec![
        Outage::crash(DeviceId(0), VirtualTime::from_secs(0.3)),
        Outage::crash(DeviceId(3), VirtualTime::from_secs(0.3)),
    ])
    .unwrap();
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(44)
        .build()
        .unwrap();
    let run = run_hadfl(
        &Workload::quick("mlp", 44),
        &config,
        &opts(&[1.0, 1.0, 1.0, 1.0], 10.0, faults),
    )
    .unwrap();
    let last = run.trace.records.last().unwrap();
    assert!(last.epoch_equiv >= 10.0);
    // Late rounds can only ever select the two survivors.
    let late = run
        .trace
        .records
        .iter()
        .filter(|r| r.time_secs > 0.5)
        .collect::<Vec<_>>();
    for r in late {
        assert!(
            r.selected.iter().all(|&d| d == 1 || d == 2),
            "round {} selected dead devices: {:?}",
            r.round,
            r.selected
        );
    }
}

#[test]
fn fault_runs_remain_deterministic() {
    let faults = FaultPlan::new(vec![Outage::crash(
        DeviceId(1),
        VirtualTime::from_secs(0.25),
    )])
    .unwrap();
    let config = HadflConfig::builder()
        .num_selected(3)
        .seed(45)
        .build()
        .unwrap();
    let o = opts(&[2.0, 1.0, 1.0], 8.0, faults);
    let a = run_hadfl(&Workload::quick("mlp", 45), &config, &o).unwrap();
    let b = run_hadfl(&Workload::quick("mlp", 45), &config, &o).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.bypass_log, b.bypass_log);
}
